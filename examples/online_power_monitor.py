#!/usr/bin/env python
"""On-line power estimation from HPC samples (paper Section 4).

Trains the Eq. 9 MVLR model the paper's way (uniform SPEC runs plus
the 6-phase micro-benchmark), then "monitors" a mixed workload: for
every HPC sampling window it prints the model's estimate next to the
simulated meter's reading — the textual version of the paper's
Figure 2 overlay.

Run:
    python examples/online_power_monitor.py
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.power_validation import estimate_power_series


def main() -> None:
    context = ExperimentContext(
        machine="2-core-workstation",
        sets=128,
        seed=11,
        benchmark_names=("gzip", "mcf", "art", "twolf"),
    )
    print(f"Training the Eq. 9 power model for {context.topology.name}...")
    model = context.power_model()
    print(f"  training rows: {len(context.training_set())}, "
          f"R^2 = {model.r_squared:.4f}")
    print(f"  P_idle/core = {model.p_idle:.2f} W (anchored to a measured idle run)")
    coefficients = model.coefficients
    print("  c1..c5 = " + ", ".join(f"{v:+.2e}" for v in coefficients.values()))
    assert coefficients["L2MPS"] < 0, "the paper's negative c3 should appear"

    print("\nMonitoring assignment {core0: mcf, core1: gzip}:\n")
    result = context.run_assignment({0: ("mcf",), 1: ("gzip",)}, seed_offset=5)
    estimated, measured = estimate_power_series(context, result)
    times = result.power.times

    print("   t (ms)   estimated (W)   measured (W)   error")
    for t, est, meas in zip(times, estimated, measured):
        error = abs(est - meas) / meas * 100
        print(f"  {t * 1e3:7.2f}   {est:13.2f}   {meas:12.2f}   {error:5.2f} %")

    avg_error = abs(estimated.mean() - measured.mean()) / measured.mean() * 100
    print(f"\nAverage power: estimated {estimated.mean():.2f} W vs "
          f"measured {measured.mean():.2f} W ({avg_error:.2f} % error)")
    print("(Paper Figure 2 reports ~2.5 % average estimation error.)")


if __name__ == "__main__":
    main()
