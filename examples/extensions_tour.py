#!/usr/bin/env python
"""Tour of the extensions beyond the paper's headline experiments.

Three generalisations the paper points at but does not evaluate in
depth, each demonstrated end to end:

1. **Multi-phase processes** (§3.1): whole-run profiling mixes phases;
   profiling the longest phase predicts the dominant regime.
2. **Cache partitioning** (the Xu et al. lineage): Eq. 2 prices any
   static way partition exactly, so the best one is a small DP.
3. **Heterogeneous cores** (contribution claim #4): a clock rescale of
   the Eq. 3 constants lets one profile cover fast and slow cores.

Run:
    python examples/extensions_tour.py
"""

from repro.config import SimulationScale
from repro.experiments.context import ExperimentContext
from repro.experiments.heterogeneity_extension import run_heterogeneity_extension
from repro.experiments.partitioning_extension import run_partitioning_extension
from repro.experiments.phases_extension import run_phases_extension


def main() -> None:
    context = ExperimentContext(
        machine="4-core-server",
        sets=128,
        seed=9,
        benchmark_names=("twolf", "mcf", "art"),
        profile_scale=SimulationScale(
            warmup_accesses=4_000, measure_accesses=10_000,
            warmup_s=0.008, measure_s=0.02,
        ),
        run_scale=SimulationScale(
            warmup_accesses=8_000, measure_accesses=25_000,
            warmup_s=0.012, measure_s=0.04,
        ),
    )

    print("=== 1. Multi-phase processes ===")
    phases = run_phases_extension(context)
    print(f"phase detection: {phases.detected_phases} segments on the solo "
          f"HPC miss-rate series")
    print(f"SPI error vs the dominant phase's truth:")
    print(f"  whole-run (mixture) profile: {phases.naive_spi_error_pct:6.2f} %")
    print(f"  longest-phase profile:       {phases.phase_aware_spi_error_pct:6.2f} %")

    print("\n=== 2. Model-driven cache partitioning ===")
    partition = run_partitioning_extension(context, names=("mcf", "twolf"))
    print(f"throughput-optimal allocation: {partition.optimal.plan.as_dict()}")
    print(f"  predicted MPAs {['%.3f' % m for m in partition.optimal.plan.predicted_mpas]}, "
          f"measured {['%.3f' % m for m in partition.optimal.measured_mpas]}")
    print(f"  total IPS: optimal {partition.optimal.measured_total_ips:.3e}, "
          f"even split {partition.even.measured_total_ips:.3e}, "
          f"shared LRU {partition.shared_lru_total_ips:.3e}")

    print("\n=== 3. Heterogeneous cores (slow die at 50% clock) ===")
    hetero = run_heterogeneity_extension(context)
    for case in hetero.cases:
        print(f"  {case.pair[0]}(fast) + {case.pair[1]}(slow): "
              f"occupancy {case.measured_occupancies[0]:.2f}/"
              f"{case.measured_occupancies[1]:.2f} ways measured vs "
              f"{case.predicted_occupancies[0]:.2f}/"
              f"{case.predicted_occupancies[1]:.2f} predicted "
              f"(max SPI err {case.max_spi_error_pct:.2f} %)")
    print(f"  ignoring the clock difference: {hetero.naive_spi_error_pct:.1f} % "
          f"SPI error")


if __name__ == "__main__":
    main()
