#!/usr/bin/env python
"""Power-aware process assignment (the paper's Section 5 use case).

Builds the full combined model — stressmark profiling for the
performance side, SPEC + micro-benchmark training for the power side —
then prices every possible mapping of four processes onto the 4-core
server *from profiles alone*, picks the best one per objective, and
verifies the chosen mapping's power against a real (simulated) run.

Run:
    python examples/power_aware_assignment.py

This is the heaviest example (full profiling + training): expect a few
minutes of simulation.
"""

from repro.core.assignment import exhaustive_assignment, greedy_assignment
from repro.experiments.context import ExperimentContext


def main() -> None:
    context = ExperimentContext(
        machine="4-core-server",
        sets=128,
        seed=3,
        benchmark_names=("gzip", "mcf", "art", "twolf"),
    )
    print(f"Building models for {context.topology.name} "
          f"({context.topology.num_cores} cores, 2 cache domains)...")
    combined = context.combined_model()
    print(f"  fitted P_idle/core = {combined.power_model.p_idle:.2f} W")
    print("  Eq. 9 coefficients:")
    for name, value in combined.power_model.coefficients.items():
        print(f"    {name:6s} = {value:+.3e} W/(event/s)")

    processes = ["mcf", "art", "gzip", "twolf"]
    print(f"\nAssigning processes {processes}:")

    for objective in ("power", "throughput", "energy_per_instruction"):
        decision = exhaustive_assignment(combined, processes, objective=objective)
        layout = {core: list(names) for core, names in decision.assignment.items()}
        print(f"\n  objective={objective}")
        print(f"    best mapping: {layout}")
        print(f"    predicted {decision.predicted_watts:.1f} W, "
              f"{decision.predicted_ips:.3e} instr/s "
              f"({decision.candidates_evaluated} candidates)")

    # The greedy (runtime, Figure-1 style) assigner for comparison.
    greedy = greedy_assignment(combined, processes, objective="power")
    greedy_layout = {core: list(names) for core, names in greedy.assignment.items()}
    print(f"\n  greedy power-aware mapping: {greedy_layout}")
    print(f"    predicted {greedy.predicted_watts:.1f} W "
          f"({greedy.candidates_evaluated} incremental queries)")

    # ------------------------------------------------------------------
    # Verify the power-optimal mapping against a measured run.
    # ------------------------------------------------------------------
    best = exhaustive_assignment(combined, processes, objective="power")
    print("\nVerifying the power-optimal mapping on the machine...")
    result = context.run_assignment(best.assignment, seed_offset=99)
    measured = result.power.mean_measured
    error = abs(best.predicted_watts - measured) / measured * 100
    print(f"  predicted {best.predicted_watts:.1f} W, "
          f"measured {measured:.1f} W  (error {error:.2f} %)")


if __name__ == "__main__":
    main()
