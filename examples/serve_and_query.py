#!/usr/bin/env python
"""Boot the prediction service, query it over HTTP, shut it down.

The paper's models answer scheduling questions *on-line* — "what would
this co-run cost?", "where should these processes go?" — so
:mod:`repro.serve` wraps them in a long-running asyncio HTTP service
with a versioned model registry and dynamic micro-batching.  This
example is the end-to-end smoke path CI runs:

1. profile a small suite and train a power model (quick scale),
2. start the server on an ephemeral port with both published,
3. hit every read endpoint, run one prediction and both assignment
   endpoints (legacy ``/v1/assign`` and the declarative ``/v2/assign``),
4. show that the served results are bit-identical to the in-process
   :func:`repro.api.predict_mix` and :func:`repro.api.solve_assignment`,
   and
5. stop gracefully (in-flight batches drain before exit).

Run:
    python examples/serve_and_query.py
"""

from repro.api import (
    AssignmentRequest,
    predict_mix,
    profile_suite,
    serve,
    solve_assignment,
    train_power,
)
from repro.io import assignment_request_to_dict, fleet_assignment_to_dict
from repro.serve import ServeClient

MACHINE = "2-core-workstation"
NAMES = ["mcf", "gzip", "art"]
MIX = ["mcf", "gzip"]
WAYS = 8


def main() -> None:
    print("profiling suite and training power model (quick scale)...")
    suite = profile_suite(NAMES, machine=MACHINE, sets=32, seed=7, quick=True)
    power = train_power(MACHINE, sets=32, seed=7, quick=True)

    with serve({"default": suite, "power": power}) as handle:
        print(f"server up at {handle.url}\n")
        with ServeClient(handle.host, handle.port) as client:
            print(f"GET /healthz -> {client.healthz()}")
            print(f"GET /readyz  -> ready={client.readyz()}")

            print("\nGET /v1/models ->")
            for entry in client.models():
                print(
                    f"  {entry['name']}@{entry['version']} "
                    f"({entry['kind']}, sha256 {entry['digest'][:12]}...)"
                )

            response = client.predict(MIX, ways=WAYS)
            served = response["prediction"]
            local = predict_mix(MIX, suite, ways=WAYS).to_dict()
            print(f"\nPOST /v1/predict {MIX} (model {response['model']}):")
            for process in served["prediction"]["processes"]:
                print(
                    f"  {process['name']:>6}: size {process['effective_size']:.3f} "
                    f"ways, mpa {process['mpa']:.5f}"
                )
            print(f"  bit-identical to api.predict_mix: {served == local}")

            response = client.assign(NAMES, machine=MACHINE, objective="power")
            print(f"\nPOST /v1/assign {NAMES} ({response['suite']} + "
                  f"{response['power_model']}):")
            print(f"  assignment: {response['pick']['decision']['assignment']}")

            request = AssignmentRequest(
                processes=tuple(NAMES), machine=MACHINE, sets=32
            )
            response = client.assign_v2(assignment_request_to_dict(request))
            local = solve_assignment(request, suite, power.model)
            assignment = response["assignment"]
            print(f"\nPOST /v2/assign {NAMES} "
                  f"(solver {assignment['solver']}):")
            print(f"  score: {assignment['score']:.4f} "
                  f"({assignment['objective']})")
            print(
                "  bit-identical to api.solve_assignment: "
                f"{assignment == fleet_assignment_to_dict(local)}"
            )

            metrics = client.metrics()
            print("\nGET /metrics (selected):")
            for key in sorted(metrics["counters"]):
                if key.startswith(("serve.predict", "serve.batch", "serve.assign")):
                    print(f"  {key} = {metrics['counters'][key]:g}")

    print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
