#!/usr/bin/env python
"""Boot the prediction service, query it over HTTP, shut it down.

The paper's models answer scheduling questions *on-line* — "what would
this co-run cost?", "where should these processes go?" — so
:mod:`repro.serve` wraps them in a long-running asyncio HTTP service
with a versioned model registry and dynamic micro-batching.  This
example is the end-to-end smoke path CI runs:

1. profile a small suite and train a power model (quick scale),
2. start the server on an ephemeral port with both published,
3. hit every read endpoint, run one prediction and one assignment,
4. show that the served prediction is bit-identical to the in-process
   :func:`repro.api.predict_mix`, and
5. stop gracefully (in-flight batches drain before exit).

Run:
    python examples/serve_and_query.py
"""

from repro.api import pick_assignment, predict_mix, profile_suite, serve, train_power
from repro.serve import ServeClient

MACHINE = "2-core-workstation"
NAMES = ["mcf", "gzip", "art"]
MIX = ["mcf", "gzip"]
WAYS = 8


def main() -> None:
    print("profiling suite and training power model (quick scale)...")
    suite = profile_suite(NAMES, machine=MACHINE, sets=32, seed=7, quick=True)
    power = train_power(MACHINE, sets=32, seed=7, quick=True)

    with serve({"default": suite, "power": power}) as handle:
        print(f"server up at {handle.url}\n")
        with ServeClient(handle.host, handle.port) as client:
            print(f"GET /healthz -> {client.healthz()}")
            print(f"GET /readyz  -> ready={client.readyz()}")

            print("\nGET /v1/models ->")
            for entry in client.models():
                print(
                    f"  {entry['name']}@{entry['version']} "
                    f"({entry['kind']}, sha256 {entry['digest'][:12]}...)"
                )

            response = client.predict(MIX, ways=WAYS)
            served = response["prediction"]
            local = predict_mix(MIX, suite, ways=WAYS).to_dict()
            print(f"\nPOST /v1/predict {MIX} (model {response['model']}):")
            for process in served["prediction"]["processes"]:
                print(
                    f"  {process['name']:>6}: size {process['effective_size']:.3f} "
                    f"ways, mpa {process['mpa']:.5f}"
                )
            print(f"  bit-identical to api.predict_mix: {served == local}")

            response = client.assign(NAMES, machine=MACHINE, objective="power")
            pick = pick_assignment(NAMES, suite, power.model, machine=MACHINE)
            print(f"\nPOST /v1/assign {NAMES} ({response['suite']} + "
                  f"{response['power_model']}):")
            print(f"  assignment: {response['pick']['decision']['assignment']}")
            print(
                "  matches local pick_assignment: "
                f"{response['pick'] == pick.to_dict()}"
            )

            metrics = client.metrics()
            print("\nGET /metrics (selected):")
            for key in sorted(metrics["counters"]):
                if key.startswith(("serve.predict", "serve.batch", "serve.assign")):
                    print(f"  {key} = {metrics['counters'][key]:g}")

    print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
