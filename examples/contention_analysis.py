#!/usr/bin/env python
"""Cache-contention anatomy: reuse distances, MPA curves, equilibrium.

A guided tour of the performance model's internals (paper Section 3):

- what the synthetic benchmarks' reuse-distance histograms look like,
- the miss-ratio curves they imply (Eq. 2),
- the occupancy growth curves G(n) (Eqs. 4-5), and
- how the equilibrium partition shifts as co-runner pressure grows.

Everything prints as text tables; no plotting dependencies.

Run:
    python examples/contention_analysis.py
"""

from repro.core.feature import FeatureVector
from repro.core.occupancy import OccupancyModel
from repro.core.performance_model import PerformanceModel
from repro.machine.topology import four_core_server
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT


def ascii_bar(value: float, scale: float = 40.0) -> str:
    return "#" * max(0, int(round(value * scale)))


def main() -> None:
    machine = four_core_server(sets=128)
    ways = machine.domains[0].geometry.ways
    frequency = machine.frequency_hz

    # ------------------------------------------------------------------
    # Miss-ratio curves (Eq. 2) per benchmark.
    # ------------------------------------------------------------------
    print(f"Miss-ratio curves MPA(S) on a {ways}-way cache (Eq. 2):\n")
    sizes = [1, 2, 4, 8, 12, 16]
    header = "benchmark " + "".join(f"  S={s:<4d}" for s in sizes)
    print(header)
    print("-" * len(header))
    for name in PAPER_EIGHT:
        hist = BENCHMARKS[name].intrinsic_histogram()
        row = f"{name:10s}" + "".join(f"  {hist.mpa(s):.3f}" for s in sizes)
        print(row)

    # ------------------------------------------------------------------
    # Occupancy growth G(n) for a hungry and a modest process.
    # ------------------------------------------------------------------
    print("\nOccupancy growth G(n) (Eqs. 4-5): expected ways after n accesses\n")
    for name in ("mcf", "gzip"):
        model = OccupancyModel(BENCHMARKS[name].intrinsic_histogram(), max_ways=ways)
        print(f"{name} (saturates at {model.saturation_size:.2f} ways):")
        for n in (1, 4, 16, 64, 256, 1024):
            g = model.g(n)
            print(f"  n={n:5d}  G(n)={g:6.2f}  {ascii_bar(g / ways)}")
        print()

    # ------------------------------------------------------------------
    # Equilibrium shifts as pressure grows (Section 3.3).
    # ------------------------------------------------------------------
    model = PerformanceModel(ways=ways)
    for name in PAPER_EIGHT:
        model.register(FeatureVector.oracle(BENCHMARKS[name], frequency))

    print("How twolf's share of the cache shrinks as co-runners arrive:\n")
    co_runner_sets = [
        ["twolf"],
        ["twolf", "gzip"],
        ["twolf", "mcf"],
        ["twolf", "mcf", "art"],
        ["twolf", "mcf", "art", "ammp"],
    ]
    for names in co_runner_sets:
        prediction = model.predict(names)
        twolf = prediction[0]
        others = ", ".join(names[1:]) or "(alone)"
        print(f"  with {others:22s} -> {twolf.effective_size:5.2f} ways, "
              f"MPA {twolf.mpa:.3f}, slowdown x"
              f"{twolf.spi / model.predict_solo('twolf').spi:.2f}")

    # ------------------------------------------------------------------
    # The O(k) profiling / 2^k prediction trade the paper highlights.
    # ------------------------------------------------------------------
    k = len(PAPER_EIGHT)
    print(f"\nWith {k} feature vectors (O(k) profiling runs), the model can")
    print(f"price all {2**k - 1} non-empty co-run subsets without running any.")


if __name__ == "__main__":
    main()
