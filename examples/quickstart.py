#!/usr/bin/env python
"""Quickstart: predict cache contention before running the workloads.

This walks the paper's core loop end to end on a simulated 4-core
server:

1. profile two processes in isolation with the stressmark (Section 3.4),
2. predict their co-run behaviour with the equilibrium model (Section 3),
3. run them together and compare prediction to the emergent truth.

Run:
    python examples/quickstart.py
"""

from repro.config import PROFILE_SCALE, SimulationScale
from repro.core.performance_model import PerformanceModel
from repro.machine.simulator import MachineSimulation
from repro.machine.topology import four_core_server
from repro.profiling.profiler import profile_process
from repro.workloads.spec import BENCHMARKS


def main() -> None:
    # A scaled Q6600-like machine: two dies, 16-way shared L2 per die.
    machine = four_core_server(sets=128)
    ways = machine.domains[0].geometry.ways
    print(f"Machine: {machine.name}, {machine.num_cores} cores, "
          f"{ways}-way shared L2 per die\n")

    # ------------------------------------------------------------------
    # 1. Profile each process once, alone, via stressmark co-runs.
    #    O(A) runs per process cover all 2^k future combinations.
    # ------------------------------------------------------------------
    model = PerformanceModel(ways=ways)
    for name in ("mcf", "twolf"):
        print(f"Profiling {name} (stressmark sweep, {ways - 1} runs)...")
        profile = profile_process(
            BENCHMARKS[name], machine, scale=PROFILE_SCALE, seed=1
        )
        feature = profile.feature
        print(f"  API = {feature.api:.4f} L2 accesses/instruction")
        print(f"  Eq. 3 fit: SPI = {feature.alpha:.3e} * MPA + {feature.beta:.3e}"
              f"  (R^2 = {profile.spi_fit_r2:.4f})")
        model.register(feature)

    # ------------------------------------------------------------------
    # 2. Predict the co-run steady state (no co-run has happened yet).
    # ------------------------------------------------------------------
    prediction = model.predict(["mcf", "twolf"])
    print("\nPredicted steady state when sharing one 16-way L2:")
    for process in prediction.processes:
        print(f"  {process.name:6s} effective size {process.effective_size:5.2f} ways, "
              f"MPA {process.mpa:.3f}, SPI {process.spi:.3e}")

    # ------------------------------------------------------------------
    # 3. Ground truth: actually run the pair on cache-sharing cores.
    # ------------------------------------------------------------------
    scale = SimulationScale(warmup_accesses=20_000, measure_accesses=60_000)
    sim = MachineSimulation(
        machine,
        {0: [BENCHMARKS["mcf"]], 1: [BENCHMARKS["twolf"]]},
        scale=scale,
        seed=7,
    )
    result = sim.run_accesses()
    print("\nMeasured vs predicted:")
    for measured, predicted in zip(result.processes, prediction.processes):
        spi_err = abs(predicted.spi - measured.spi) / measured.spi * 100
        print(f"  {measured.name:6s} occupancy {measured.occupancy_ways:5.2f} vs "
              f"{predicted.effective_size:5.2f} ways | "
              f"MPA {measured.mpa:.3f} vs {predicted.mpa:.3f} | "
              f"SPI error {spi_err:.2f} %")


if __name__ == "__main__":
    main()
