"""Pricing machine states under heterogeneous core types and P-states.

The homogeneous pipeline prices a machine state (who runs on which
core) via ``CombinedModel.estimate_assignment_power`` / ``..throughput``
(Eq. 9-11).  This module generalizes both estimates to states that also
carry a P-state index per busy core:

- **Performance** — a core's operating point contributes its frequency
  ratio to the SPI model (``PerformanceModel.predict(...,
  frequency_ratios=...)``), so contention equilibria shift exactly as a
  faster/slower cache client would shift them.  Throughput follows from
  the ratio-scaled SPIs, no extra scaling needed.
- **Power** — Eq. 9 splits a core's draw into P_idle plus an
  activity-driven part.  The operating point multiplies the static term
  (design leakage x voltage) and the dynamic term (design activity
  energy x voltage^2); for the uncontended path the profiled
  ``p_alone - p_idle`` is additionally scaled by the frequency ratio
  (rates scale with the clock), while the contended path needs no such
  factor because Eq. 9 is evaluated on the ratio-scaled predicted SPI,
  which already carries the clock into the event rates.
- **Idle cores** park at the core type's deepest P-state (lowest static
  multiplier) — the race-to-idle assumption.

Bit-parity contract: a *unit* spec (every operating point exactly 1.0)
never touches hetero arithmetic at all — state pricing strips the
P-state indices and delegates wholesale to the homogeneous
``CombinedModel`` estimators, so results are bit-identical to a plain
machine rather than merely within float tolerance of one.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.combined import CombinedModel
from repro.core.feature import ProfileVector
from repro.core.timesharing import core_set_power, process_combinations
from repro.errors import ConfigurationError
from repro.hetero.types import HeteroMachineSpec
from repro.machine.topology import MachineTopology

# A hetero machine state: (core, names, pstate_index) per busy core,
# sorted by core id.  The homogeneous analogue drops the third element.
HeteroState = Tuple[Tuple[int, Tuple[str, ...], int], ...]


def canonical_hetero_state(
    assignment: Mapping[int, Sequence[str]],
    pstate_of: Mapping[int, int],
) -> HeteroState:
    """Canonical hashable form of a hetero machine assignment.

    Mirrors :func:`repro.fleet.evaluator.canonical_state` with the
    busy cores' P-state indices appended; idle cores carry no entry.
    """
    return tuple(
        sorted(
            (int(core), tuple(sorted(names)), int(pstate_of[core]))
            for core, names in assignment.items()
            if names
        )
    )


class HeteroPricer:
    """Scores hetero machine states: (watts, instructions per second).

    One pricer per evaluator machine config; it shares the config's
    ``CombinedModel`` (profiles, power model, per-domain performance
    models) and keeps its own co-run memo keyed by canonically sorted
    ``(name, frequency_ratio)`` pairs — name alone is not a key once
    the same program can run on two cores at different clocks.
    """

    def __init__(
        self,
        spec: HeteroMachineSpec,
        topology: MachineTopology,
        combined: CombinedModel,
        profiles: Mapping[str, ProfileVector],
    ) -> None:
        if spec.num_cores != topology.num_cores:
            raise ConfigurationError(
                f"hetero spec for {spec.machine!r} covers {spec.num_cores} "
                f"cores but topology {topology.name!r} has "
                f"{topology.num_cores}"
            )
        self.spec = spec
        self.topology = topology
        self.combined = combined
        self.profiles = profiles
        self.p_idle = combined.power_model.p_idle
        self.idle_core_watts: Tuple[float, ...] = tuple(
            spec.operating_point(
                core, spec.core_type(core).idle_pstate_index
            ).static_multiplier
            * self.p_idle
            for core in range(spec.num_cores)
        )
        if spec.is_unit:
            # Same expression the homogeneous config uses, so the two
            # idle baselines are the same float, not just equal sums.
            self.idle_watts = topology.num_cores * self.p_idle
        else:
            self.idle_watts = sum(self.idle_core_watts)
        self._corun: Dict[Tuple, Tuple[Tuple[float, float], ...]] = {}

    def _profile(self, name: str) -> ProfileVector:
        profile = self.profiles.get(name)
        if profile is None:
            raise ConfigurationError(f"no profile registered for {name!r}")
        return profile

    def _corun_points(
        self,
        domain_idx: int,
        combo: Sequence[str],
        ratios: Sequence[float],
    ) -> Tuple[Tuple[float, float], ...]:
        """Predicted (spi, l2mpr) per position of ``combo`` at ``ratios``."""
        order = sorted(
            range(len(combo)), key=lambda i: (combo[i], ratios[i])
        )
        key = (domain_idx, tuple((combo[i], ratios[i]) for i in order))
        cached = self._corun.get(key)
        if cached is None:
            model = self.combined.performance_models[domain_idx]
            prediction = model.predict(
                [combo[i] for i in order],
                frequency_ratios=[ratios[i] for i in order],
            )
            cached = tuple((p.spi, p.l2mpr) for p in prediction.processes)
            self._corun[key] = cached
        slot = [0] * len(combo)
        for canonical_position, original_index in enumerate(order):
            slot[original_index] = canonical_position
        return tuple(cached[slot[i]] for i in range(len(combo)))

    def _solo_ips(self, domain_idx: int, name: str, ratio: float) -> float:
        model = self.combined.performance_models[domain_idx]
        if ratio == 1.0:
            return model.predict_solo(name).ips
        return model.predict([name], frequency_ratios=[ratio]).processes[0].ips

    def state_metrics(self, state: HeteroState) -> Tuple[float, float]:
        """(watts, total instructions per second) of one machine state."""
        if self.spec.is_unit:
            # Parity-by-delegation: strip the P-state indices and run
            # the homogeneous estimators bit-for-bit.
            scoring = {core: list(names) for core, names, _ in state}
            watts = self.combined.estimate_assignment_power(scoring).watts
            ips = self.combined.estimate_assignment_throughput(scoring)
            return watts, ips
        by_core: Dict[int, Tuple[Tuple[str, ...], int]] = {}
        for core, names, pstate_index in state:
            if names:
                by_core[core] = (tuple(names), int(pstate_index))
        watts = 0.0
        total_ips = 0.0
        for domain_idx, domain in enumerate(self.topology.domains):
            busy = [c for c in domain.core_ids if c in by_core]
            for core in domain.core_ids:
                if core not in by_core:
                    watts += self.idle_core_watts[core]
            if not busy:
                continue
            points = [
                self.spec.operating_point(core, by_core[core][1])
                for core in busy
            ]
            per_core_lists: List[List[str]] = [
                list(by_core[core][0]) for core in busy
            ]
            if len(busy) == 1:
                # Scenario 1/2: no cache contention, processes run as
                # profiled but at the core's clock.  p_alone splits as
                # p_idle + active; the active part scales with the
                # clock (rates) and the dynamic multiplier (voltage^2
                # x design), the idle part with the static multiplier.
                point = points[0]
                names = per_core_lists[0]
                active = (
                    sum(
                        self._profile(name).p_alone - self.p_idle
                        for name in names
                    )
                    / len(names)
                )
                watts += (
                    point.static_multiplier * self.p_idle
                    + point.dynamic_multiplier
                    * point.frequency_ratio
                    * active
                )
                time_share = 1.0 / len(names)
                for name in names:
                    total_ips += time_share * self._solo_ips(
                        domain_idx, name, point.frequency_ratio
                    )
                continue
            # Scenario 3/4: Eq. 10 combination averaging, with each
            # position priced at its own core's operating point.  The
            # predicted SPI already reflects the frequency ratio, so
            # Eq. 9's event rates carry the clock — only the voltage /
            # design multipliers are applied on top.
            ratios = tuple(point.frequency_ratio for point in points)

            def combination_power(combo: Tuple[str, ...]) -> float:
                predicted = self._corun_points(domain_idx, combo, ratios)
                total = 0.0
                for point, (spi, l2mpr), name in zip(
                    points, predicted, combo
                ):
                    power = self.combined.process_power(name, spi, l2mpr)
                    total += (
                        point.static_multiplier * self.p_idle
                        + point.dynamic_multiplier * (power - self.p_idle)
                    )
                return total

            watts += core_set_power(per_core_lists, combination_power)
            combos = process_combinations(per_core_lists)
            combo_ips = 0.0
            for combo in combos:
                predicted = self._corun_points(domain_idx, combo, ratios)
                combo_ips += sum(1.0 / spi for spi, _ in predicted)
            total_ips += combo_ips / len(combos)
        return watts, total_ips
