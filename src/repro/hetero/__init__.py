"""Heterogeneous core types, DVFS P-states, and hetero state pricing."""

from repro.hetero.model import (
    HeteroPricer,
    HeteroState,
    canonical_hetero_state,
)
from repro.hetero.types import (
    BIG_CORE,
    CORE_TYPE_CATALOG,
    LITTLE_CORE,
    CoreType,
    HeteroMachineSpec,
    OperatingPoint,
    PState,
    big_little_spec,
    unit_spec,
)

__all__ = [
    "BIG_CORE",
    "CORE_TYPE_CATALOG",
    "LITTLE_CORE",
    "CoreType",
    "HeteroMachineSpec",
    "HeteroPricer",
    "HeteroState",
    "OperatingPoint",
    "PState",
    "big_little_spec",
    "canonical_hetero_state",
    "unit_spec",
]
