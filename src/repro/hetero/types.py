"""Heterogeneous core types and DVFS P-states.

The paper's power model (Eq. 9/11) assumes one homogeneous core type at
one fixed clock, but its coefficients are naturally parameterizable by
(core type, frequency): a core design scales the dynamic and static
power terms, and a P-state scales the clock (linear in performance, via
the SPI model's ``frequency_ratio`` hook) and the supply voltage
(quadratic in dynamic power, linear in leakage).

Three frozen value types capture this:

- :class:`PState` — one DVFS operating step: a frequency ratio plus a
  voltage ratio.  The classic CMOS scaling rules give the power
  multipliers: dynamic power scales with ``V^2`` (and with activity,
  which the frequency ratio already moves through the SPI model), static
  power scales with ``V``.
- :class:`CoreType` — a core design (big/little style): a performance
  scale applied on top of the P-state frequency ratio, design-level
  dynamic/static power scales, and the P-state table itself.  P-state
  index 0 is the nominal (default) state.
- :class:`HeteroMachineSpec` — binds a base machine topology to a core
  type per core.  JSON round-trippable via :mod:`repro.io`, hashable so
  fleet evaluator configs can key on it.

The *unit* predicate is load-bearing: a spec whose every operating
point multiplies by exactly 1.0 prices machine states by delegating to
the homogeneous code path wholesale, which is what makes the
homogeneous-parity pin bit-exact rather than merely close.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.machine.topology import STANDARD_MACHINES


@dataclass(frozen=True)
class OperatingPoint:
    """Resolved (core type x P-state) multipliers for one core.

    ``frequency_ratio`` feeds the SPI model (performance), the two
    power multipliers feed the hetero pricing of Eq. 9/11 terms.
    """

    frequency_ratio: float
    dynamic_multiplier: float
    static_multiplier: float

    @property
    def is_unit(self) -> bool:
        return (
            self.frequency_ratio == 1.0
            and self.dynamic_multiplier == 1.0
            and self.static_multiplier == 1.0
        )


@dataclass(frozen=True)
class PState:
    """One DVFS step: clock ratio plus voltage ratio vs. nominal."""

    name: str
    frequency_ratio: float = 1.0
    voltage_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("pstate name must be non-empty")
        if not self.frequency_ratio > 0:
            raise ConfigurationError(
                f"pstate {self.name!r}: frequency_ratio must be positive, "
                f"got {self.frequency_ratio}"
            )
        if not self.voltage_ratio > 0:
            raise ConfigurationError(
                f"pstate {self.name!r}: voltage_ratio must be positive, "
                f"got {self.voltage_ratio}"
            )

    @property
    def dynamic_multiplier(self) -> float:
        """Dynamic power multiplier from voltage scaling (V^2)."""
        return self.voltage_ratio * self.voltage_ratio

    @property
    def static_multiplier(self) -> float:
        """Static/leakage power multiplier from voltage scaling (V)."""
        return self.voltage_ratio

    @property
    def is_unit(self) -> bool:
        return self.frequency_ratio == 1.0 and self.voltage_ratio == 1.0


_NOMINAL = (PState("nominal", 1.0, 1.0),)


@dataclass(frozen=True)
class CoreType:
    """A core design: performance/power scales plus its P-state table.

    ``perf_scale`` multiplies the P-state frequency ratio to give the
    effective SPI-model frequency ratio (a little core at nominal clock
    still retires work slower than the big baseline).  The power scales
    are design-level multipliers applied on top of the P-state voltage
    multipliers.  P-state index 0 is the default operating state.
    """

    name: str
    perf_scale: float = 1.0
    dynamic_scale: float = 1.0
    static_scale: float = 1.0
    pstates: Tuple[PState, ...] = field(default=_NOMINAL)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("core type name must be non-empty")
        for label, value in (
            ("perf_scale", self.perf_scale),
            ("dynamic_scale", self.dynamic_scale),
            ("static_scale", self.static_scale),
        ):
            if not value > 0:
                raise ConfigurationError(
                    f"core type {self.name!r}: {label} must be positive, "
                    f"got {value}"
                )
        object.__setattr__(self, "pstates", tuple(self.pstates))
        if not self.pstates:
            raise ConfigurationError(
                f"core type {self.name!r} needs at least one pstate"
            )
        seen = set()
        for pstate in self.pstates:
            if not isinstance(pstate, PState):
                raise ConfigurationError(
                    f"core type {self.name!r}: pstates must be PState "
                    f"instances, got {type(pstate).__name__}"
                )
            if pstate.name in seen:
                raise ConfigurationError(
                    f"core type {self.name!r}: duplicate pstate name "
                    f"{pstate.name!r}"
                )
            seen.add(pstate.name)

    def operating_point(self, pstate_index: int) -> OperatingPoint:
        if not 0 <= pstate_index < len(self.pstates):
            raise ConfigurationError(
                f"core type {self.name!r}: pstate index {pstate_index} out "
                f"of range [0, {len(self.pstates)})"
            )
        pstate = self.pstates[pstate_index]
        return OperatingPoint(
            frequency_ratio=self.perf_scale * pstate.frequency_ratio,
            dynamic_multiplier=self.dynamic_scale * pstate.dynamic_multiplier,
            static_multiplier=self.static_scale * pstate.static_multiplier,
        )

    @property
    def is_unit(self) -> bool:
        """True when every operating point multiplies by exactly 1.0."""
        return all(
            self.operating_point(index).is_unit
            for index in range(len(self.pstates))
        )

    @property
    def idle_pstate_index(self) -> int:
        """Deepest P-state: minimal static multiplier, earliest index wins.

        Idle cores are priced here — the race-to-idle assumption that a
        parked core drops to its lowest-leakage operating state.
        """
        best = 0
        best_static = self.operating_point(0).static_multiplier
        for index in range(1, len(self.pstates)):
            static = self.operating_point(index).static_multiplier
            if static < best_static:
                best, best_static = index, static
        return best


@dataclass(frozen=True)
class HeteroMachineSpec:
    """Core types bound to the cores of a standard machine topology.

    ``core_type_of`` maps each core id of the base machine to an index
    into ``core_types``.  Frozen and hashable so evaluator machine
    configs can be keyed by (machine, sets, hetero spec).
    """

    machine: str
    core_types: Tuple[CoreType, ...]
    core_type_of: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.machine not in STANDARD_MACHINES:
            known = ", ".join(sorted(STANDARD_MACHINES))
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; choose from {known}"
            )
        object.__setattr__(self, "core_types", tuple(self.core_types))
        object.__setattr__(
            self, "core_type_of", tuple(int(i) for i in self.core_type_of)
        )
        if not self.core_types:
            raise ConfigurationError("hetero spec needs at least one core type")
        seen = set()
        for core_type in self.core_types:
            if not isinstance(core_type, CoreType):
                raise ConfigurationError(
                    "core_types must be CoreType instances, got "
                    f"{type(core_type).__name__}"
                )
            if core_type.name in seen:
                raise ConfigurationError(
                    f"duplicate core type name {core_type.name!r}"
                )
            seen.add(core_type.name)
        num_cores = STANDARD_MACHINES[self.machine]().num_cores
        if len(self.core_type_of) != num_cores:
            raise ConfigurationError(
                f"core_type_of must list one core type index per core: "
                f"machine {self.machine!r} has {num_cores} cores, got "
                f"{len(self.core_type_of)} entries"
            )
        for core, index in enumerate(self.core_type_of):
            if not 0 <= index < len(self.core_types):
                raise ConfigurationError(
                    f"core {core}: core type index {index} out of range "
                    f"[0, {len(self.core_types)})"
                )

    @property
    def num_cores(self) -> int:
        return len(self.core_type_of)

    def core_type(self, core: int) -> CoreType:
        if not 0 <= core < len(self.core_type_of):
            raise ConfigurationError(
                f"core {core} out of range [0, {len(self.core_type_of)})"
            )
        return self.core_types[self.core_type_of[core]]

    def operating_point(self, core: int, pstate_index: int) -> OperatingPoint:
        return self.core_type(core).operating_point(pstate_index)

    @property
    def pstate_counts(self) -> Tuple[int, ...]:
        """Per-core P-state count, in core id order."""
        return tuple(
            len(self.core_types[index].pstates) for index in self.core_type_of
        )

    @property
    def has_pstate_choice(self) -> bool:
        """True when any core has more than one P-state to pick from."""
        return any(count > 1 for count in self.pstate_counts)

    @property
    def is_unit(self) -> bool:
        """True when every core's every operating point is exactly 1.0.

        Unit specs price states by delegating to the homogeneous model
        path, which keeps them bit-identical to a plain machine.
        """
        return all(core_type.is_unit for core_type in self.core_types)

    def to_dict(self) -> Dict[str, object]:
        from repro.io import hetero_spec_to_dict

        return hetero_spec_to_dict(self)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "HeteroMachineSpec":
        from repro.io import hetero_spec_from_dict

        return hetero_spec_from_dict(data)


# Catalog of big/little-style core designs.  The big core is the paper's
# measured baseline (unit scales at nominal); the little core trades
# ~40 % of per-clock performance for a much smaller power envelope.
# P-state tables follow the classic near-linear frequency/voltage
# ladder: each step drops the clock and shaves the supply voltage.
BIG_CORE = CoreType(
    name="big",
    perf_scale=1.0,
    dynamic_scale=1.0,
    static_scale=1.0,
    pstates=(
        PState("p0", frequency_ratio=1.0, voltage_ratio=1.0),
        PState("p1", frequency_ratio=0.8, voltage_ratio=0.9),
        PState("p2", frequency_ratio=0.6, voltage_ratio=0.8),
    ),
)

LITTLE_CORE = CoreType(
    name="little",
    perf_scale=0.6,
    dynamic_scale=0.45,
    static_scale=0.55,
    pstates=(
        PState("p0", frequency_ratio=1.0, voltage_ratio=1.0),
        PState("p1", frequency_ratio=0.7, voltage_ratio=0.85),
    ),
)

CORE_TYPE_CATALOG: Dict[str, CoreType] = {
    BIG_CORE.name: BIG_CORE,
    LITTLE_CORE.name: LITTLE_CORE,
}


def big_little_spec(machine: str = "4-core-server") -> HeteroMachineSpec:
    """A big.LITTLE layout for ``machine``: even cores big, odd little."""
    if machine not in STANDARD_MACHINES:
        known = ", ".join(sorted(STANDARD_MACHINES))
        raise ConfigurationError(
            f"unknown machine {machine!r}; choose from {known}"
        )
    num_cores = STANDARD_MACHINES[machine]().num_cores
    return HeteroMachineSpec(
        machine=machine,
        core_types=(BIG_CORE, LITTLE_CORE),
        core_type_of=tuple(core % 2 for core in range(num_cores)),
    )


def unit_spec(machine: str = "4-core-server") -> HeteroMachineSpec:
    """A single unit core type at one unit P-state.

    The homogeneous-parity fixture: solving with this spec must be
    bit-identical to solving the plain machine.
    """
    num_cores = STANDARD_MACHINES[machine]().num_cores
    return HeteroMachineSpec(
        machine=machine,
        core_types=(CoreType(name="baseline"),),
        core_type_of=(0,) * num_cores,
    )
