"""Versioned, hash-addressed registry of served model artifacts.

A deployed prediction service answers queries against *artifacts* —
profiled suites (the expensive-to-produce feature/profile vectors of
:func:`repro.api.profile_suite`) and fitted Eq. 9 power models.  The
registry is the single place the server looks them up:

- **Publishing** accepts the in-memory result bundles, fitted models,
  saved-JSON paths or raw documents, normalises everything through the
  :mod:`repro.io` converters (the same bit-exact restore path
  ``api.load_suite`` / ``load_power_model`` use), and assigns a
  monotonically increasing version per name.
- **Content hashes.**  Every version records the SHA-256 of its
  canonical JSON document.  Republishing an identical document is
  idempotent (same version comes back); publishing different content
  under an existing name creates a new version and atomically makes
  it the default — that is the hot-swap path, and in-flight requests
  that already resolved the old version keep using it.
- **Lookup** by ``name`` (latest) or ``name@version`` (pinned).

The registry is lock-guarded: the asyncio front end resolves
artifacts on the event loop while batcher dispatch threads hold
references, and publishes may arrive over HTTP mid-traffic.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.serve.errors import UnknownModelError
from repro.errors import ConfigurationError

Pathish = Union[str, pathlib.Path]

__all__ = ["Artifact", "ModelRegistry", "parse_model_ref"]

#: Document kinds the registry knows how to decode.
_DECODERS = {}


def _decoders():
    """``kind -> from_dict`` map, built lazily to avoid import cycles."""
    if not _DECODERS:
        from repro.io import (
            power_model_from_dict,
            power_training_result_from_dict,
            profile_suite_result_from_dict,
        )

        _DECODERS.update(
            {
                "profile_suite": profile_suite_result_from_dict,
                "power_model": power_model_from_dict,
                "power_training_result": power_training_result_from_dict,
            }
        )
    return _DECODERS


def content_digest(document: Dict) -> str:
    """SHA-256 of the canonical (sorted-keys, compact) JSON encoding."""
    canonical = json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def parse_model_ref(ref: str) -> Tuple[str, Optional[int]]:
    """Split a ``name`` or ``name@version`` reference."""
    name, sep, version_text = ref.partition("@")
    if not name:
        raise ConfigurationError(f"empty model name in reference {ref!r}")
    if not sep:
        return name, None
    try:
        return name, int(version_text)
    except ValueError:
        raise ConfigurationError(
            f"bad model reference {ref!r}: version must be an integer"
        ) from None


@dataclass(frozen=True)
class Artifact:
    """One immutable published version of a named artifact."""

    name: str
    version: int
    kind: str
    digest: str
    document: Dict = field(repr=False)
    obj: Any = field(repr=False)

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"

    def describe(self) -> Dict:
        """Metadata summary (no payload) for ``/v1/models``."""
        return {
            "name": self.name,
            "version": self.version,
            "kind": self.kind,
            "digest": self.digest,
        }

    def power_model(self):
        """The fitted :class:`CorePowerModel` this artifact carries."""
        if self.kind == "power_model":
            return self.obj
        if self.kind == "power_training_result":
            return self.obj.model
        raise ConfigurationError(
            f"artifact {self.ref} is a {self.kind}, not a power model"
        )


class ModelRegistry:
    """Thread-safe name → versioned-artifact store."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: Dict[str, List[Artifact]] = {}
        self._listeners: List = []

    def add_listener(self, listener) -> None:
        """Register ``listener(artifact, previous)`` for new versions.

        Called outside the registry lock after a publish creates a new
        version (idempotent republishes do not fire); ``previous`` is
        the superseded default artifact, or ``None`` for a first
        publish.  The serve layer uses this for hot-swap accounting.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------
    def publish(self, name: str, source: Any) -> Artifact:
        """Publish an artifact under ``name``; returns its version.

        ``source`` may be a :class:`~repro.api.ProfileSuiteResult`, a
        :class:`~repro.api.PowerTrainingResult`, a fitted
        :class:`~repro.core.power_model.CorePowerModel`, a path to a
        saved JSON document, or the document itself.  Identical
        content is idempotent; new content becomes the new default
        version for the name (hot swap).
        """
        if not name or "@" in name:
            raise ConfigurationError(
                f"bad artifact name {name!r}: must be non-empty and "
                "must not contain '@' (reserved for version references)"
            )
        document, obj = self._as_document(source)
        kind = document.get("kind")
        if kind not in _decoders():
            raise ConfigurationError(
                f"cannot serve documents of kind {kind!r}; supported: "
                f"{sorted(_decoders())}"
            )
        if obj is None:
            obj = _decoders()[kind](document)
        digest = content_digest(document)
        with self._lock:
            versions = self._versions.setdefault(name, [])
            if versions and versions[-1].digest == digest:
                return versions[-1]
            previous = versions[-1] if versions else None
            artifact = Artifact(
                name=name,
                version=len(versions) + 1,
                kind=kind,
                digest=digest,
                document=document,
                obj=obj,
            )
            versions.append(artifact)
        for listener in self._listeners:
            listener(artifact, previous)
        return artifact

    @staticmethod
    def _as_document(source: Any) -> Tuple[Dict, Optional[Any]]:
        """``(document, decoded object or None)`` for a publish source.

        In-memory objects are kept *as handed in* (the document is
        only hashed and listed): the JSON encoding of a profile suite
        normalises histogram masses, so re-decoding it would shift
        served results by an ulp relative to :func:`repro.api.predict_mix`
        on the original object.  Paths and raw documents are decoded
        through the exact :mod:`repro.io` restore that
        ``api.load_suite`` / ``load_power_model`` use, so file-backed
        serving matches file-backed local prediction bit-for-bit too.
        """
        if isinstance(source, dict):
            return source, None
        if isinstance(source, (str, pathlib.Path)):
            from repro.io import load_json

            return load_json(source), None
        if hasattr(source, "to_dict"):
            return source.to_dict(), source
        from repro.core.power_model import CorePowerModel

        if isinstance(source, CorePowerModel):
            from repro.io import power_model_to_dict

            return power_model_to_dict(source), source
        raise ConfigurationError(
            f"cannot publish {type(source).__name__}: expected a result "
            "bundle, a fitted power model, a JSON path, or a document"
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, ref: str, version: Optional[int] = None) -> Artifact:
        """Resolve ``name`` / ``name@version`` to a published artifact."""
        name, parsed_version = parse_model_ref(ref)
        if version is None:
            version = parsed_version
        elif parsed_version is not None and parsed_version != version:
            raise ConfigurationError(
                f"conflicting versions: reference {ref!r} vs argument {version}"
            )
        with self._lock:
            versions = self._versions.get(name)
            if not versions:
                raise UnknownModelError(
                    f"no model named {name!r} is published; "
                    f"available: {sorted(self._versions) or 'none'}"
                )
            if version is None:
                return versions[-1]
            if not 1 <= version <= len(versions):
                raise UnknownModelError(
                    f"model {name!r} has no version {version} "
                    f"(published: 1..{len(versions)})"
                )
            return versions[version - 1]

    def list(self) -> List[Dict]:
        """Latest-version metadata for every published name."""
        with self._lock:
            return [
                {**versions[-1].describe(), "versions": len(versions)}
                for _, versions in sorted(self._versions.items())
            ]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._versions

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)
