"""repro.serve — asyncio prediction service over the model pipeline.

The paper's models exist to be queried *on-line*: a scheduler asks
"what would this tentative process-to-core assignment cost?" before
committing to it.  This subsystem turns the offline library into that
long-running surface, stdlib-only:

- :class:`ModelRegistry` — versioned, content-hashed store of served
  artifacts (profiled suites, fitted power models) with idempotent
  publish and hot swap.
- :class:`MicroBatcher` — dynamic micro-batching of concurrent
  predict requests into batches solved by a persistent
  :class:`~repro.parallel.ParallelPredictor`; size and linger knobs,
  bounded queue with explicit shedding, per-request deadlines.
- :class:`PredictionServer` / :class:`PredictionService` — the
  JSON-over-HTTP front end (``/v1/predict``, ``/v1/assign``,
  ``/v1/models``, ``/healthz``, ``/readyz``, ``/metrics``).
- :class:`ServerHandle` / :func:`start_server` — run it all from
  synchronous code (this is what :func:`repro.api.serve` and the
  ``repro serve`` CLI command use).
- :class:`ServeClient` / :func:`run_load` — stdlib client and the
  load generator behind ``benchmarks/bench_serve_throughput.py`` and
  ``benchmarks/bench_serve_scale.py`` (sustained mixed read/publish
  runs via :class:`PublishLoad`, SLO assertions via
  :meth:`LoadReport.check_slo`).
- :class:`PredictionResultCache` — bounded LRU over canonical mixes
  keyed by registry content digest; hits skip the solver entirely and
  stay bit-identical (see :mod:`repro.serve.cache`).
- :class:`AdaptiveBatchController` — AIMD tuning of batch size and
  linger against a p95 latency SLO.
- :class:`WorkerPool` / :func:`start_worker_pool` — N shared-nothing
  server processes behind ``SO_REUSEPORT`` for multi-core scale-out.

Served predictions are **bit-identical** to :func:`repro.api.predict_mix`
for the same suite/mix: batches run through cold-start equilibrium
caches, so a solution depends only on the co-run itself, never on
batching, concurrency, or request order.
"""

from repro.serve.batcher import AdaptiveBatchController, MicroBatcher
from repro.serve.cache import PredictionResultCache, canonical_mix
from repro.serve.client import (
    LoadReport,
    PublishLoad,
    ServeClient,
    ServeClientError,
    run_load,
)
from repro.serve.errors import (
    DeadlineExpiredError,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownModelError,
)
from repro.serve.handle import ServerHandle, start_server
from repro.serve.http import PredictionServer, PredictionService
from repro.serve.registry import Artifact, ModelRegistry, parse_model_ref
from repro.serve.workers import WorkerPool, start_worker_pool

__all__ = [
    "AdaptiveBatchController",
    "Artifact",
    "DeadlineExpiredError",
    "LoadReport",
    "MicroBatcher",
    "ModelRegistry",
    "PredictionResultCache",
    "PredictionServer",
    "PredictionService",
    "PublishLoad",
    "QueueFullError",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServerHandle",
    "ServiceClosedError",
    "UnknownModelError",
    "WorkerPool",
    "canonical_mix",
    "parse_model_ref",
    "run_load",
    "start_server",
    "start_worker_pool",
]
