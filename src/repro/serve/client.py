"""Stdlib HTTP client and load generator for the prediction service.

:class:`ServeClient` wraps one keep-alive
:class:`http.client.HTTPConnection` with typed helpers for every
endpoint; non-2xx responses raise :class:`ServeClientError` carrying
the status code and decoded error document, so callers can branch on
shed (429) vs deadline (504) without string matching.

:func:`run_load` is the benchmark driver: N threads, one connection
each, hammering ``/v1/predict`` with a shared work list and reporting
aggregate throughput plus a latency summary.  It is deliberately
simple (closed-loop, no ramp-up) — enough to measure the batching
win of :mod:`repro.serve` against one-request-per-call dispatch.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["ServeClient", "ServeClientError", "LoadReport", "run_load"]


class ServeClientError(Exception):
    """Non-2xx response from the server."""

    def __init__(self, status: int, document: Dict):
        self.status = status
        self.document = document
        super().__init__(
            f"HTTP {status}: {document.get('error', document)}"
        )


class ServeClient:
    """Synchronous JSON client for one server, with keep-alive."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive connection (server restarted, timeout):
            # reconnect once before giving up.
            self.close()
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        document = json.loads(raw.decode("utf-8")) if raw else {}
        if response.will_close:
            self.close()
        return response.status, document

    def _call(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        status, document = self._request(method, path, payload)
        if status >= 300:
            raise ServeClientError(status, document)
        return document

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._call("GET", "/healthz")

    def readyz(self) -> bool:
        status, document = self._request("GET", "/readyz")
        return status == 200 and bool(document.get("ready"))

    def metrics(self) -> Dict:
        return self._call("GET", "/metrics")

    def models(self) -> List[Dict]:
        return self._call("GET", "/v1/models")["models"]

    def publish(self, name: str, document: Dict) -> Dict:
        return self._call(
            "POST", "/v1/models", {"name": name, "document": document}
        )["published"]

    def predict(
        self,
        names: Sequence[str],
        *,
        ways: int,
        model: str = "default",
        timeout_ms: Optional[float] = None,
    ) -> Dict:
        payload: Dict[str, Any] = {
            "model": model,
            "names": list(names),
            "ways": ways,
        }
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/v1/predict", payload)

    def assign(
        self,
        names: Sequence[str],
        *,
        suite: str = "default",
        power_model: str = "power",
        machine: str = "4-core-server",
        sets: int = 128,
        objective: str = "power",
        greedy: bool = False,
    ) -> Dict:
        return self._call(
            "POST",
            "/v1/assign",
            {
                "suite": suite,
                "power_model": power_model,
                "names": list(names),
                "machine": machine,
                "sets": sets,
                "objective": objective,
                "greedy": greedy,
            },
        )

    def assign_v2(
        self,
        request: Dict,
        *,
        suite: str = "default",
        power_model: str = "power",
    ) -> Dict:
        """POST an ``assignment_request`` document to ``/v2/assign``.

        ``request`` is the JSON form of
        :class:`repro.api.AssignmentRequest` (see
        :func:`repro.io.assignment_request_to_dict`); the server solves
        it against the published suite and power model and returns a
        ``serve_fleet_assignment`` document.
        """
        return self._call(
            "POST",
            "/v2/assign",
            {"suite": suite, "power_model": power_model, "request": request},
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Aggregate result of one :func:`run_load` run."""

    requests: int
    completed: int
    shed: int
    errors: int
    duration_s: float
    latencies_s: List[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def run_load(
    host: str,
    port: int,
    mixes: Sequence[Sequence[str]],
    *,
    ways: int,
    model: str = "default",
    concurrency: int = 32,
    timeout: float = 120.0,
) -> LoadReport:
    """Drive ``/v1/predict`` with ``len(mixes)`` closed-loop requests.

    The work list is split round-robin across ``concurrency`` worker
    threads, each holding one keep-alive connection.  Shed responses
    (429) are counted separately from hard errors so benchmark runs
    under overload stay interpretable.
    """
    work: List[List[Tuple[int, Sequence[str]]]] = [
        [] for _ in range(concurrency)
    ]
    for index, mix in enumerate(mixes):
        work[index % concurrency].append((index, mix))
    lock = threading.Lock()
    totals = {"completed": 0, "shed": 0, "errors": 0}
    latencies: List[float] = []
    barrier = threading.Barrier(concurrency + 1)

    def _worker(items: List[Tuple[int, Sequence[str]]]) -> None:
        client = ServeClient(host, port, timeout=timeout)
        barrier.wait()
        local_latencies = []
        completed = shed = errors = 0
        for _, mix in items:
            start = time.perf_counter()
            try:
                client.predict(mix, ways=ways, model=model)
                completed += 1
                local_latencies.append(time.perf_counter() - start)
            except ServeClientError as error:
                if error.status == 429:
                    shed += 1
                else:
                    errors += 1
            except Exception:  # noqa: BLE001 - connection-level failure
                errors += 1
        client.close()
        with lock:
            totals["completed"] += completed
            totals["shed"] += shed
            totals["errors"] += errors
            latencies.extend(local_latencies)

    threads = [
        threading.Thread(target=_worker, args=(items,), daemon=True)
        for items in work
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start
    return LoadReport(
        requests=len(mixes),
        completed=totals["completed"],
        shed=totals["shed"],
        errors=totals["errors"],
        duration_s=duration,
        latencies_s=latencies,
    )
