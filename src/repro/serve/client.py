"""Stdlib HTTP client and load generator for the prediction service.

:class:`ServeClient` wraps one keep-alive
:class:`http.client.HTTPConnection` with typed helpers for every
endpoint; non-2xx responses raise :class:`ServeClientError` carrying
the status code and decoded error document, so callers can branch on
shed (429) vs deadline (504) without string matching.

:func:`run_load` is the benchmark driver: N threads, one connection
each, hammering ``/v1/predict`` with a shared work list and reporting
aggregate throughput plus a latency summary.  It is deliberately
simple (closed-loop, no ramp-up) — enough to measure the batching
win of :mod:`repro.serve` against one-request-per-call dispatch.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ServeClient",
    "ServeClientError",
    "LoadReport",
    "PublishLoad",
    "run_load",
]

#: Failures that mean a *reused* keep-alive connection went stale —
#: the server (or a middlebox) closed it between requests, before our
#: request was processed.  Only these are safe to retry; anything
#: else (connection refused on a fresh socket, a response timeout)
#: may follow a request that actually reached the server.
_STALE_CONNECTION_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class ServeClientError(Exception):
    """Non-2xx response from the server."""

    def __init__(self, status: int, document: Dict):
        self.status = status
        self.document = document
        super().__init__(
            f"HTTP {status}: {document.get('error', document)}"
        )


class ServeClient:
    """Synchronous JSON client for one server, with keep-alive.

    Keep-alive reuse races server-side connection close (idle
    timeouts, graceful drain): a request written to a connection the
    server already closed fails before any response byte arrives.
    The client retries **exactly once**, on a fresh connection, and
    **only** when the failed attempt used a *reused* connection and
    died with a stale-connection error (reset / remote disconnect
    before the status line) — a failure on a fresh connection, or a
    timeout waiting for a response, is never retried, because the
    request may have reached the server and retrying could execute it
    twice.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Headers of the most recent response (e.g. ``X-Repro-Worker``).
        self.last_headers: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _attempt(
        self, method: str, path: str, body, headers
    ) -> Tuple[int, Dict]:
        assert self._connection is not None
        self._connection.request(method, path, body=body, headers=headers)
        response = self._connection.getresponse()
        raw = response.read()
        self.last_headers = {k.lower(): v for k, v in response.getheaders()}
        document = json.loads(raw.decode("utf-8")) if raw else {}
        if response.will_close:
            self.close()
        return response.status, document

    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        reused = self._connection is not None
        if not reused:
            self._connection = self._connect()
        try:
            return self._attempt(method, path, body, headers)
        except socket.timeout:
            # The request reached the server and the response is
            # merely late; retrying would double-execute it.
            self.close()
            raise
        except _STALE_CONNECTION_ERRORS:
            self.close()
            if not reused:
                raise
            # Stale keep-alive race: the server closed the idle
            # connection before processing anything — retry exactly
            # once on a fresh connection.
            self._connection = self._connect()
            try:
                return self._attempt(method, path, body, headers)
            except BaseException:
                self.close()
                raise
        except (http.client.HTTPException, OSError):
            # Anything else (refused fresh connection, protocol state
            # error, ...) is not retried; just drop the dead socket.
            self.close()
            raise

    def _call(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        status, document = self._request(method, path, payload)
        if status >= 300:
            raise ServeClientError(status, document)
        return document

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._call("GET", "/healthz")

    def readyz(self) -> bool:
        status, document = self._request("GET", "/readyz")
        return status == 200 and bool(document.get("ready"))

    def metrics(self) -> Dict:
        return self._call("GET", "/metrics")

    def models(self) -> List[Dict]:
        return self._call("GET", "/v1/models")["models"]

    def publish(self, name: str, document: Dict) -> Dict:
        return self._call(
            "POST", "/v1/models", {"name": name, "document": document}
        )["published"]

    def predict(
        self,
        names: Sequence[str],
        *,
        ways: int,
        model: str = "default",
        frequency_ratios: Optional[Sequence[float]] = None,
        timeout_ms: Optional[float] = None,
    ) -> Dict:
        payload: Dict[str, Any] = {
            "model": model,
            "names": list(names),
            "ways": ways,
        }
        if frequency_ratios is not None:
            payload["frequency_ratios"] = [float(r) for r in frequency_ratios]
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._call("POST", "/v1/predict", payload)

    def assign(
        self,
        names: Sequence[str],
        *,
        suite: str = "default",
        power_model: str = "power",
        machine: str = "4-core-server",
        sets: int = 128,
        objective: str = "power",
        greedy: bool = False,
    ) -> Dict:
        return self._call(
            "POST",
            "/v1/assign",
            {
                "suite": suite,
                "power_model": power_model,
                "names": list(names),
                "machine": machine,
                "sets": sets,
                "objective": objective,
                "greedy": greedy,
            },
        )

    def assign_v2(
        self,
        request: Dict,
        *,
        suite: str = "default",
        power_model: str = "power",
    ) -> Dict:
        """POST an ``assignment_request`` document to ``/v2/assign``.

        ``request`` is the JSON form of
        :class:`repro.api.AssignmentRequest` (see
        :func:`repro.io.assignment_request_to_dict`); the server solves
        it against the published suite and power model and returns a
        ``serve_fleet_assignment`` document.
        """
        return self._call(
            "POST",
            "/v2/assign",
            {"suite": suite, "power_model": power_model, "request": request},
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass
class PublishLoad:
    """Publish-traffic spec for :func:`run_load`.

    A dedicated publisher thread POSTs the ``documents`` to
    ``/v1/models`` under ``name``, round-robin, every ``interval_s``
    seconds while the read load runs — alternating *distinct*
    documents keeps every publish an actual hot swap (an identical
    republish is idempotent and swaps nothing).
    """

    name: str
    documents: Sequence[Dict]
    interval_s: float = 0.05


@dataclass
class LoadReport:
    """Aggregate result of one :func:`run_load` run."""

    requests: int
    completed: int
    shed: int
    errors: int
    duration_s: float
    latencies_s: List[float] = field(repr=False, default_factory=list)
    published: int = 0
    publish_errors: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def check_slo(
        self,
        *,
        max_p95_s: Optional[float] = None,
        max_shed_rate: Optional[float] = None,
        max_error_rate: float = 0.0,
        min_throughput_rps: Optional[float] = None,
    ) -> "LoadReport":
        """Assert the run met its SLOs; returns ``self`` for chaining.

        Raises :class:`AssertionError` naming every violated objective
        — the benchmark/CI harnesses call this so an SLO miss fails
        loudly with the measured numbers in the message.
        """
        failures = []
        p95 = self.latency_quantile(0.95)
        if max_p95_s is not None and p95 > max_p95_s:
            failures.append(f"p95 {p95 * 1e3:.1f} ms > {max_p95_s * 1e3:.1f} ms")
        if max_shed_rate is not None and self.shed_rate > max_shed_rate:
            failures.append(
                f"shed rate {self.shed_rate:.3f} > {max_shed_rate:.3f}"
            )
        if self.error_rate > max_error_rate:
            failures.append(
                f"error rate {self.error_rate:.3f} > {max_error_rate:.3f} "
                f"({self.errors} hard errors)"
            )
        if self.publish_errors:
            failures.append(f"{self.publish_errors} publish errors")
        if (
            min_throughput_rps is not None
            and self.throughput_rps < min_throughput_rps
        ):
            failures.append(
                f"throughput {self.throughput_rps:.0f} req/s < "
                f"{min_throughput_rps:.0f} req/s"
            )
        assert not failures, "SLO violations: " + "; ".join(failures)
        return self


def run_load(
    host: str,
    port: int,
    mixes: Sequence[Sequence[str]],
    *,
    ways: int,
    model: str = "default",
    concurrency: int = 32,
    timeout: float = 120.0,
    duration_s: Optional[float] = None,
    publish: Optional[PublishLoad] = None,
) -> LoadReport:
    """Drive ``/v1/predict`` with closed-loop client traffic.

    The work list is split round-robin across ``concurrency`` worker
    threads, each holding one keep-alive connection.  Shed responses
    (429) are counted separately from hard errors so benchmark runs
    under overload stay interpretable.

    Two modes:

    - **One-shot** (``duration_s=None``): every mix is requested
      exactly once — the original batching benchmark shape.
    - **Sustained** (``duration_s`` set): each worker loops over its
      share of the work list until the deadline, so throughput is
      measured at steady state; ``requests`` counts actual attempts.

    ``publish`` adds mixed read/*write* traffic: a publisher thread
    hot-swaps models via ``POST /v1/models`` while the readers run —
    the serving layer must stay correct (and its caches must
    invalidate) under concurrent republish, which
    :meth:`LoadReport.check_slo` then asserts via the error counts.
    """
    work: List[List[Sequence[str]]] = [[] for _ in range(concurrency)]
    for index, mix in enumerate(mixes):
        work[index % concurrency].append(mix)
    lock = threading.Lock()
    totals = {
        "requests": 0,
        "completed": 0,
        "shed": 0,
        "errors": 0,
        "published": 0,
        "publish_errors": 0,
    }
    latencies: List[float] = []
    stop_publishing = threading.Event()
    barrier = threading.Barrier(concurrency + 1)

    def _worker(items: List[Sequence[str]]) -> None:
        client = ServeClient(host, port, timeout=timeout)
        barrier.wait()
        local_latencies = []
        requests = completed = shed = errors = 0
        deadline = (
            time.perf_counter() + duration_s if duration_s is not None else None
        )
        while items:
            for mix in items:
                if deadline is not None and time.perf_counter() >= deadline:
                    break
                requests += 1
                start = time.perf_counter()
                try:
                    client.predict(mix, ways=ways, model=model)
                    completed += 1
                    local_latencies.append(time.perf_counter() - start)
                except ServeClientError as error:
                    if error.status == 429:
                        shed += 1
                    else:
                        errors += 1
                except Exception:  # noqa: BLE001 - connection-level failure
                    errors += 1
            if deadline is None or time.perf_counter() >= deadline:
                break
        client.close()
        with lock:
            totals["requests"] += requests
            totals["completed"] += completed
            totals["shed"] += shed
            totals["errors"] += errors
            latencies.extend(local_latencies)

    def _publisher(spec: PublishLoad) -> None:
        client = ServeClient(host, port, timeout=timeout)
        published = publish_errors = 0
        index = 0
        while not stop_publishing.wait(spec.interval_s):
            document = spec.documents[index % len(spec.documents)]
            index += 1
            try:
                client.publish(spec.name, document)
                published += 1
            except Exception:  # noqa: BLE001 - counted, not raised
                publish_errors += 1
        client.close()
        with lock:
            totals["published"] += published
            totals["publish_errors"] += publish_errors

    threads = [
        threading.Thread(target=_worker, args=(items,), daemon=True)
        for items in work
    ]
    for thread in threads:
        thread.start()
    publisher = None
    if publish is not None:
        publisher = threading.Thread(
            target=_publisher, args=(publish,), daemon=True
        )
        publisher.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start
    if publisher is not None:
        stop_publishing.set()
        publisher.join(timeout=30)
    return LoadReport(
        requests=totals["requests"],
        completed=totals["completed"],
        shed=totals["shed"],
        errors=totals["errors"],
        duration_s=duration,
        latencies_s=latencies,
        published=totals["published"],
        publish_errors=totals["publish_errors"],
    )
