"""Exception types of the serving layer.

All of them subclass :class:`repro.errors.ReproError`, so callers that
already catch the library-wide base keep working; the HTTP front end
maps each subclass to a specific status code (see
:mod:`repro.serve.http`).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "ServeError",
    "QueueFullError",
    "DeadlineExpiredError",
    "FleetTooLargeError",
    "ServiceClosedError",
    "UnknownModelError",
]


class ServeError(ReproError):
    """Base class of all serving-layer errors."""


class QueueFullError(ServeError):
    """Admission control shed the request: the pending queue is full.

    Mapped to HTTP 429 — the client should back off and retry; the
    request was rejected *before* queuing, so it never consumed model
    capacity and never hangs.
    """


class DeadlineExpiredError(ServeError):
    """The request's deadline passed while it waited in the queue.

    Expired requests are completed with this error at flush time and
    are **never dispatched** to the prediction engine — work the
    client has already given up on is not worth doing.  Mapped to
    HTTP 504.
    """


class ServiceClosedError(ServeError):
    """The service is draining or stopped and accepts no new work.

    Mapped to HTTP 503; in-flight requests admitted before the drain
    began still complete.
    """


class UnknownModelError(ConfigurationError, ServeError):
    """No artifact with the requested name (or version) is published.

    Mapped to HTTP 404.
    """


class FleetTooLargeError(ServeError):
    """A ``/v2/assign`` request exceeds the service's fleet limits.

    Solving is synchronous per request; a fleet beyond the configured
    process/machine ceilings would monopolise the assign executor, so
    it is rejected up front.  Mapped to HTTP 413 — batch the work or
    run :func:`repro.api.solve_assignment` directly.
    """
