"""Thread-backed handle for running the server from synchronous code.

The CLI, tests and notebooks are synchronous; the server is an
asyncio application.  :func:`start_server` bridges the two: it boots a
:class:`~repro.serve.http.PredictionServer` on a dedicated daemon
thread running its own event loop and returns a :class:`ServerHandle`
once the listening socket is bound (so ``handle.port`` is always the
real, possibly ephemeral, port).  :meth:`ServerHandle.stop` performs
the same graceful drain ``SIGTERM`` triggers in the CLI: stop
listening, flush queued batches, then tear the loop down.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Mapping, Optional

from repro.serve.http import PredictionServer, PredictionService
from repro.serve.registry import ModelRegistry

__all__ = ["ServerHandle", "start_server"]


class ServerHandle:
    """A running prediction server plus the thread/loop driving it."""

    def __init__(
        self,
        server: PredictionServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self._server = server
        self._loop = loop
        self._thread = thread
        self._stop_lock = threading.Lock()
        self._stopped = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def registry(self) -> ModelRegistry:
        return self._server.service.registry

    @property
    def service(self) -> PredictionService:
        return self._server.service

    @property
    def running(self) -> bool:
        return self._thread.is_alive() and not self._stopped

    # ------------------------------------------------------------------
    def publish(self, name: str, source: Any):
        """Publish / hot-swap an artifact on the live server."""
        return self.registry.publish(name, source)

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Gracefully stop the server (idempotent).

        In-flight and queued requests are drained (``drain=True``)
        before the event loop shuts down; the call blocks until the
        server thread has exited.
        """
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self._server.stop(drain=drain), self._loop
            )
            future.result(timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_server(
    models: Optional[Mapping[str, Any]] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: Optional[int] = None,
    strategy: str = "auto",
    max_batch_size: int = 32,
    max_linger_ms: float = 2.0,
    max_queue: int = 256,
    engine: str = "auto",
    result_cache_size: int = 4096,
    target_p95_ms: Optional[float] = None,
    max_body_bytes: int = 8 * 1024 * 1024,
    reuse_port: bool = False,
    worker_id: Optional[int] = None,
    boot_timeout_s: float = 30.0,
) -> ServerHandle:
    """Boot a prediction server on a background thread.

    Args:
        models: ``name -> artifact`` to publish before serving
            (result bundles, fitted power models, saved-JSON paths or
            raw documents — see :meth:`ModelRegistry.publish`).
        host / port: Bind address; ``port=0`` picks an ephemeral port.
        workers: Worker processes per prediction engine (default:
            in-process serial — results are bit-identical either way).
        strategy: Equilibrium solver strategy for served predictions.
        max_batch_size / max_linger_ms / max_queue: Micro-batching
            and admission-control knobs.
        engine: Batch execution engine per predictor (see
            :class:`~repro.parallel.ParallelPredictor`).
        result_cache_size: Canonical-mix result-cache capacity; ``0``
            disables caching (see :mod:`repro.serve.cache`).
        target_p95_ms: End-to-end p95 latency SLO driving adaptive
            batching; ``None`` keeps the static knobs.
        max_body_bytes: Request bodies above this declared size are
            rejected with 413 before being read.
        reuse_port / worker_id: Multi-worker plumbing — bind with
            ``SO_REUSEPORT`` and stamp responses with an
            ``X-Repro-Worker`` header (see :mod:`repro.serve.workers`).
    """
    registry = ModelRegistry()
    for name, source in (models or {}).items():
        registry.publish(name, source)
    service = PredictionService(
        registry,
        workers=workers,
        strategy=strategy,
        max_batch_size=max_batch_size,
        max_linger_s=max_linger_ms / 1000.0,
        max_queue=max_queue,
        engine=engine,
        result_cache_size=result_cache_size,
        target_p95_ms=target_p95_ms,
    )
    server = PredictionServer(
        service,
        host=host,
        port=port,
        max_body_bytes=max_body_bytes,
        reuse_port=reuse_port,
        worker_id=worker_id,
    )

    started = threading.Event()
    boot: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        boot["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # surfaced in the caller below
            boot["error"] = error
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(boot_timeout_s):
        raise RuntimeError(f"server failed to start within {boot_timeout_s}s")
    if "error" in boot:
        raise boot["error"]
    return ServerHandle(server, boot["loop"], thread)
