"""Asyncio JSON-over-HTTP front end for the prediction service.

Stdlib only: requests are parsed straight off :mod:`asyncio` streams
(HTTP/1.1 with keep-alive), bodies and responses are plain JSON.  The
surface is deliberately small:

====================  ======================================================
``GET /healthz``      liveness — 200 as long as the process runs
``GET /readyz``       readiness — 503 until started and while draining
``GET /metrics``      the service's :class:`repro.obs.MetricsRegistry`
``GET /v1/models``    registry listing (name, version, kind, digest)
``POST /v1/models``   publish / hot-swap an artifact
``POST /v1/predict``  batched co-run prediction (see below)
``POST /v1/assign``   process-to-core assignment search
``POST /v2/assign``   declarative fleet assignment (see below)
====================  ======================================================

``/v1/predict`` requests —
``{"model": "suite", "names": [...], "ways": 16, "timeout_ms": 50}`` —
are coalesced by a per-``(model version, ways)``
:class:`~repro.serve.batcher.MicroBatcher` into batches solved by a
persistent :class:`~repro.parallel.ParallelPredictor`, so the returned
``prediction`` document is bit-identical to what
:func:`repro.api.predict_mix` computes for the same suite and mix.  An
optional ``"frequency_ratios": [...]`` field (one positive number per
name) prices the mix at per-process DVFS clock ratios (see
:mod:`repro.hetero`); it flows through the result cache key and the
batch dispatch positionally.

``/v2/assign`` requests carry a full
:class:`~repro.api.AssignmentRequest` document —
``{"suite": "...", "power_model": "...", "request": {...}}`` — and are
solved by :func:`repro.api.solve_assignment` off the event loop.  The
``/v1/assign`` schema (and its response bytes) is frozen; new
capabilities (fleets, power budgets, greedy/anneal solvers) land only
in ``/v2``.  Malformed request documents come back as 400 with the
offending JSON field path; fleets beyond the service's size ceilings
come back as 413.

Error mapping: unknown model → 404, oversized fleet → 413, shed
(queue full) → 429, deadline expired in queue → 504, draining/stopped
→ 503, any other library error → 400, unexpected exception → 500.
Every error body is ``{"error": ..., "type": ...}``.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ConfigurationError, ReproError
from repro.obs import MetricsRegistry
from repro.parallel import ParallelPredictor
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import PredictionResultCache
from repro.serve.errors import (
    DeadlineExpiredError,
    FleetTooLargeError,
    QueueFullError,
    ServiceClosedError,
    UnknownModelError,
)
from repro.serve.registry import Artifact, ModelRegistry

__all__ = ["PredictionService", "PredictionServer", "SERVE_FORMAT_VERSION"]

logger = logging.getLogger(__name__)

SERVE_FORMAT_VERSION = 1

# Ceilings for /v2/assign: solving is synchronous per request, so a
# pathological fleet would monopolise the assign executor.  Oversized
# requests are rejected up front with 413.
MAX_FLEET_PROCESSES = 50_000
MAX_FLEET_MACHINES = 4096

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(ReproError):
    """Malformed request payload (maps to 400)."""


def _field(payload: Dict, key: str, kind, *, default=None, required: bool = False):
    value = payload.get(key, default)
    if value is None:
        if required:
            raise _BadRequest(f"missing required field {key!r}")
        return None
    if kind is int and isinstance(value, bool):
        raise _BadRequest(f"field {key!r} must be an integer")
    if not isinstance(value, kind):
        raise _BadRequest(
            f"field {key!r} must be {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}"
        )
    return value


def _names_field(payload: Dict) -> Tuple[str, ...]:
    names = payload.get("names")
    if (
        not isinstance(names, list)
        or not names
        or not all(isinstance(name, str) for name in names)
    ):
        raise _BadRequest(
            "field 'names' must be a non-empty list of process names"
        )
    return tuple(names)


class PredictionService:
    """Registry + batchers + assignment executor behind the endpoints.

    Args:
        registry: Artifact store (default: a fresh empty one).
        workers: Worker processes per prediction engine;
            ``None``/``0``/``1`` solve in-process (bit-identical).
        strategy: Equilibrium solver strategy for served predictions.
        max_batch_size / max_linger_s / max_queue: Batching and
            admission knobs, applied to every batcher (see
            :class:`MicroBatcher`).
        engine: Batch execution engine handed to every
            :class:`ParallelPredictor` (``"auto"`` / ``"serial"`` /
            ``"vectorized"`` / ``"pool"``) — a pure throughput knob,
            responses are bit-identical under all of them.  The
            default ``"auto"`` uses the in-process stacked-numpy
            solver on single-core hosts and the process pool when
            ``workers > 1`` pays off.
        result_cache_size: Capacity of the canonical-mix prediction
            result cache (see :mod:`repro.serve.cache`); ``0``
            disables it.  Cache-hit responses are bit-identical to
            cold solves — the key carries the artifact's SHA-256
            digest, so hot swaps invalidate for free.
        target_p95_ms: End-to-end p95 latency SLO; when set, every
            batcher's size/linger is tuned adaptively against it (see
            :class:`~repro.serve.batcher.AdaptiveBatchController`).
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        workers: Optional[int] = None,
        strategy: str = "auto",
        max_batch_size: int = 32,
        max_linger_s: float = 0.002,
        max_queue: int = 256,
        engine: str = "auto",
        result_cache_size: int = 4096,
        target_p95_ms: Optional[float] = None,
    ):
        self.registry = registry if registry is not None else ModelRegistry()
        self.workers = workers
        self.strategy = strategy
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.max_linger_s = max_linger_s
        self.max_queue = max_queue
        self.target_p95_s = (
            target_p95_ms / 1000.0 if target_p95_ms is not None else None
        )
        self.metrics = MetricsRegistry()
        self.result_cache: Optional[PredictionResultCache] = (
            PredictionResultCache(result_cache_size, metrics=self.metrics)
            if result_cache_size
            else None
        )
        self.registry.add_listener(self._on_publish)
        # Keyed by (name, version, ways): a hot swap publishes a new
        # version and naturally gets a fresh engine; pinned requests
        # against the old version keep their old batcher.
        self._batchers: Dict[Tuple[str, int, int], MicroBatcher] = {}
        self._assign_pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def _on_publish(self, artifact: Artifact, previous: Optional[Artifact]) -> None:
        """Registry listener: count publishes and hot swaps.

        Invalidation itself is free — cache keys and batcher keys both
        carry the version/digest, so requests resolving the new
        default version miss and re-solve while pinned requests keep
        their old entries.
        """
        self.metrics.counter("serve.models.published").inc()
        if previous is not None:
            self.metrics.counter("serve.models.hot_swaps").inc()

    # ------------------------------------------------------------------
    # Endpoints' backing operations
    # ------------------------------------------------------------------
    def _batcher_for(self, artifact: Artifact, ways: int) -> MicroBatcher:
        key = (artifact.name, artifact.version, ways)
        batcher = self._batchers.get(key)
        if batcher is None:
            engine = ParallelPredictor(
                artifact.obj.features,
                ways=ways,
                strategy=self.strategy,
                workers=self.workers,
                engine=self.engine,
            )
            batcher = MicroBatcher(
                engine,
                max_batch_size=self.max_batch_size,
                max_linger_s=self.max_linger_s,
                max_queue=self.max_queue,
                metrics=self.metrics,
                target_p95_s=self.target_p95_s,
            )
            self._batchers[key] = batcher
        return batcher

    async def predict(
        self,
        model_ref: str,
        names,
        *,
        ways: int,
        frequency_ratios=None,
        timeout_s: Optional[float] = None,
    ) -> Dict:
        """Resolve, batch, solve; returns the response document."""
        if self._closed:
            raise ServiceClosedError("service is stopped")
        if not isinstance(ways, int) or ways < 1:
            raise _BadRequest(f"'ways' must be a positive integer, got {ways!r}")
        if frequency_ratios is not None:
            if not isinstance(frequency_ratios, (list, tuple)) or not all(
                isinstance(ratio, (int, float)) and not isinstance(ratio, bool)
                for ratio in frequency_ratios
            ):
                raise _BadRequest(
                    "field 'frequency_ratios' must be a list of numbers"
                )
            if len(frequency_ratios) != len(names):
                raise _BadRequest(
                    f"field 'frequency_ratios' has {len(frequency_ratios)} "
                    f"entries for {len(names)} names"
                )
            if not all(ratio > 0 for ratio in frequency_ratios):
                raise _BadRequest(
                    "field 'frequency_ratios' entries must be positive"
                )
            frequency_ratios = tuple(float(r) for r in frequency_ratios)
        artifact = self.registry.get(model_ref)
        if artifact.kind != "profile_suite":
            raise ConfigurationError(
                f"/v1/predict needs a profile_suite artifact; "
                f"{artifact.ref} is a {artifact.kind}"
            )
        self._check_names(artifact, names)
        prediction = None
        if self.result_cache is not None:
            # Probed before the batcher: a hot repeated mix skips the
            # queue and the solver entirely.  The key carries the
            # artifact digest (hot swaps miss by construction) and the
            # DVFS frequency ratios (two ratios never share an entry).
            prediction = self.result_cache.get(
                artifact.digest, ways, names, frequency_ratios
            )
        if prediction is None:
            prediction = await self._batcher_for(artifact, ways).submit(
                names, frequency_ratios=frequency_ratios, timeout_s=timeout_s
            )
            if self.result_cache is not None:
                self.result_cache.put(
                    artifact.digest, ways, names, prediction, frequency_ratios
                )
        from repro.api import MixPrediction

        mix = MixPrediction(ways=ways, names=tuple(names), prediction=prediction)
        return {
            "kind": "serve_prediction",
            "version": SERVE_FORMAT_VERSION,
            "model": artifact.ref,
            "digest": artifact.digest,
            "prediction": mix.to_dict(),
        }

    async def assign(
        self,
        suite_ref: str,
        power_ref: str,
        names,
        *,
        machine: str = "4-core-server",
        sets: int = 128,
        objective: str = "power",
        greedy: bool = False,
    ) -> Dict:
        """Run the assignment search off the event loop."""
        if self._closed:
            raise ServiceClosedError("service is stopped")
        suite = self.registry.get(suite_ref)
        if suite.kind != "profile_suite":
            raise ConfigurationError(
                f"'suite' must reference a profile_suite artifact; "
                f"{suite.ref} is a {suite.kind}"
            )
        self._check_names(suite, names)
        power = self.registry.get(power_ref)
        power_model = power.power_model()
        # The implementation function, not the public shim: /v1 must
        # stay byte-identical and must not log DeprecationWarnings.
        from repro.api import _pick_assignment_impl

        if self._assign_pool is None:
            self._assign_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-assign"
            )
        loop = asyncio.get_running_loop()
        pick = await loop.run_in_executor(
            self._assign_pool,
            functools.partial(
                _pick_assignment_impl,
                list(names),
                suite.obj,
                power_model,
                machine=machine,
                sets=sets,
                objective=objective,
                greedy=greedy,
            ),
        )
        self.metrics.counter("serve.assign.completed").inc()
        return {
            "kind": "serve_assignment",
            "version": SERVE_FORMAT_VERSION,
            "suite": suite.ref,
            "power_model": power.ref,
            "pick": pick.to_dict(),
        }

    async def assign_v2(self, payload: Dict) -> Dict:
        """Solve a declarative :class:`AssignmentRequest` off the loop."""
        if self._closed:
            raise ServiceClosedError("service is stopped")
        suite = self.registry.get(_field(payload, "suite", str, default="default"))
        if suite.kind != "profile_suite":
            raise ConfigurationError(
                f"'suite' must reference a profile_suite artifact; "
                f"{suite.ref} is a {suite.kind}"
            )
        power = self.registry.get(
            _field(payload, "power_model", str, default="power")
        )
        power_model = power.power_model()
        document = payload.get("request")
        if not isinstance(document, dict):
            raise _BadRequest("field 'request' must be a JSON object")
        from repro.api import solve_assignment
        from repro.io import assignment_request_from_dict, fleet_assignment_to_dict

        request = assignment_request_from_dict(document)
        if len(request.processes) > MAX_FLEET_PROCESSES:
            raise FleetTooLargeError(
                f"request has {len(request.processes)} processes; this "
                f"service accepts at most {MAX_FLEET_PROCESSES}"
            )
        fleet = request.resolved_fleet()
        if fleet.total_machines > MAX_FLEET_MACHINES:
            raise FleetTooLargeError(
                f"fleet has {fleet.total_machines} machines; this "
                f"service accepts at most {MAX_FLEET_MACHINES}"
            )
        self._check_names(suite, request.processes)
        if self._assign_pool is None:
            self._assign_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-assign"
            )
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._assign_pool,
            functools.partial(
                solve_assignment,
                request,
                suite.obj,
                power_model,
                strategy=self.strategy,
                workers=self.workers,
                engine=self.engine,
            ),
        )
        self.metrics.counter("serve.assign_v2.completed").inc()
        return {
            "kind": "serve_fleet_assignment",
            "version": SERVE_FORMAT_VERSION,
            "suite": suite.ref,
            "power_model": power.ref,
            "assignment": fleet_assignment_to_dict(result),
        }

    @staticmethod
    def _check_names(artifact: Artifact, names) -> None:
        """Reject unknown process names before they consume queue space."""
        known = artifact.obj.features
        unknown = sorted({name for name in names if name not in known})
        if unknown:
            raise _BadRequest(
                f"unknown process names {unknown}; "
                f"{artifact.ref} profiles {sorted(known)}"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def stop(self, drain: bool = True) -> None:
        """Drain every batcher and release engines and executors."""
        if self._closed:
            return
        self._closed = True
        for batcher in self._batchers.values():
            await batcher.stop(drain=drain)
        if self._assign_pool is not None:
            pool = self._assign_pool
            self._assign_pool = None
            # shutdown(wait=True) blocks until a running search ends;
            # run it off-loop so responses can still be written.
            await asyncio.get_running_loop().run_in_executor(
                None, functools.partial(pool.shutdown, wait=True)
            )


class PredictionServer:
    """Minimal HTTP/1.1 server over asyncio streams.

    Use :meth:`start` / :meth:`stop` directly from an event loop, or
    the thread-backed :class:`~repro.serve.handle.ServerHandle` from
    synchronous code.  ``port=0`` binds an ephemeral port; the real
    one is available from :attr:`port` after :meth:`start`.

    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so N shared-nothing
    worker processes can listen on one address and let the kernel
    spread connections across them (see :mod:`repro.serve.workers`);
    ``worker_id`` stamps every response with an ``X-Repro-Worker``
    header — response *bodies* stay bit-identical across workers, the
    header exists so consistency tests can prove they exercised more
    than one.
    """

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = 8 * 1024 * 1024,
        reuse_port: bool = False,
        worker_id: Optional[int] = None,
    ):
        self.service = service
        self.requested_host = host
        self.requested_port = port
        self.max_body_bytes = max_body_bytes
        self.reuse_port = reuse_port
        self.worker_id = worker_id
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._active_requests = 0
        self._ready = False
        self._stopped = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.requested_host

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def ready(self) -> bool:
        return self._ready

    async def start(self) -> None:
        kwargs = {}
        if self.reuse_port:
            kwargs["reuse_port"] = True
        self._server = await asyncio.start_server(
            self._handle_client, self.requested_host, self.requested_port, **kwargs
        )
        self._ready = True

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def stop(self, drain: bool = True, settle_timeout_s: float = 10.0) -> None:
        """Graceful shutdown: unlisten, drain in-flight work, close.

        New connections are refused first, then the service drains its
        batchers (queued predictions complete or expire — they never
        vanish), responses for in-flight requests are allowed to
        flush, and finally lingering keep-alive connections are torn
        down.
        """
        if self._stopped:
            return
        self._stopped = True
        self._ready = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.stop(drain=drain)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + settle_timeout_s
        while self._active_requests > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._connections):
            writer.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except asyncio.IncompleteReadError:
            # Client hung up mid-body: close quietly — it is the
            # client's loss, not a server error, so no traceback spam,
            # just an operator-visible counter.
            self.service.metrics.counter("serve.http.truncated_request").inc()
        except (ConnectionResetError, BrokenPipeError):
            self.service.metrics.counter("serve.http.disconnects").inc()
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._respond(
                writer, 400, {"error": "malformed request line", "type": "BadRequest"}
            )
            return False
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return False
            text = line.decode("latin-1").strip()
            if not text:
                break
            key, _, value = text.partition(":")
            headers[key.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0") or "0"
        try:
            length = int(length_text)
        except ValueError:
            length = -1
        if length < 0:
            # Non-numeric and negative lengths are both client bugs; a
            # negative value must never reach readexactly (ValueError
            # escaping the handler as an unlogged task exception).
            await self._respond(
                writer, 400, {"error": "bad Content-Length", "type": "BadRequest"}
            )
            return False
        if length > self.max_body_bytes:
            # Reject on the declared size BEFORE reading a single body
            # byte: Content-Length is attacker-controlled, and
            # readexactly(length) would otherwise allocate it all.
            self.service.metrics.counter("serve.http.oversized_request").inc()
            await self._respond(
                writer,
                413,
                {"error": f"body exceeds {self.max_body_bytes} bytes",
                 "type": "PayloadTooLarge"},
            )
            return False
        body = await reader.readexactly(length) if length else b""
        self._active_requests += 1
        try:
            status, document = await self._route(method, target, body)
        finally:
            self._active_requests -= 1
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        await self._respond(writer, status, document, keep_alive=keep_alive)
        return keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Dict,
        keep_alive: bool = False,
    ) -> None:
        from repro.io import sanitize_non_finite

        payload = json.dumps(
            sanitize_non_finite(document), sort_keys=True
        ).encode("utf-8")
        worker_header = (
            f"X-Repro-Worker: {self.worker_id}\r\n"
            if self.worker_id is not None
            else ""
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{worker_header}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str, body: bytes):
        metrics = self.service.metrics
        metrics.counter("serve.http.requests").inc()
        path = urlsplit(target).path
        try:
            status, document = await self._dispatch_route(method, path, body)
        except (UnknownModelError, _NotFound) as error:
            status, document = 404, _error_doc(error)
        except _MethodNotAllowed as error:
            status, document = 405, _error_doc(error)
        except FleetTooLargeError as error:
            status, document = 413, _error_doc(error)
        except QueueFullError as error:
            status, document = 429, _error_doc(error)
        except DeadlineExpiredError as error:
            status, document = 504, _error_doc(error)
        except ServiceClosedError as error:
            status, document = 503, _error_doc(error)
        except (ReproError, ValueError) as error:
            status, document = 400, _error_doc(error)
        except Exception as error:  # noqa: BLE001 - last-resort 500
            logger.exception("unhandled error serving %s %s", method, path)
            status, document = 500, _error_doc(error)
        if status >= 400:
            metrics.counter("serve.http.errors").inc()
        metrics.counter(f"serve.http.status.{status}").inc()
        return status, document

    async def _dispatch_route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {"status": "ok"}
        if path == "/readyz":
            self._require(method, "GET")
            if self._ready and not self.service._closed:
                return 200, {"ready": True}
            return 503, {"ready": False}
        if path == "/metrics":
            self._require(method, "GET")
            return 200, self.service.metrics.to_dict()
        if path == "/v1/models":
            if method == "GET":
                return 200, {
                    "kind": "serve_models",
                    "version": SERVE_FORMAT_VERSION,
                    "models": self.service.registry.list(),
                }
            self._require(method, "POST")
            payload = _parse_json(body)
            name = _field(payload, "name", str, required=True)
            document = payload.get("document")
            if not isinstance(document, dict):
                raise _BadRequest("field 'document' must be a JSON object")
            artifact = self.service.registry.publish(name, document)
            return 200, {"published": artifact.describe()}
        if path == "/v1/predict":
            self._require(method, "POST")
            payload = _parse_json(body)
            timeout_ms = payload.get("timeout_ms")
            if timeout_ms is not None and not isinstance(timeout_ms, (int, float)):
                raise _BadRequest("field 'timeout_ms' must be a number")
            document = await self.service.predict(
                _field(payload, "model", str, default="default"),
                _names_field(payload),
                ways=_field(payload, "ways", int, required=True),
                frequency_ratios=payload.get("frequency_ratios"),
                timeout_s=timeout_ms / 1000.0 if timeout_ms is not None else None,
            )
            return 200, document
        if path == "/v1/assign":
            self._require(method, "POST")
            payload = _parse_json(body)
            document = await self.service.assign(
                _field(payload, "suite", str, default="default"),
                _field(payload, "power_model", str, default="power"),
                _names_field(payload),
                machine=_field(payload, "machine", str, default="4-core-server"),
                sets=_field(payload, "sets", int, default=128),
                objective=_field(payload, "objective", str, default="power"),
                greedy=bool(payload.get("greedy", False)),
            )
            return 200, document
        if path == "/v2/assign":
            self._require(method, "POST")
            payload = _parse_json(body)
            document = await self.service.assign_v2(payload)
            return 200, document
        raise _NotFound(f"no such endpoint: {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _MethodNotAllowed(f"use {expected}")


class _MethodNotAllowed(ReproError):
    pass


class _NotFound(ReproError):
    pass


def _parse_json(body: bytes) -> Dict:
    if not body:
        raise _BadRequest("request body must be a JSON object")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _BadRequest(f"invalid JSON body: {error}") from None
    if not isinstance(payload, dict):
        raise _BadRequest("request body must be a JSON object")
    return payload


def _error_doc(error: BaseException) -> Dict[str, Any]:
    return {"error": str(error), "type": type(error).__name__}
