"""N shared-nothing prediction-server workers behind ``SO_REUSEPORT``.

One asyncio loop feeding one in-process solver is the single-worker
ceiling.  :func:`start_worker_pool` scales past it the boring,
reliable way: N independent *processes*, each running the complete
:class:`~repro.serve.http.PredictionServer` stack (own registry, own
batchers, own result cache, own metrics), all listening on the same
``host:port`` with ``SO_REUSEPORT`` so the kernel load-balances
incoming connections across them.  Nothing is shared, so there is
nothing to coordinate — and served predictions are bit-identical
across workers because every worker publishes the same artifacts and
the whole solve path is deterministic (the cross-worker consistency
test pins exactly that).

Mechanics worth knowing:

- **Port reservation.**  With ``port=0`` the parent binds a probe
  socket (``SO_REUSEPORT``, no ``listen``) to reserve a concrete
  ephemeral port, hands that port to every worker, and keeps the
  probe bound for the pool's lifetime.  A bound-but-not-listening
  socket never receives connections, so it costs nothing; it only
  prevents the port being reassigned if every worker dies.
- **Spawn, not fork.**  Workers start via the ``spawn`` context:
  model sources (paths, documents, result bundles) are pickled over,
  which keeps float payloads bit-exact and avoids forking a process
  that already runs threads.
- **Lifecycle.**  Each worker installs the same SIGTERM/SIGINT
  handler the ``repro serve`` CLI uses and drains gracefully;
  :meth:`WorkerPool.stop` sends SIGTERM, joins, and escalates to kill
  only after ``timeout``.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket
import threading
from typing import Any, List, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = ["WorkerPool", "start_worker_pool"]


def _reuseport_supported() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def _probe_socket(host: str, port: int) -> socket.socket:
    """Reserve ``host:port`` with SO_REUSEPORT without listening."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(
    worker_id: int,
    models: Mapping[str, Any],
    host: str,
    port: int,
    ready_queue,
    server_kwargs: Mapping[str, Any],
) -> None:
    """One worker process: serve until SIGTERM/SIGINT, then drain."""
    from repro.serve.handle import start_server

    stop_event = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal interface
        stop_event.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        handle = start_server(
            models,
            host=host,
            port=port,
            reuse_port=True,
            worker_id=worker_id,
            **dict(server_kwargs),
        )
    except BaseException as error:  # surfaced in the parent
        ready_queue.put(("error", worker_id, repr(error)))
        raise
    ready_queue.put(("ready", worker_id, handle.port))
    stop_event.wait()
    handle.stop()


class WorkerPool:
    """Handle on N running server workers sharing one listen address."""

    def __init__(
        self,
        host: str,
        port: int,
        processes: List,
        probe: Optional[socket.socket],
    ):
        self.host = host
        self.port = port
        self._processes = processes
        self._probe = probe
        self._stopped = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def workers(self) -> int:
        return len(self._processes)

    @property
    def pids(self) -> List[int]:
        return [process.pid for process in self._processes]

    def alive(self) -> List[bool]:
        """Per-worker liveness (order matches :attr:`pids`)."""
        return [process.is_alive() for process in self._processes]

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM every worker, join, escalate to kill (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()  # SIGTERM: workers drain gracefully
        for process in self._processes:
            process.join(timeout)
        for process in self._processes:
            if process.is_alive():
                process.kill()
                process.join(5.0)
        if self._probe is not None:
            self._probe.close()
            self._probe = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_worker_pool(
    models: Mapping[str, Any],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    http_workers: int = 2,
    boot_timeout_s: float = 120.0,
    **server_kwargs: Any,
) -> WorkerPool:
    """Boot ``http_workers`` shared-nothing servers on one address.

    Args:
        models: ``name -> source`` published by *every* worker — paths,
            raw documents, or picklable result bundles (see
            :meth:`~repro.serve.registry.ModelRegistry.publish`).
        host / port: Listen address; ``port=0`` reserves an ephemeral
            port all workers share.
        http_workers: Worker process count (>= 1).
        boot_timeout_s: Deadline for every worker to report ready.
        server_kwargs: Per-worker server knobs, passed to
            :func:`~repro.serve.handle.start_server` (``max_batch_size``,
            ``max_linger_ms``, ``result_cache_size``,
            ``target_p95_ms``, ``engine``, ...).

    Returns a :class:`WorkerPool`; use it as a context manager or call
    :meth:`~WorkerPool.stop`.
    """
    if http_workers < 1:
        raise ConfigurationError("http_workers must be >= 1")
    if not _reuseport_supported():
        raise ConfigurationError(
            "SO_REUSEPORT is not available on this platform; "
            "run a single server (http_workers=1) instead"
        )
    if not models:
        raise ConfigurationError("worker pool needs at least one model to serve")
    probe = _probe_socket(host, port)
    actual_port = probe.getsockname()[1]
    context = multiprocessing.get_context("spawn")
    ready_queue = context.Queue()
    processes = []
    try:
        for worker_id in range(http_workers):
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    dict(models),
                    host,
                    actual_port,
                    ready_queue,
                    dict(server_kwargs),
                ),
                name=f"repro-serve-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            processes.append(process)
        pending = set(range(http_workers))
        while pending:
            try:
                status, worker_id, detail = ready_queue.get(
                    timeout=boot_timeout_s
                )
            except Exception:
                raise RuntimeError(
                    f"workers {sorted(pending)} failed to report ready "
                    f"within {boot_timeout_s}s"
                ) from None
            if status != "ready":
                raise RuntimeError(f"worker {worker_id} failed to boot: {detail}")
            pending.discard(worker_id)
    except BaseException:
        for process in processes:
            if process.is_alive():
                process.kill()
        for process in processes:
            process.join(5.0)
        probe.close()
        raise
    return WorkerPool(host, actual_port, processes, probe)
