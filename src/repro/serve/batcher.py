"""Dynamic micro-batching with admission control.

Analytical-model serving is throughput-bound, not latency-bound: one
equilibrium solve costs a millisecond-ish, but a scheduler exploring
tentative assignments issues *many* of them at once.  The
:class:`MicroBatcher` turns that concurrency into engine-sized
batches:

- Concurrent :meth:`~MicroBatcher.submit` calls append to a pending
  queue; a single flusher task assembles batches and dispatches them
  through a persistent :class:`~repro.parallel.ParallelPredictor`
  (whose cold-start caches make served results bit-identical to
  independent :func:`repro.api.predict_mix` calls — see
  :mod:`repro.parallel`).
- A batch flushes when it reaches ``max_batch_size`` **or** when the
  oldest pending request has lingered ``max_linger_s`` — the classic
  size/linger trade-off, both knobs explicit.
- Dispatch runs on a one-thread executor so the event loop keeps
  accepting requests while a batch computes; the next batch
  accumulates during the current batch's solve (pipelining).

Admission control keeps the queue honest:

- At most ``max_queue`` requests may wait; beyond that
  :meth:`submit` raises :class:`QueueFullError` *immediately* — shed
  requests never hang and never consume model capacity.
- A request may carry a deadline.  The contract is
  **expire-at-enqueue and expire-at-dequeue**: a deadline that has
  already passed (or is exactly due, ``timeout_s <= 0``) is shed at
  :meth:`submit` before the request ever queues, and a deadline that
  passes while the request waits is shed when its batch is assembled
  — both complete with :class:`DeadlineExpiredError` and never reach
  the engine.  A deadline that passes *during* the in-flight solve
  does **not** cancel the solve; the request still completes with its
  result (the work is already paid for, and mid-solve cancellation
  would make batch latency depend on sibling deadlines).
- :meth:`stop` (graceful shutdown) rejects new work, flushes
  everything still queued, waits for the in-flight batch, then
  releases the engine.
"""

from __future__ import annotations

import asyncio
import functools
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, quantile_from_buckets
from repro.serve.errors import (
    DeadlineExpiredError,
    QueueFullError,
    ServiceClosedError,
)

__all__ = ["AdaptiveBatchController", "MicroBatcher"]


class AdaptiveBatchController:
    """AIMD tuner of a batcher's size/linger against a p95 latency SLO.

    The batching trade-off is one-dimensional: more coalescing (bigger
    batches, longer linger) buys throughput and costs tail latency.
    The controller collapses both knobs onto a single aggressiveness
    ``level`` in ``[level_floor, 1.0]`` — the configured
    ``max_batch_size`` / ``max_linger_s`` are the *ceilings* scaled by
    it — and walks the level with the classic congestion-control law:

    - **Multiplicative decrease** when the windowed p95 of end-to-end
      request latency (``serve.predict.latency_s``, queue wait +
      solve) exceeds ``target_p95_s``: halve the level, shedding
      linger delay immediately.
    - **Additive increase** when p95 sits below
      ``low_watermark * target_p95_s``: nudge the level back up,
      re-earning throughput.

    The p95 comes from the metric registry's own histogram buckets
    (see :func:`repro.obs.quantile_from_buckets`): the controller
    snapshots the cumulative bucket counts each tick and quantiles the
    *delta*, so every control decision reflects only traffic since the
    last one.  Ticks are rate-limited by both wall time
    (``interval_s``) and sample count (``min_samples``) to keep the
    loop stable under bursty load.  Control state is exported as
    gauges (``serve.batch.adaptive.level`` / ``.max_batch`` /
    ``.linger_s`` and ``serve.slo.p95_s``) so ``/metrics`` shows the
    law in action.
    """

    def __init__(
        self,
        batcher: "MicroBatcher",
        target_p95_s: float,
        *,
        interval_s: float = 0.25,
        min_samples: int = 16,
        decrease: float = 0.5,
        increase: float = 0.08,
        low_watermark: float = 0.8,
        level_floor: float = 0.02,
    ):
        if target_p95_s <= 0:
            raise ConfigurationError("target_p95_s must be positive")
        if not 0.0 < decrease < 1.0:
            raise ConfigurationError("decrease must be in (0, 1)")
        if increase <= 0:
            raise ConfigurationError("increase must be positive")
        self.batcher = batcher
        self.target_p95_s = target_p95_s
        self.interval_s = interval_s
        self.min_samples = min_samples
        self.decrease = decrease
        self.increase = increase
        self.low_watermark = low_watermark
        self.level_floor = level_floor
        self.level = 1.0
        self.batch_ceiling = batcher.max_batch_size
        self.linger_ceiling = batcher.max_linger_s
        self._last_tick: Optional[float] = None
        self._snapshot: dict = {}
        self._export()

    def maybe_adapt(self, now: float) -> None:
        """One control tick if enough time and samples have passed."""
        histogram = self.batcher.metrics.histogram("serve.predict.latency_s")
        counts = histogram.bucket_counts()
        if self._last_tick is not None and now - self._last_tick < self.interval_s:
            return
        delta = {
            index: counts[index] - self._snapshot.get(index, 0)
            for index in counts
            if counts[index] - self._snapshot.get(index, 0) > 0
        }
        if sum(delta.values()) < self.min_samples:
            return
        self._last_tick = now
        self._snapshot = counts
        p95 = quantile_from_buckets(delta, 0.95)
        metrics = self.batcher.metrics
        metrics.gauge("serve.slo.p95_s").set(p95)
        if p95 > self.target_p95_s:
            self.level = max(self.level_floor, self.level * self.decrease)
            metrics.counter("serve.batch.adaptive.decrease").inc()
        elif p95 < self.low_watermark * self.target_p95_s and self.level < 1.0:
            self.level = min(1.0, self.level + self.increase)
            metrics.counter("serve.batch.adaptive.increase").inc()
        else:
            return
        self._apply()

    def _apply(self) -> None:
        self.batcher.max_batch_size = max(1, round(self.level * self.batch_ceiling))
        self.batcher.max_linger_s = self.level * self.linger_ceiling
        self._export()

    def _export(self) -> None:
        metrics = self.batcher.metrics
        metrics.gauge("serve.batch.adaptive.level").set(self.level)
        metrics.gauge("serve.batch.adaptive.max_batch").set(
            self.batcher.max_batch_size
        )
        metrics.gauge("serve.batch.adaptive.linger_s").set(
            self.batcher.max_linger_s
        )


@dataclass
class _PendingRequest:
    names: Tuple[str, ...]
    future: "asyncio.Future"
    enqueued_at: float
    deadline: Optional[float]  # loop-clock absolute time, None = no deadline
    frequency_ratios: Optional[Tuple[float, ...]] = None


class MicroBatcher:
    """Coalesce concurrent predict requests into engine batches.

    Args:
        engine: Anything with ``predict_mixes(mixes) -> results`` and
            ``close()`` — in production a persistent
            :class:`~repro.parallel.ParallelPredictor`.
        max_batch_size: Flush as soon as this many requests wait.
        max_linger_s: Flush a partial batch once its oldest request
            has waited this long (seconds).
        max_queue: Admission bound; further submits shed with
            :class:`QueueFullError`.
        metrics: Registry that receives the batcher's counters /
            histograms (default: a private one).
        close_engine: Close the engine during :meth:`stop`.
        target_p95_s: When set, an :class:`AdaptiveBatchController`
            tunes ``max_batch_size`` / ``max_linger_s`` (treating the
            configured values as ceilings) against this end-to-end
            p95 latency target.
        control_interval_s / control_min_samples: Tick rate limits of
            the adaptive controller (exposed for tests).
    """

    def __init__(
        self,
        engine,
        *,
        max_batch_size: int = 32,
        max_linger_s: float = 0.002,
        max_queue: int = 256,
        metrics: Optional[MetricsRegistry] = None,
        close_engine: bool = True,
        target_p95_s: Optional[float] = None,
        control_interval_s: float = 0.25,
        control_min_samples: int = 16,
    ):
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if max_linger_s < 0:
            raise ConfigurationError("max_linger_s must be non-negative")
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.max_linger_s = max_linger_s
        self.max_queue = max_queue
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._close_engine = close_engine
        self.controller: Optional[AdaptiveBatchController] = None
        if target_p95_s is not None:
            self.controller = AdaptiveBatchController(
                self,
                target_p95_s,
                interval_s=control_interval_s,
                min_samples=control_min_samples,
            )
        self._pending: Deque[_PendingRequest] = deque()
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional["asyncio.Task"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatch_pool: Optional[ThreadPoolExecutor] = None
        self._draining = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests currently queued (not yet dispatched)."""
        return len(self._pending)

    @property
    def accepting(self) -> bool:
        return not self._draining and not self._stopped

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._task is None or self._task.done():
            self._loop = asyncio.get_running_loop()
            self._wake = asyncio.Event()
            # One dispatch thread: batches serialise through the engine
            # (well-defined ParallelPredictor reuse) while accumulation
            # of the next batch overlaps the current batch's solve.
            self._dispatch_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-dispatch"
            )
            self._task = self._loop.create_task(self._flush_loop())

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting work; optionally flush what is queued.

        With ``drain=True`` (graceful shutdown) every queued request
        is dispatched (or expired) and the in-flight batch completes
        before the engine is released.  With ``drain=False`` queued
        requests fail fast with :class:`ServiceClosedError`.
        """
        if self._stopped:
            return
        self._draining = True
        if not drain:
            while self._pending:
                request = self._pending.popleft()
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosedError("service stopped before dispatch")
                    )
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        self._stopped = True
        if self._dispatch_pool is not None:
            self._dispatch_pool.shutdown(wait=True)
            self._dispatch_pool = None
        if self._close_engine:
            self.engine.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        names: Sequence[str],
        *,
        frequency_ratios: Optional[Sequence[float]] = None,
        timeout_s: Optional[float] = None,
    ):
        """Queue one mix for prediction; awaits its result.

        ``frequency_ratios`` optionally gives one DVFS frequency ratio
        per process (see :mod:`repro.hetero`); the batch forwards them
        positionally to the engine's ``predict_mixes``.

        Raises:
            QueueFullError: The pending queue is at ``max_queue``.
            DeadlineExpiredError: ``timeout_s`` elapsed before the
                request's batch was dispatched — including
                ``timeout_s <= 0``, which is already due at enqueue
                and is shed immediately without consuming queue
                capacity (see the module docstring for the full
                expire-at-enqueue / expire-at-dequeue contract).
            ServiceClosedError: The batcher is draining or stopped.
        """
        if not self.accepting:
            raise ServiceClosedError("service is draining; not accepting requests")
        self._ensure_started()
        assert self._loop is not None and self._wake is not None
        if timeout_s is not None and timeout_s <= 0:
            # A deadline exactly equal to "now" must shed deterministically
            # (504), not race the flusher's clock read at dispatch time.
            self.metrics.counter("serve.predict.deadline_expired").inc()
            raise DeadlineExpiredError(
                f"deadline of {timeout_s:.3f}s was already due at enqueue; "
                "request was not queued"
            )
        if len(self._pending) >= self.max_queue:
            self.metrics.counter("serve.predict.shed").inc()
            raise QueueFullError(
                f"pending queue is full ({self.max_queue} requests); retry later"
            )
        now = self._loop.time()
        request = _PendingRequest(
            names=tuple(names),
            future=self._loop.create_future(),
            enqueued_at=now,
            deadline=now + timeout_s if timeout_s is not None else None,
            frequency_ratios=(
                tuple(float(ratio) for ratio in frequency_ratios)
                if frequency_ratios is not None
                else None
            ),
        )
        self._pending.append(request)
        self.metrics.counter("serve.predict.requests").inc()
        self.metrics.gauge("serve.queue.depth").set(len(self._pending))
        self._wake.set()
        return await request.future

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------
    async def _flush_loop(self) -> None:
        assert self._loop is not None and self._wake is not None
        while True:
            if not self._pending:
                if self._draining:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            reason = await self._linger()
            batch = self._take_batch()
            if batch:
                self.metrics.counter(f"serve.batch.flush_{reason}").inc()
                await self._dispatch(batch)

    async def _linger(self) -> str:
        """Wait for the batch to fill; returns the flush reason."""
        assert self._loop is not None and self._wake is not None
        while True:
            if len(self._pending) >= self.max_batch_size:
                return "size"
            if self._draining:
                return "drain"
            oldest = self._pending[0].enqueued_at
            remaining = oldest + self.max_linger_s - self._loop.time()
            if remaining <= 0:
                return "linger"
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), remaining)
            except asyncio.TimeoutError:
                return "linger"

    def _take_batch(self) -> List[_PendingRequest]:
        """Pop up to ``max_batch_size`` live requests; expire the dead.

        Requests whose deadline passed while they queued complete with
        :class:`DeadlineExpiredError` here — before dispatch — so the
        engine never spends a solve on an answer nobody is waiting for.
        Cancelled futures (disconnected clients) are dropped the same
        way.
        """
        assert self._loop is not None
        now = self._loop.time()
        batch: List[_PendingRequest] = []
        while self._pending and len(batch) < self.max_batch_size:
            request = self._pending.popleft()
            if request.future.done():  # cancelled while queued
                self.metrics.counter("serve.predict.cancelled").inc()
                continue
            if request.deadline is not None and now >= request.deadline:
                self.metrics.counter("serve.predict.deadline_expired").inc()
                request.future.set_exception(
                    DeadlineExpiredError(
                        "deadline expired after "
                        f"{now - request.enqueued_at:.3f}s in queue; "
                        "request was not dispatched"
                    )
                )
                continue
            batch.append(request)
        self.metrics.gauge("serve.queue.depth").set(len(self._pending))
        return batch

    async def _dispatch(self, batch: List[_PendingRequest]) -> None:
        assert self._loop is not None
        self.metrics.counter("serve.batch.dispatched").inc()
        self.metrics.histogram("serve.batch.size").observe(len(batch))
        start = self._loop.time()
        for request in batch:
            self.metrics.histogram("serve.predict.queue_wait_s").observe(
                start - request.enqueued_at
            )
        mixes = [request.names for request in batch]
        if any(request.frequency_ratios is not None for request in batch):
            # Only the ratio-carrying path passes the keyword so plain
            # stub engines (tests) keep their two-positional signature.
            ratios = [request.frequency_ratios for request in batch]
            call = functools.partial(
                self.engine.predict_mixes, mixes, frequency_ratios=ratios
            )
        else:
            call = functools.partial(self.engine.predict_mixes, mixes)
        try:
            results = await self._loop.run_in_executor(self._dispatch_pool, call)
        except Exception as error:  # noqa: BLE001 - forwarded to callers
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)
            return
        now = self._loop.time()
        self.metrics.histogram("serve.batch.solve_s").observe(now - start)
        latency = self.metrics.histogram("serve.predict.latency_s")
        for request, result in zip(batch, results):
            latency.observe(now - request.enqueued_at)
            if not request.future.done():
                request.future.set_result(result)
                self.metrics.counter("serve.predict.completed").inc()
        if self.controller is not None:
            self.controller.maybe_adapt(now)
