"""Bounded canonical-mix prediction result cache for the serve layer.

PPT-Multicore-style reuse: an analytical co-run price never changes
for a given (model content, cache geometry, mix), so a hot repeated
mix should never reach the solver twice.  The cache key is

    ``(artifact SHA-256 digest, ways, sorted mix multiset)``

which makes invalidation free: publishing new content under a name
produces a new digest (see :mod:`repro.serve.registry`), so every
request resolving the new version misses and re-solves, while pinned
``name@old`` requests keep hitting their old entries until LRU
pressure evicts them.  Requests carrying per-process DVFS frequency
ratios (see :mod:`repro.hetero`) key on the sorted ``(name, ratio)``
multiset instead: the same mix at two different ratios solves to two
different equilibria and must never share an entry.  All-unit ratios
normalize to the plain name key, exactly as the model normalizes
``frequency_ratios=None`` — a unit-ratio request is a hit for a
ratio-free entry and vice versa, and both are bit-identical solves.

**Canonical order and bit-identity.**  The equilibrium solver is
order-independent by construction —
:meth:`~repro.core.performance_model.PerformanceModel._canonical_plan`
sorts every mix, solves in canonical order, and permutes the solution
back — so one cached solve serves *every* ordering of the same
multiset.  The cache stores the per-process predictions in canonical
(sorted-name) order and rebuilds a
:class:`~repro.core.performance_model.CoRunPrediction` for the
caller's order with exactly the permutation the model itself uses
(stable sort by name): a cache-hit response is bit-identical to what
a cold solve of the same request would have produced.

The cache is a plain bounded LRU guarded by one lock: the HTTP
handler probes it on the event loop, and nothing here blocks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry

__all__ = ["PredictionResultCache", "canonical_mix", "restore_order"]


def canonical_mix(names: Sequence[str]) -> Tuple[str, ...]:
    """The sorted multiset a mix solves as (cache-key component)."""
    return tuple(sorted(names))


def _normalized_ratios(
    names: Sequence[str], frequency_ratios: Optional[Sequence[float]]
) -> Tuple[float, ...]:
    """Per-process ratios with ``None`` meaning all-unit (model's rule)."""
    if frequency_ratios is None:
        return (1.0,) * len(names)
    ratios = tuple(float(ratio) for ratio in frequency_ratios)
    if len(ratios) != len(names):
        raise ConfigurationError(
            f"frequency_ratios has {len(ratios)} entries for a "
            f"{len(names)}-process mix"
        )
    return ratios


def _slots(
    names: Sequence[str],
    frequency_ratios: Optional[Sequence[float]] = None,
) -> List[int]:
    """``slot[i]`` = canonical position of original index ``i``.

    Identical to the model's ``_canonical_plan`` permutation: a stable
    sort by ``(name, ratio)``, so duplicate entries map to canonical
    rows in first-seen order.  With unit ratios this degenerates to the
    plain stable sort by name.
    """
    ratios = _normalized_ratios(names, frequency_ratios)
    order = sorted(range(len(names)), key=lambda i: (names[i], ratios[i]))
    slots = [0] * len(order)
    for position, index in enumerate(order):
        slots[index] = position
    return slots


def restore_order(
    entry: "CacheEntry",
    names: Sequence[str],
    frequency_ratios: Optional[Sequence[float]] = None,
):
    """Rebuild a ``CoRunPrediction`` for ``names``'s own order."""
    from repro.core.performance_model import CoRunPrediction

    slots = _slots(names, frequency_ratios)
    return CoRunPrediction(
        processes=tuple(entry.processes[slots[i]] for i in range(len(names))),
        solver=entry.solver,
        contended=entry.contended,
    )


class CacheEntry:
    """One cached solve, held in canonical (sorted-name) order."""

    __slots__ = ("processes", "solver", "contended")

    def __init__(self, processes: Tuple, solver: str, contended: bool):
        self.processes = processes
        self.solver = solver
        self.contended = contended

    @classmethod
    def from_prediction(
        cls,
        names: Sequence[str],
        prediction,
        frequency_ratios: Optional[Sequence[float]] = None,
    ) -> "CacheEntry":
        """Permute a request-order prediction into canonical order."""
        slots = _slots(names, frequency_ratios)
        canonical: List = [None] * len(names)
        for index, process in enumerate(prediction.processes):
            canonical[slots[index]] = process
        return cls(
            processes=tuple(canonical),
            solver=prediction.solver,
            contended=prediction.contended,
        )


class PredictionResultCache:
    """Bounded LRU of served co-run predictions.

    Args:
        capacity: Maximum entries; must be >= 1 (a disabled cache is
            expressed by *not constructing one* — see
            :class:`~repro.serve.http.PredictionService`).
        metrics: Registry receiving ``serve.cache.hits`` /
            ``serve.cache.misses`` / ``serve.cache.evictions`` counters
            and the ``serve.cache.size`` gauge (default: private).
    """

    def __init__(self, capacity: int, metrics: Optional[MetricsRegistry] = None):
        if capacity < 1:
            raise ConfigurationError("cache capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key(
        digest: str,
        ways: int,
        names: Sequence[str],
        frequency_ratios: Optional[Sequence[float]] = None,
    ) -> Tuple:
        ratios = _normalized_ratios(names, frequency_ratios)
        if all(ratio == 1.0 for ratio in ratios):
            # Unit ratios are the model's ``None`` normalization: same
            # solve, same key — never fork the entry.
            return (digest, ways, canonical_mix(names))
        order = sorted(range(len(names)), key=lambda i: (names[i], ratios[i]))
        return (digest, ways, tuple((names[i], ratios[i]) for i in order))

    def get(
        self,
        digest: str,
        ways: int,
        names: Sequence[str],
        frequency_ratios: Optional[Sequence[float]] = None,
    ):
        """The cached ``CoRunPrediction`` in ``names``'s order, or None."""
        key = self.key(digest, ways, names, frequency_ratios)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.metrics.counter("serve.cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self.metrics.counter("serve.cache.hits").inc()
        return restore_order(entry, names, frequency_ratios)

    def put(
        self,
        digest: str,
        ways: int,
        names: Sequence[str],
        prediction,
        frequency_ratios: Optional[Sequence[float]] = None,
    ) -> None:
        """Store a request-order prediction under its canonical key."""
        key = self.key(digest, ways, names, frequency_ratios)
        entry = CacheEntry.from_prediction(names, prediction, frequency_ratios)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.metrics.counter("serve.cache.evictions").inc()
            self.metrics.gauge("serve.cache.size").set(len(self._entries))

    def stats(self) -> Dict[str, float]:
        """Counter snapshot (hits / misses / evictions / size)."""
        counters = self.metrics.to_dict()["counters"]
        return {
            "hits": counters.get("serve.cache.hits", 0),
            "misses": counters.get("serve.cache.misses", 0),
            "evictions": counters.get("serve.cache.evictions", 0),
            "size": len(self),
        }
