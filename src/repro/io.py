"""JSON persistence for profiles and fitted models.

Profiling is the expensive step of the paper's methodology (O(A)
machine runs per process), so real deployments profile once and reuse
the vectors across scheduling decisions.  This module round-trips the
three artefacts a deployment needs to persist:

- :class:`~repro.core.feature.FeatureVector` (performance side),
- :class:`~repro.core.feature.ProfileVector` (power side, PF_i),
- :class:`~repro.core.power_model.CorePowerModel` (fitted Eq. 9).

The format is plain JSON with an explicit ``kind``/``version`` header
so files are self-describing and future-proof.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

import numpy as np

from repro.core.feature import FeatureVector, ProfileVector
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.core.spi import SpiModel
from repro.errors import ConfigurationError
from repro.events import PAPER_NAMES, RATE_EVENTS

Pathish = Union[str, pathlib.Path]

FORMAT_VERSION = 1


def _check_header(data: Dict, kind: str) -> None:
    if not isinstance(data, dict):
        raise ConfigurationError("malformed document: expected a JSON object")
    if data.get("kind") != kind:
        raise ConfigurationError(
            f"expected kind={kind!r}, found {data.get('kind')!r}"
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
def histogram_to_dict(histogram: ReuseDistanceHistogram) -> Dict:
    """Plain-JSON representation of a histogram."""
    return {
        "probs": [float(p) for p in histogram.probs],
        "inf_mass": histogram.inf_mass,
    }


def histogram_from_dict(data: Dict) -> ReuseDistanceHistogram:
    try:
        return ReuseDistanceHistogram(data["probs"], data["inf_mass"])
    except KeyError as missing:
        raise ConfigurationError(f"histogram document missing {missing}") from None


# ----------------------------------------------------------------------
# Feature vectors
# ----------------------------------------------------------------------
def feature_to_dict(feature: FeatureVector) -> Dict:
    return {
        "kind": "feature_vector",
        "version": FORMAT_VERSION,
        "name": feature.name,
        "api": feature.api,
        "alpha": feature.alpha,
        "beta": feature.beta,
        "spi_fit_r2": feature.spi_model.r_squared,
        "histogram": histogram_to_dict(feature.histogram),
    }


def feature_from_dict(data: Dict) -> FeatureVector:
    _check_header(data, "feature_vector")
    try:
        return FeatureVector(
            name=data["name"],
            histogram=histogram_from_dict(data["histogram"]),
            api=data["api"],
            spi_model=SpiModel(
                alpha=data["alpha"],
                beta=data["beta"],
                r_squared=data.get("spi_fit_r2", 1.0),
            ),
        )
    except KeyError as missing:
        raise ConfigurationError(f"feature document missing {missing}") from None


# ----------------------------------------------------------------------
# Profile vectors
# ----------------------------------------------------------------------
def profile_to_dict(profile: ProfileVector) -> Dict:
    return {
        "kind": "profile_vector",
        "version": FORMAT_VERSION,
        "name": profile.name,
        "p_alone": profile.p_alone,
        "l1rpi": profile.l1rpi,
        "l2rpi": profile.l2rpi,
        "brpi": profile.brpi,
        "fppi": profile.fppi,
    }


def profile_from_dict(data: Dict) -> ProfileVector:
    _check_header(data, "profile_vector")
    try:
        return ProfileVector(
            name=data["name"],
            p_alone=data["p_alone"],
            l1rpi=data["l1rpi"],
            l2rpi=data["l2rpi"],
            brpi=data["brpi"],
            fppi=data["fppi"],
        )
    except KeyError as missing:
        raise ConfigurationError(f"profile document missing {missing}") from None


# ----------------------------------------------------------------------
# Power models
# ----------------------------------------------------------------------
def power_model_to_dict(model: CorePowerModel) -> Dict:
    coefficients = model.coefficients
    return {
        "kind": "power_model",
        "version": FORMAT_VERSION,
        "p_idle": model.p_idle,
        "coefficients": coefficients,
        "r_squared": model.r_squared,
    }


def power_model_from_dict(data: Dict) -> CorePowerModel:
    _check_header(data, "power_model")
    try:
        p_idle = float(data["p_idle"])
        coefficients = [
            float(data["coefficients"][PAPER_NAMES[event]]) for event in RATE_EVENTS
        ]
    except KeyError as missing:
        raise ConfigurationError(f"power-model document missing {missing}") from None
    # Rebuild the fitted state by solving a tiny exact system: one row
    # per coefficient plus the pinned intercept reproduces the model.
    training = PowerTrainingSet()
    rng = np.random.default_rng(0)
    for _ in range(12):
        rates = {event: float(rng.uniform(1e5, 1e7)) for event in RATE_EVENTS}
        power = p_idle + sum(
            c * rates[event] for c, event in zip(coefficients, RATE_EVENTS)
        )
        training.add(rates, max(0.0, power))
    model = CorePowerModel().fit(training, idle_core_watts=p_idle)
    # Guard against information loss (e.g. negative powers clamped).
    rebuilt = [model.coefficients[PAPER_NAMES[event]] for event in RATE_EVENTS]
    if not np.allclose(rebuilt, coefficients, rtol=1e-6, atol=1e-12):
        raise ConfigurationError("power-model document could not be rebuilt exactly")
    return model


# ----------------------------------------------------------------------
# Suites and files
# ----------------------------------------------------------------------
def save_json(data: Dict, path: Pathish) -> None:
    pathlib.Path(path).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_json(path: Pathish) -> Dict:
    return json.loads(pathlib.Path(path).read_text())


def save_feature(feature: FeatureVector, path: Pathish) -> None:
    """Write one feature vector to a JSON file."""
    save_json(feature_to_dict(feature), path)


def load_feature(path: Pathish) -> FeatureVector:
    """Read one feature vector from a JSON file."""
    return feature_from_dict(load_json(path))


def save_profile_suite(
    features: Dict[str, FeatureVector],
    profiles: Dict[str, ProfileVector],
    path: Pathish,
) -> None:
    """Persist a whole profiled suite (features + PF vectors) to JSON."""
    if set(features) != set(profiles):
        raise ConfigurationError("features and profiles must cover the same names")
    document = {
        "kind": "profile_suite",
        "version": FORMAT_VERSION,
        "features": {name: feature_to_dict(f) for name, f in features.items()},
        "profiles": {name: profile_to_dict(p) for name, p in profiles.items()},
    }
    save_json(document, path)


def load_profile_suite(path: Pathish):
    """Load a suite saved by :func:`save_profile_suite`.

    Returns:
        ``(features, profiles)`` dictionaries keyed by process name.
    """
    data = load_json(path)
    _check_header(data, "profile_suite")
    features = {
        name: feature_from_dict(d) for name, d in data.get("features", {}).items()
    }
    profiles = {
        name: profile_from_dict(d) for name, d in data.get("profiles", {}).items()
    }
    return features, profiles


def save_power_model(model: CorePowerModel, path: Pathish) -> None:
    """Persist a fitted Eq. 9 model to JSON."""
    save_json(power_model_to_dict(model), path)


def load_power_model(path: Pathish) -> CorePowerModel:
    """Load a fitted Eq. 9 model from JSON."""
    return power_model_from_dict(load_json(path))
