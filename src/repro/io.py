"""JSON persistence for profiles and fitted models.

Profiling is the expensive step of the paper's methodology (O(A)
machine runs per process), so real deployments profile once and reuse
the vectors across scheduling decisions.  This module round-trips the
three artefacts a deployment needs to persist:

- :class:`~repro.core.feature.FeatureVector` (performance side),
- :class:`~repro.core.feature.ProfileVector` (power side, PF_i),
- :class:`~repro.core.power_model.CorePowerModel` (fitted Eq. 9).

Beyond the persisted artefacts, every public *result* type —
equilibrium solutions, predictions, assignment decisions, and the
:mod:`repro.api` result bundles — has a ``<type>_to_dict`` /
``<type>_from_dict`` converter pair here, and the dataclasses expose
them as ``to_dict()`` / ``from_dict()`` methods.  All conversions
round-trip exactly (a property test pins this).

The format is plain JSON with an explicit ``kind``/``version`` header
so files are self-describing and future-proof.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, Union

import numpy as np

from repro.core.assignment import AssignmentDecision
from repro.core.equilibrium import EquilibriumResult, SolverTelemetry
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.performance_model import CoRunPrediction, ProcessPrediction
from repro.core.power_model import CorePowerModel
from repro.core.spi import SpiModel
from repro.errors import ConfigurationError
from repro.events import PAPER_NAMES, RATE_EVENTS

Pathish = Union[str, pathlib.Path]

FORMAT_VERSION = 1


def _check_header(data: Dict, kind: str) -> None:
    if not isinstance(data, dict):
        raise ConfigurationError("malformed document: expected a JSON object")
    if data.get("kind") != kind:
        raise ConfigurationError(
            f"expected kind={kind!r}, found {data.get('kind')!r}"
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
def histogram_to_dict(histogram: ReuseDistanceHistogram) -> Dict:
    """Plain-JSON representation of a histogram."""
    return {
        "probs": [float(p) for p in histogram.probs],
        "inf_mass": histogram.inf_mass,
    }


def histogram_from_dict(data: Dict) -> ReuseDistanceHistogram:
    try:
        return ReuseDistanceHistogram(data["probs"], data["inf_mass"])
    except KeyError as missing:
        raise ConfigurationError(f"histogram document missing {missing}") from None


# ----------------------------------------------------------------------
# Feature vectors
# ----------------------------------------------------------------------
def feature_to_dict(feature: FeatureVector) -> Dict:
    return {
        "kind": "feature_vector",
        "version": FORMAT_VERSION,
        "name": feature.name,
        "api": feature.api,
        "alpha": feature.alpha,
        "beta": feature.beta,
        "spi_fit_r2": feature.spi_model.r_squared,
        "histogram": histogram_to_dict(feature.histogram),
    }


def feature_from_dict(data: Dict) -> FeatureVector:
    _check_header(data, "feature_vector")
    try:
        return FeatureVector(
            name=data["name"],
            histogram=histogram_from_dict(data["histogram"]),
            api=data["api"],
            spi_model=SpiModel(
                alpha=data["alpha"],
                beta=data["beta"],
                r_squared=data.get("spi_fit_r2", 1.0),
            ),
        )
    except KeyError as missing:
        raise ConfigurationError(f"feature document missing {missing}") from None


# ----------------------------------------------------------------------
# Profile vectors
# ----------------------------------------------------------------------
def profile_to_dict(profile: ProfileVector) -> Dict:
    return {
        "kind": "profile_vector",
        "version": FORMAT_VERSION,
        "name": profile.name,
        "p_alone": profile.p_alone,
        "l1rpi": profile.l1rpi,
        "l2rpi": profile.l2rpi,
        "brpi": profile.brpi,
        "fppi": profile.fppi,
    }


def profile_from_dict(data: Dict) -> ProfileVector:
    _check_header(data, "profile_vector")
    try:
        return ProfileVector(
            name=data["name"],
            p_alone=data["p_alone"],
            l1rpi=data["l1rpi"],
            l2rpi=data["l2rpi"],
            brpi=data["brpi"],
            fppi=data["fppi"],
        )
    except KeyError as missing:
        raise ConfigurationError(f"profile document missing {missing}") from None


# ----------------------------------------------------------------------
# Power models
# ----------------------------------------------------------------------
def power_model_to_dict(model: CorePowerModel) -> Dict:
    coefficients = model.coefficients
    return {
        "kind": "power_model",
        "version": FORMAT_VERSION,
        "p_idle": model.p_idle,
        "coefficients": coefficients,
        "r_squared": model.r_squared,
    }


def power_model_from_dict(data: Dict) -> CorePowerModel:
    _check_header(data, "power_model")
    try:
        p_idle = float(data["p_idle"])
        coefficients = [
            float(data["coefficients"][PAPER_NAMES[event]]) for event in RATE_EVENTS
        ]
    except KeyError as missing:
        raise ConfigurationError(f"power-model document missing {missing}") from None
    # Restore the fitted state directly (the document *is* the model:
    # slopes, pinned intercept, training R²), so documents round-trip
    # bit-exactly — the repro.api property tests rely on that.
    model = CorePowerModel()
    model._regression.coefficients = np.asarray(coefficients, dtype=float)
    model._regression.intercept = p_idle
    recorded_r2 = data.get("r_squared")
    model._regression.r_squared = (
        float(recorded_r2) if recorded_r2 is not None else 1.0
    )
    return model


# ----------------------------------------------------------------------
# Solver telemetry and equilibrium results
# ----------------------------------------------------------------------
def telemetry_to_dict(telemetry: SolverTelemetry) -> Dict:
    return {
        "kind": "solver_telemetry",
        "version": FORMAT_VERSION,
        "strategy": telemetry.strategy,
        "solver": telemetry.solver,
        "jacobian": telemetry.jacobian,
        "iterations": telemetry.iterations,
        "residual_norm": telemetry.residual_norm,
        "warm_started": telemetry.warm_started,
        "fallback_reason": telemetry.fallback_reason,
    }


def telemetry_from_dict(data: Dict) -> SolverTelemetry:
    _check_header(data, "solver_telemetry")
    try:
        return SolverTelemetry(
            strategy=data["strategy"],
            solver=data["solver"],
            jacobian=data["jacobian"],
            iterations=int(data["iterations"]),
            residual_norm=float(data["residual_norm"]),
            warm_started=bool(data.get("warm_started", False)),
            fallback_reason=data.get("fallback_reason"),
        )
    except KeyError as missing:
        raise ConfigurationError(f"telemetry document missing {missing}") from None


def equilibrium_result_to_dict(result: EquilibriumResult) -> Dict:
    return {
        "kind": "equilibrium_result",
        "version": FORMAT_VERSION,
        "sizes": [float(s) for s in result.sizes],
        "mpas": [float(m) for m in result.mpas],
        "spis": [float(s) for s in result.spis],
        "solver": result.solver,
        "iterations": result.iterations,
        "contended": result.contended,
        "telemetry": (
            telemetry_to_dict(result.telemetry)
            if result.telemetry is not None
            else None
        ),
    }


def equilibrium_result_from_dict(data: Dict) -> EquilibriumResult:
    _check_header(data, "equilibrium_result")
    try:
        telemetry_doc = data.get("telemetry")
        return EquilibriumResult(
            sizes=tuple(float(s) for s in data["sizes"]),
            mpas=tuple(float(m) for m in data["mpas"]),
            spis=tuple(float(s) for s in data["spis"]),
            solver=data["solver"],
            iterations=int(data["iterations"]),
            contended=bool(data["contended"]),
            telemetry=(
                telemetry_from_dict(telemetry_doc)
                if telemetry_doc is not None
                else None
            ),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"equilibrium-result document missing {missing}"
        ) from None


# ----------------------------------------------------------------------
# Predictions
# ----------------------------------------------------------------------
def process_prediction_to_dict(prediction: ProcessPrediction) -> Dict:
    return {
        "kind": "process_prediction",
        "version": FORMAT_VERSION,
        "name": prediction.name,
        "effective_size": prediction.effective_size,
        "mpa": prediction.mpa,
        "spi": prediction.spi,
    }


def process_prediction_from_dict(data: Dict) -> ProcessPrediction:
    _check_header(data, "process_prediction")
    try:
        return ProcessPrediction(
            name=data["name"],
            effective_size=float(data["effective_size"]),
            mpa=float(data["mpa"]),
            spi=float(data["spi"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"process-prediction document missing {missing}"
        ) from None


def corun_prediction_to_dict(prediction: CoRunPrediction) -> Dict:
    return {
        "kind": "corun_prediction",
        "version": FORMAT_VERSION,
        "processes": [process_prediction_to_dict(p) for p in prediction.processes],
        "solver": prediction.solver,
        "contended": prediction.contended,
    }


def corun_prediction_from_dict(data: Dict) -> CoRunPrediction:
    _check_header(data, "corun_prediction")
    try:
        return CoRunPrediction(
            processes=tuple(
                process_prediction_from_dict(p) for p in data["processes"]
            ),
            solver=data["solver"],
            contended=bool(data["contended"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"corun-prediction document missing {missing}"
        ) from None


# ----------------------------------------------------------------------
# Assignment decisions
# ----------------------------------------------------------------------
def assignment_decision_to_dict(decision: AssignmentDecision) -> Dict:
    return {
        "kind": "assignment_decision",
        "version": FORMAT_VERSION,
        # JSON object keys are strings; core ids are re-parsed on load.
        "assignment": {
            str(core): list(names) for core, names in decision.assignment.items()
        },
        "predicted_watts": decision.predicted_watts,
        "predicted_ips": decision.predicted_ips,
        "objective": decision.objective,
        "score": decision.score,
        "candidates_evaluated": decision.candidates_evaluated,
    }


def assignment_decision_from_dict(data: Dict) -> AssignmentDecision:
    _check_header(data, "assignment_decision")
    try:
        return AssignmentDecision(
            assignment={
                int(core): tuple(names)
                for core, names in data["assignment"].items()
            },
            predicted_watts=float(data["predicted_watts"]),
            predicted_ips=float(data["predicted_ips"]),
            objective=data["objective"],
            score=float(data["score"]),
            candidates_evaluated=int(data["candidates_evaluated"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"assignment-decision document missing {missing}"
        ) from None


# ----------------------------------------------------------------------
# Facade result bundles (repro.api)
# ----------------------------------------------------------------------
def profile_suite_result_to_dict(result) -> Dict:
    # Same ``profile_suite`` kind as :func:`save_profile_suite` (plus a
    # ``machine`` key), so facade-written files stay loadable by
    # :func:`load_profile_suite` and vice versa.
    return {
        "kind": "profile_suite",
        "version": FORMAT_VERSION,
        "machine": result.machine,
        "features": {
            name: feature_to_dict(f) for name, f in result.features.items()
        },
        "profiles": {
            name: profile_to_dict(p) for name, p in result.profiles.items()
        },
    }


def profile_suite_result_from_dict(data: Dict):
    from repro.api import ProfileSuiteResult

    _check_header(data, "profile_suite")
    return ProfileSuiteResult(
        machine=data.get("machine", ""),
        features={
            name: feature_from_dict(d)
            for name, d in data.get("features", {}).items()
        },
        profiles={
            name: profile_from_dict(d)
            for name, d in data.get("profiles", {}).items()
        },
    )


def mix_prediction_to_dict(result) -> Dict:
    return {
        "kind": "mix_prediction",
        "version": FORMAT_VERSION,
        "ways": result.ways,
        "names": list(result.names),
        "prediction": corun_prediction_to_dict(result.prediction),
    }


def mix_prediction_from_dict(data: Dict):
    from repro.api import MixPrediction

    _check_header(data, "mix_prediction")
    try:
        return MixPrediction(
            ways=int(data["ways"]),
            names=tuple(data["names"]),
            prediction=corun_prediction_from_dict(data["prediction"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"mix-prediction document missing {missing}"
        ) from None


def power_training_result_to_dict(result) -> Dict:
    return {
        "kind": "power_training_result",
        "version": FORMAT_VERSION,
        "machine": result.machine,
        "model": power_model_to_dict(result.model),
        "training_windows": result.training_windows,
        "r_squared": result.r_squared,
    }


def power_training_result_from_dict(data: Dict):
    from repro.api import PowerTrainingResult

    _check_header(data, "power_training_result")
    try:
        return PowerTrainingResult(
            machine=data["machine"],
            model=power_model_from_dict(data["model"]),
            training_windows=int(data["training_windows"]),
            r_squared=float(data["r_squared"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"power-training-result document missing {missing}"
        ) from None


def assignment_pick_to_dict(result) -> Dict:
    return {
        "kind": "assignment_pick",
        "version": FORMAT_VERSION,
        "machine": result.machine,
        "strategy": result.strategy,
        "decision": assignment_decision_to_dict(result.decision),
    }


def assignment_pick_from_dict(data: Dict):
    from repro.api import AssignmentPick

    _check_header(data, "assignment_pick")
    try:
        return AssignmentPick(
            machine=data["machine"],
            strategy=data["strategy"],
            decision=assignment_decision_from_dict(data["decision"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"assignment-pick document missing {missing}"
        ) from None


# ----------------------------------------------------------------------
# Fleet assignment (repro.fleet)
# ----------------------------------------------------------------------
def _field(data: Any, key: str, path: str) -> Any:
    """Required-field lookup that names the exact JSON path on failure.

    The fleet documents are accepted over HTTP (``/v2/assign``), where
    "``fleet.groups[1].count`` is missing" beats a bare ``KeyError``.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path} must be a JSON object")
    if key not in data:
        raise ConfigurationError(f"{path}.{key} is missing")
    return data[key]


def _cast(value: Any, caster, path: str) -> Any:
    try:
        return caster(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{path} has invalid value {value!r}"
        ) from None


def _optional(data: Dict, key: str, caster, path: str) -> Any:
    value = data.get(key)
    if value is None:
        return None
    return _cast(value, caster, f"{path}.{key}")


def hetero_spec_to_dict(spec) -> Dict:
    return {
        "kind": "hetero_machine_spec",
        "version": FORMAT_VERSION,
        "machine": spec.machine,
        "core_types": [
            {
                "name": core_type.name,
                "perf_scale": core_type.perf_scale,
                "dynamic_scale": core_type.dynamic_scale,
                "static_scale": core_type.static_scale,
                "pstates": [
                    {
                        "name": pstate.name,
                        "frequency_ratio": pstate.frequency_ratio,
                        "voltage_ratio": pstate.voltage_ratio,
                    }
                    for pstate in core_type.pstates
                ],
            }
            for core_type in spec.core_types
        ],
        "core_type_of": list(spec.core_type_of),
    }


def hetero_spec_from_dict(data: Dict, path: str = "hetero_machine_spec"):
    from repro.hetero.types import CoreType, HeteroMachineSpec, PState

    _check_header(data, "hetero_machine_spec")
    core_types_doc = _field(data, "core_types", path)
    if not isinstance(core_types_doc, list):
        raise ConfigurationError(f"{path}.core_types must be a list")
    core_types = []
    for index, type_doc in enumerate(core_types_doc):
        type_path = f"{path}.core_types[{index}]"
        if not isinstance(type_doc, dict):
            raise ConfigurationError(f"{type_path} must be a JSON object")
        pstates_doc = type_doc.get("pstates", [{"name": "nominal"}])
        if not isinstance(pstates_doc, list):
            raise ConfigurationError(f"{type_path}.pstates must be a list")
        pstates = []
        for pstate_index, pstate_doc in enumerate(pstates_doc):
            pstate_path = f"{type_path}.pstates[{pstate_index}]"
            if not isinstance(pstate_doc, dict):
                raise ConfigurationError(f"{pstate_path} must be a JSON object")
            pstates.append(
                PState(
                    name=_cast(
                        _field(pstate_doc, "name", pstate_path),
                        str,
                        f"{pstate_path}.name",
                    ),
                    frequency_ratio=_cast(
                        pstate_doc.get("frequency_ratio", 1.0),
                        float,
                        f"{pstate_path}.frequency_ratio",
                    ),
                    voltage_ratio=_cast(
                        pstate_doc.get("voltage_ratio", 1.0),
                        float,
                        f"{pstate_path}.voltage_ratio",
                    ),
                )
            )
        core_types.append(
            CoreType(
                name=_cast(
                    _field(type_doc, "name", type_path),
                    str,
                    f"{type_path}.name",
                ),
                perf_scale=_cast(
                    type_doc.get("perf_scale", 1.0),
                    float,
                    f"{type_path}.perf_scale",
                ),
                dynamic_scale=_cast(
                    type_doc.get("dynamic_scale", 1.0),
                    float,
                    f"{type_path}.dynamic_scale",
                ),
                static_scale=_cast(
                    type_doc.get("static_scale", 1.0),
                    float,
                    f"{type_path}.static_scale",
                ),
                pstates=tuple(pstates),
            )
        )
    core_type_of_doc = _field(data, "core_type_of", path)
    if not isinstance(core_type_of_doc, list):
        raise ConfigurationError(f"{path}.core_type_of must be a list")
    return HeteroMachineSpec(
        machine=_cast(_field(data, "machine", path), str, f"{path}.machine"),
        core_types=tuple(core_types),
        core_type_of=tuple(
            _cast(value, int, f"{path}.core_type_of[{index}]")
            for index, value in enumerate(core_type_of_doc)
        ),
    )


def fleet_spec_to_dict(spec) -> Dict:
    return {
        "kind": "fleet_spec",
        "version": FORMAT_VERSION,
        "groups": [
            {
                "machine": group.machine,
                "count": group.count,
                "sets": group.sets,
                "power_cap_watts": group.power_cap_watts,
                "hetero": (
                    hetero_spec_to_dict(group.hetero)
                    if group.hetero is not None
                    else None
                ),
            }
            for group in spec.groups
        ],
    }


def fleet_spec_from_dict(data: Dict, path: str = "fleet"):
    from repro.fleet.spec import FleetSpec, MachineGroup

    _check_header(data, "fleet_spec")
    groups_doc = _field(data, "groups", path)
    if not isinstance(groups_doc, list):
        raise ConfigurationError(f"{path}.groups must be a list")
    groups = []
    for index, group_doc in enumerate(groups_doc):
        group_path = f"{path}.groups[{index}]"
        if not isinstance(group_doc, dict):
            raise ConfigurationError(f"{group_path} must be a JSON object")
        hetero_doc = group_doc.get("hetero")
        hetero = (
            hetero_spec_from_dict(hetero_doc, path=f"{group_path}.hetero")
            if hetero_doc is not None
            else None
        )
        groups.append(
            MachineGroup(
                machine=_cast(
                    _field(group_doc, "machine", group_path),
                    str,
                    f"{group_path}.machine",
                ),
                count=_cast(
                    group_doc.get("count", 1), int, f"{group_path}.count"
                ),
                sets=_cast(group_doc.get("sets", 128), int, f"{group_path}.sets"),
                power_cap_watts=_optional(
                    group_doc, "power_cap_watts", float, group_path
                ),
                hetero=hetero,
            )
        )
    return FleetSpec(groups=tuple(groups))


def assignment_request_to_dict(request) -> Dict:
    return {
        "kind": "assignment_request",
        "version": FORMAT_VERSION,
        "processes": list(request.processes),
        "objective": request.objective,
        "solver": request.solver,
        "fleet": (
            fleet_spec_to_dict(request.fleet)
            if request.fleet is not None
            else None
        ),
        "machine": request.machine,
        "sets": request.sets,
        "max_per_core": request.max_per_core,
        "power_budget_watts": request.power_budget_watts,
        "machine_power_cap_watts": request.machine_power_cap_watts,
        "budget_s": request.budget_s,
        "max_iterations": request.max_iterations,
        "seed": request.seed,
    }


def assignment_request_from_dict(data: Dict):
    from repro.fleet.types import AssignmentRequest

    _check_header(data, "assignment_request")
    path = "assignment_request"
    processes = _field(data, "processes", path)
    if not isinstance(processes, list) or not all(
        isinstance(name, str) for name in processes
    ):
        raise ConfigurationError(f"{path}.processes must be a list of strings")
    fleet_doc = data.get("fleet")
    fleet = (
        fleet_spec_from_dict(fleet_doc, path=f"{path}.fleet")
        if fleet_doc is not None
        else None
    )
    return AssignmentRequest(
        processes=tuple(processes),
        objective=_cast(
            data.get("objective", "min-power"), str, f"{path}.objective"
        ),
        solver=_cast(data.get("solver", "auto"), str, f"{path}.solver"),
        fleet=fleet,
        machine=_cast(
            data.get("machine", "4-core-server"), str, f"{path}.machine"
        ),
        sets=_cast(data.get("sets", 128), int, f"{path}.sets"),
        max_per_core=_optional(data, "max_per_core", int, path),
        power_budget_watts=_optional(data, "power_budget_watts", float, path),
        machine_power_cap_watts=_optional(
            data, "machine_power_cap_watts", float, path
        ),
        budget_s=_optional(data, "budget_s", float, path),
        max_iterations=_optional(data, "max_iterations", int, path),
        seed=_cast(data.get("seed", 0), int, f"{path}.seed"),
    )


def machine_assignment_to_dict(machine) -> Dict:
    return {
        "kind": "machine_assignment",
        "version": FORMAT_VERSION,
        "machine": machine.machine,
        "group": machine.group,
        "index": machine.index,
        # JSON object keys are strings; core ids are re-parsed on load.
        "assignment": {
            str(core): list(names) for core, names in machine.assignment.items()
        },
        "predicted_watts": machine.predicted_watts,
        "predicted_ips": machine.predicted_ips,
        "pstates": (
            {str(core): pstate for core, pstate in machine.pstates.items()}
            if machine.pstates is not None
            else None
        ),
    }


def machine_assignment_from_dict(data: Dict, path: str = "machine_assignment"):
    from repro.fleet.types import MachineAssignment

    _check_header(data, "machine_assignment")
    assignment_doc = _field(data, "assignment", path)
    if not isinstance(assignment_doc, dict):
        raise ConfigurationError(f"{path}.assignment must be a JSON object")
    pstates_doc = data.get("pstates")
    if pstates_doc is not None and not isinstance(pstates_doc, dict):
        raise ConfigurationError(f"{path}.pstates must be a JSON object")
    pstates = (
        {
            _cast(core, int, f"{path}.pstates[{core!r}]"): _cast(
                pstate, int, f"{path}.pstates[{core!r}]"
            )
            for core, pstate in pstates_doc.items()
        }
        if pstates_doc is not None
        else None
    )
    return MachineAssignment(
        machine=_cast(_field(data, "machine", path), str, f"{path}.machine"),
        group=_cast(_field(data, "group", path), int, f"{path}.group"),
        index=_cast(_field(data, "index", path), int, f"{path}.index"),
        assignment={
            _cast(core, int, f"{path}.assignment[{core!r}]"): tuple(names)
            for core, names in assignment_doc.items()
        },
        predicted_watts=_cast(
            _field(data, "predicted_watts", path),
            float,
            f"{path}.predicted_watts",
        ),
        predicted_ips=_cast(
            _field(data, "predicted_ips", path), float, f"{path}.predicted_ips"
        ),
        pstates=pstates,
    )


def fleet_assignment_to_dict(result) -> Dict:
    return {
        "kind": "fleet_assignment",
        "version": FORMAT_VERSION,
        "objective": result.objective,
        "solver": result.solver,
        "refinement": result.refinement,
        "fleet": fleet_spec_to_dict(result.fleet),
        "processes": list(result.processes),
        "machines": [machine_assignment_to_dict(m) for m in result.machines],
        "predicted_watts": result.predicted_watts,
        "predicted_ips": result.predicted_ips,
        "score": result.score,
        "evaluations": result.evaluations,
        "iterations": result.iterations,
        "improvements": [
            [iteration, score] for iteration, score in result.improvements
        ],
        "seed": result.seed,
    }


def fleet_assignment_from_dict(data: Dict):
    from repro.fleet.types import FleetAssignment

    _check_header(data, "fleet_assignment")
    path = "fleet_assignment"
    machines_doc = _field(data, "machines", path)
    if not isinstance(machines_doc, list):
        raise ConfigurationError(f"{path}.machines must be a list")
    improvements_doc = data.get("improvements", [])
    improvements = tuple(
        (
            _cast(entry[0], int, f"{path}.improvements[{index}][0]"),
            _cast(entry[1], float, f"{path}.improvements[{index}][1]"),
        )
        for index, entry in enumerate(improvements_doc)
    )
    return FleetAssignment(
        objective=_cast(
            _field(data, "objective", path), str, f"{path}.objective"
        ),
        solver=_cast(_field(data, "solver", path), str, f"{path}.solver"),
        refinement=_cast(
            data.get("refinement", "none"), str, f"{path}.refinement"
        ),
        fleet=fleet_spec_from_dict(
            _field(data, "fleet", path), path=f"{path}.fleet"
        ),
        processes=tuple(_field(data, "processes", path)),
        machines=tuple(
            machine_assignment_from_dict(doc, path=f"{path}.machines[{index}]")
            for index, doc in enumerate(machines_doc)
        ),
        predicted_watts=_cast(
            _field(data, "predicted_watts", path),
            float,
            f"{path}.predicted_watts",
        ),
        predicted_ips=_cast(
            _field(data, "predicted_ips", path), float, f"{path}.predicted_ips"
        ),
        score=_cast(_field(data, "score", path), float, f"{path}.score"),
        evaluations=_cast(
            data.get("evaluations", 0), int, f"{path}.evaluations"
        ),
        iterations=_cast(data.get("iterations", 0), int, f"{path}.iterations"),
        improvements=improvements,
        seed=_cast(data.get("seed", 0), int, f"{path}.seed"),
    )


def load_fleet_assignment(path: Pathish):
    """Load a bundle saved by :meth:`FleetAssignment.save`."""
    return fleet_assignment_from_dict(load_json(path))


# ----------------------------------------------------------------------
# Suites and files
# ----------------------------------------------------------------------
def _require_finite(node: Any, path: str = "$") -> None:
    """Reject NaN/Infinity anywhere in a JSON-bound structure.

    ``json.dumps`` defaults to ``allow_nan=True`` and would emit bare
    ``NaN``/``Infinity`` tokens — invalid JSON that breaks round-trips
    and strict parsers.  This walk names the offending key path, which
    the ``ValueError`` from ``allow_nan=False`` alone does not.
    """
    if isinstance(node, float):
        if not math.isfinite(node):
            raise ConfigurationError(
                f"non-finite value {node!r} at {path}: JSON documents must "
                "be finite — fix the producing computation or sanitize the "
                "field (see sanitize_non_finite) before saving"
            )
    elif isinstance(node, dict):
        for key, value in node.items():
            _require_finite(value, f"{path}.{key}")
    elif isinstance(node, (list, tuple)):
        for index, value in enumerate(node):
            _require_finite(value, f"{path}[{index}]")


def sanitize_non_finite(node: Any) -> Any:
    """Deep copy with NaN/±Infinity floats replaced by string markers.

    For documents that must always export (observability traces of a
    *failing* run are exactly what one wants to look at), raising on a
    stray NaN attribute would be worse than recording it; the markers
    ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"`` keep the document
    valid strict JSON while preserving what happened.
    """
    if isinstance(node, float):
        if math.isnan(node):
            return "NaN"
        if math.isinf(node):
            return "Infinity" if node > 0 else "-Infinity"
        return node
    if isinstance(node, dict):
        return {key: sanitize_non_finite(value) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [sanitize_non_finite(value) for value in node]
    return node


def save_json(data: Dict, path: Pathish) -> None:
    """Write a document as strict JSON (non-finite floats rejected)."""
    _require_finite(data)
    pathlib.Path(path).write_text(
        json.dumps(data, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def load_json(path: Pathish) -> Dict:
    return json.loads(pathlib.Path(path).read_text())


def save_feature(feature: FeatureVector, path: Pathish) -> None:
    """Write one feature vector to a JSON file."""
    save_json(feature_to_dict(feature), path)


def load_feature(path: Pathish) -> FeatureVector:
    """Read one feature vector from a JSON file."""
    return feature_from_dict(load_json(path))


def save_profile_suite(
    features: Dict[str, FeatureVector],
    profiles: Dict[str, ProfileVector],
    path: Pathish,
) -> None:
    """Persist a whole profiled suite (features + PF vectors) to JSON."""
    if set(features) != set(profiles):
        raise ConfigurationError("features and profiles must cover the same names")
    document = {
        "kind": "profile_suite",
        "version": FORMAT_VERSION,
        "features": {name: feature_to_dict(f) for name, f in features.items()},
        "profiles": {name: profile_to_dict(p) for name, p in profiles.items()},
    }
    save_json(document, path)


def load_profile_suite(path: Pathish):
    """Load a suite saved by :func:`save_profile_suite`.

    Returns:
        ``(features, profiles)`` dictionaries keyed by process name.
    """
    data = load_json(path)
    _check_header(data, "profile_suite")
    features = {
        name: feature_from_dict(d) for name, d in data.get("features", {}).items()
    }
    profiles = {
        name: profile_from_dict(d) for name, d in data.get("profiles", {}).items()
    }
    return features, profiles


def save_power_model(model: CorePowerModel, path: Pathish) -> None:
    """Persist a fitted Eq. 9 model to JSON."""
    save_json(power_model_to_dict(model), path)


def load_power_model(path: Pathish) -> CorePowerModel:
    """Load a fitted Eq. 9 model from JSON."""
    return power_model_from_dict(load_json(path))
