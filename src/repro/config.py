"""Validated configuration dataclasses shared across the package.

The central object is :class:`CacheGeometry`, which describes a
set-associative cache the way the paper does: an ``A``-way cache whose
per-set way count is the unit of *effective cache size*.  Machine
topologies (which cores share which cache) live in
:mod:`repro.machine.topology`; this module only holds geometry and
simulation-scale knobs that several subpackages need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def _require_power_of_two(name: str, value: int) -> None:
    if value < 1 or value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative cache.

    Attributes:
        sets: Number of cache sets.  Must be a power of two so set
            indexing can use simple modular arithmetic on line numbers.
        ways: Associativity ``A``; the paper's effective cache sizes
            ``S_i`` are measured in ways of one set.
        line_bytes: Cache line size in bytes.
    """

    sets: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        _require_power_of_two("sets", self.sets)
        if self.ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {self.ways!r}")
        _require_power_of_two("line_bytes", self.line_bytes)

    @property
    def lines(self) -> int:
        """Total number of cache lines."""
        return self.sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        """Total cache capacity in bytes."""
        return self.lines * self.line_bytes

    def set_index(self, line: int) -> int:
        """Map a line number to its set index."""
        return line & (self.sets - 1)

    def tag(self, line: int) -> int:
        """Map a line number to its tag within a set."""
        return line >> (self.sets.bit_length() - 1)

    def scaled(self, set_factor: float) -> "CacheGeometry":
        """Return a copy with the set count scaled by ``set_factor``.

        Associativity is preserved because the paper's model reasons in
        ways, not sets.  The scaled set count is rounded down to the
        nearest power of two (minimum 1).
        """
        _require_positive("set_factor", set_factor)
        target = max(1, int(self.sets * set_factor))
        scaled_sets = 1 << (target.bit_length() - 1)
        return CacheGeometry(sets=scaled_sets, ways=self.ways, line_bytes=self.line_bytes)


@dataclass(frozen=True)
class SimulationScale:
    """Knobs that trade simulation fidelity for runtime.

    The machines in :mod:`repro.machine.topology` are modeled at 1/12
    of their real clock rate; the paper's OS/measurement time constants
    (20 ms timeslice, 30 ms PAPI sampling period) are scaled by the
    same factor here so the *ratios* between program speed, scheduling
    and sampling match the paper.

    Attributes:
        warmup_accesses: Per-process shared-cache accesses discarded
            before statistics are collected (access-budget mode).
        measure_accesses: Per-process accesses over which steady-state
            statistics are measured (access-budget mode).
        warmup_s: Simulated warm-up time (duration mode, used by power
            experiments that need HPC/power sampling).
        measure_s: Simulated measurement time (duration mode).
        hpc_period_s: HPC sampling period in simulated seconds
            (paper: 30 ms, scaled).
        timeslice_s: Scheduler timeslice in simulated seconds
            (paper: 20 ms, scaled).
    """

    warmup_accesses: int = 40_000
    measure_accesses: int = 120_000
    warmup_s: float = 0.020
    measure_s: float = 0.060
    hpc_period_s: float = 0.030 / 12.0
    timeslice_s: float = 0.020 / 12.0

    def __post_init__(self) -> None:
        _require_positive("warmup_accesses", self.warmup_accesses)
        _require_positive("measure_accesses", self.measure_accesses)
        _require_positive("warmup_s", self.warmup_s)
        _require_positive("measure_s", self.measure_s)
        _require_positive("hpc_period_s", self.hpc_period_s)
        _require_positive("timeslice_s", self.timeslice_s)


#: Scale used by unit tests: small enough that a full co-run finishes in
#: well under a second.
TEST_SCALE = SimulationScale(
    warmup_accesses=4_000,
    measure_accesses=12_000,
    warmup_s=0.004,
    measure_s=0.012,
    hpc_period_s=0.001,
    timeslice_s=0.0008,
)

#: Scale used by the benchmark harness.
BENCH_SCALE = SimulationScale()

#: Scale used for the O(A)-runs-per-process profiling sweeps.  Each
#: sweep point only needs a stable MPA/SPI estimate, so shorter runs
#: keep total profiling cost reasonable.
PROFILE_SCALE = SimulationScale(
    warmup_accesses=5_000,
    measure_accesses=15_000,
    warmup_s=0.010,
    measure_s=0.030,
)


@dataclass(frozen=True)
class RandomSeeds:
    """Deterministic seeds for the stochastic pieces of an experiment."""

    trace: int = 12345
    power_noise: int = 54321
    assignment: int = 99

    def child(self, offset: int) -> "RandomSeeds":
        """Derive an independent seed set for a sub-experiment."""
        return RandomSeeds(
            trace=self.trace + 1009 * offset,
            power_noise=self.power_noise + 2003 * offset,
            assignment=self.assignment + 3001 * offset,
        )
