"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this package derive from :class:`ReproError`
so callers can catch every library failure with a single ``except``
clause while still being able to distinguish configuration mistakes,
numerical failures, and profiling problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Raised during construction of configuration dataclasses (cache
    geometry, machine topology, workload definitions) when a field is
    out of its physically meaningful range.
    """


class AssignmentTooLargeError(ConfigurationError):
    """An exhaustive assignment enumeration would be intractable.

    Raised *before* any candidate is scored when the raw enumeration
    size (``num_cores ** num_processes`` placements) exceeds the
    configured cap, instead of silently hanging for hours.  Carries
    the offending count so callers can report it, and the error text
    points at the scalable alternative (``solver="greedy"`` /
    ``solver="anneal"`` in :mod:`repro.fleet`).
    """

    def __init__(self, message: str, candidate_count: int = 0, max_candidates: int = 0):
        super().__init__(message)
        #: Raw enumeration size that tripped the guard.
        self.candidate_count = candidate_count
        #: Configured cap the count exceeded.
        self.max_candidates = max_candidates


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical procedure failed to converge.

    Raised by the equilibrium solvers in
    :mod:`repro.core.equilibrium` and by the neural-network trainer
    when the iteration budget is exhausted without meeting the
    tolerance.
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        #: Number of iterations performed before giving up.
        self.iterations = iterations
        #: Final residual norm when the solver stopped.
        self.residual = residual


class ProfilingError(ReproError, RuntimeError):
    """Automated profiling produced unusable data.

    Raised when a stressmark sweep yields non-monotonic or degenerate
    miss-rate measurements from which no reuse-distance histogram can
    be recovered.
    """


class ModelNotFittedError(ReproError, RuntimeError):
    """A model was queried before being fitted.

    Raised when :meth:`predict`-style methods are called on a power or
    performance model whose coefficients have not been estimated yet.
    """


class SimulationError(ReproError, RuntimeError):
    """The machine simulator reached an inconsistent state."""
