"""End-to-end automated profiling (paper Section 3.4 and Section 5).

One call to :func:`profile_process` performs the paper's whole
characterisation recipe for a process:

1. run it alone, recording API, the instruction-related event rates
   and (optionally) P_alone;
2. co-run it with the stressmark at every effective cache size
   ``A - w`` for ``w = A-1 .. 1``;
3. regress the Eq. 3 constants α, β from the (MPA, SPI) sweep;
4. difference the MPA sweep into a reuse-distance histogram (Eq. 8).

The outputs — a :class:`~repro.core.feature.FeatureVector` and a
:class:`~repro.core.feature.ProfileVector` — are everything the
performance, power and combined models consume.  Total cost is O(A)
runs per process, once, versus the 2^k co-run combinations the models
can then predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import SimulationScale, BENCH_SCALE
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.mpa import MissRatioCurve
from repro.core.spi import fit_spi_model
from repro.errors import ProfilingError
from repro.machine.simulator import PowerEnvironment
from repro.machine.topology import MachineTopology
from repro.obs import get_observer
from repro.profiling.characterize import (
    AloneMeasurement,
    SweepPoint,
    measure_alone,
    measure_alone_power,
    measure_with_stressmark,
)
from repro.workloads.spec import SyntheticBenchmark


@dataclass(frozen=True)
class ProcessProfile:
    """Everything profiling learned about one process."""

    feature: FeatureVector
    profile: ProfileVector
    alone: AloneMeasurement
    sweep: Tuple[SweepPoint, ...]
    spi_fit_r2: float


def profile_process(
    benchmark: SyntheticBenchmark,
    topology: MachineTopology,
    scale: SimulationScale = BENCH_SCALE,
    seed: int = 0,
    core: int = 0,
    power_env: Optional[PowerEnvironment] = None,
    sweep_ways: Optional[Sequence[int]] = None,
) -> ProcessProfile:
    """Run the paper's automated profiling recipe for one process.

    Args:
        benchmark: The process to characterise (executed, not read).
        topology: Machine to profile on; the profiled core's cache
            domain defines the sweep range.
        scale: Simulation budgets for each profiling run.
        seed: Base RNG seed; each run derives its own.
        core: Core the profiled process runs on.
        power_env: If given, P_alone is measured (needed for the
            combined model); otherwise it is recorded as 0.
        sweep_ways: Stressmark way counts to sweep (default
            ``A-1 .. 1``, giving effective sizes ``1 .. A-1``; the
            alone run supplies the size-``A`` point).

    Raises:
        ProfilingError: If the sweep data is degenerate.
    """
    observer = get_observer()
    if not observer.enabled:
        return _profile_process_impl(
            benchmark, topology, scale, seed, core, power_env, sweep_ways
        )
    with observer.span(
        "profile.process", name=benchmark.name, core=core
    ) as span:
        result = _profile_process_impl(
            benchmark, topology, scale, seed, core, power_env, sweep_ways
        )
        span.annotate(
            sweep_points=len(result.sweep), spi_fit_r2=result.spi_fit_r2
        )
        observer.counter("profile.processes").inc()
        return result


def _profile_process_impl(
    benchmark: SyntheticBenchmark,
    topology: MachineTopology,
    scale: SimulationScale,
    seed: int,
    core: int,
    power_env: Optional[PowerEnvironment],
    sweep_ways: Optional[Sequence[int]],
) -> ProcessProfile:
    observer = get_observer()
    ways = topology.domain_of(core).geometry.ways
    if ways < 2:
        raise ProfilingError(
            f"cannot sweep a {ways}-way cache: the stressmark procedure "
            "needs at least 2 ways"
        )
    if sweep_ways is None:
        sweep_ways = range(ways - 1, 0, -1)
    sweep_ways = list(sweep_ways)
    if any(not 1 <= w <= ways - 1 for w in sweep_ways):
        raise ProfilingError(
            f"stressmark ways must lie in 1..{ways - 1} for a {ways}-way cache"
        )

    with observer.span("profile.alone", name=benchmark.name):
        alone = measure_alone(
            benchmark, topology, scale=scale, seed=seed, core=core
        )

    points: List[SweepPoint] = []
    with observer.span(
        "profile.sweep", name=benchmark.name, points=len(sweep_ways)
    ):
        for index, w in enumerate(sweep_ways):
            points.append(
                measure_with_stressmark(
                    benchmark,
                    topology,
                    stress_ways=w,
                    scale=scale,
                    seed=seed + 101 * (index + 1),
                    core=core,
                )
            )

    with observer.span("profile.fit", name=benchmark.name):
        # Assemble the MPA(S) sweep: stressmark points plus the alone
        # run as the full-cache point.
        sized = sorted(points, key=lambda p: p.target_size)
        sizes = [float(p.target_size) for p in sized] + [float(ways)]
        mpas = [p.mpa for p in sized] + [alone.mpa]
        curve = MissRatioCurve(sizes, mpas, enforce_monotone=True)
        histogram = curve.to_histogram()

        spi_model = fit_spi_model(
            [p.mpa for p in sized] + [alone.mpa],
            [p.spi for p in sized] + [alone.spi],
        )

    p_alone_core = 0.0
    if power_env is not None:
        with observer.span("profile.power", name=benchmark.name):
            processor_alone, processor_idle = measure_alone_power(
                benchmark,
                topology,
                power_env,
                scale=scale,
                seed=seed + 5_000,
                core=core,
            )
        # Convert to a core-level figure consistent with the power
        # model's convention (uncore amortised per core): the busy
        # core's power is the alone-run increment plus one idle share.
        idle_share = processor_idle / topology.num_cores
        p_alone_core = max(0.0, processor_alone - processor_idle + idle_share)

    feature = FeatureVector(
        name=benchmark.name,
        histogram=histogram,
        api=alone.api,
        spi_model=spi_model,
    )
    profile = ProfileVector(
        name=benchmark.name,
        p_alone=p_alone_core,
        l1rpi=alone.l1rpi,
        l2rpi=alone.l2rpi,
        brpi=alone.brpi,
        fppi=alone.fppi,
    )
    return ProcessProfile(
        feature=feature,
        profile=profile,
        alone=alone,
        sweep=tuple(sized),
        spi_fit_r2=spi_model.r_squared,
    )


def profile_suite(
    benchmarks: Sequence[SyntheticBenchmark],
    topology: MachineTopology,
    scale: SimulationScale = BENCH_SCALE,
    seed: int = 0,
    power_env: Optional[PowerEnvironment] = None,
) -> List[ProcessProfile]:
    """Profile a whole benchmark suite (O(k·A) runs in total)."""
    observer = get_observer()
    with observer.span(
        "profile.suite",
        benchmarks=len(benchmarks),
        topology=topology.name,
        powered=power_env is not None,
    ):
        profiles = []
        for index, benchmark in enumerate(benchmarks):
            profiles.append(
                profile_process(
                    benchmark,
                    topology,
                    scale=scale,
                    seed=seed + 10_007 * index,
                    power_env=power_env,
                )
            )
        return profiles
