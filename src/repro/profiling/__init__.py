"""Automated process profiling (stressmark co-runs, Section 3.4)."""

from repro.profiling.characterize import (
    AloneMeasurement,
    SweepPoint,
    measure_alone,
    measure_alone_power,
    measure_with_stressmark,
)
from repro.profiling.profiler import ProcessProfile, profile_process, profile_suite

__all__ = [
    "AloneMeasurement",
    "SweepPoint",
    "measure_alone",
    "measure_alone_power",
    "measure_with_stressmark",
    "ProcessProfile",
    "profile_process",
    "profile_suite",
]
