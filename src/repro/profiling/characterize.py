"""Low-level measurement helpers for automated profiling.

Everything here consumes only quantities observable on a real system:
HPC counter totals, wall-clock time, and meter readings.  The hidden
benchmark definitions are used solely to *run* the process in the
simulator, never to read its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import SimulationScale
from repro.errors import ProfilingError
from repro.machine.events import Event
from repro.machine.simulator import (
    MachineSimulation,
    PowerEnvironment,
)
from repro.machine.topology import MachineTopology
from repro.workloads.spec import SyntheticBenchmark
from repro.workloads.stressmark import make_stressmark


@dataclass(frozen=True)
class AloneMeasurement:
    """Measured behaviour of a process running alone on the machine."""

    name: str
    api: float
    mpa: float
    spi: float
    l1rpi: float
    l2rpi: float
    brpi: float
    fppi: float


@dataclass(frozen=True)
class SweepPoint:
    """One stressmark co-run measurement (Section 3.4)."""

    stress_ways: int
    #: Effective cache size the procedure assumes for the process:
    #: associativity minus the stressmark's ways.
    target_size: int
    mpa: float
    spi: float


def _per_instruction_rates(sim: MachineSimulation, core: int) -> Dict[str, float]:
    """Instruction-related event rates measured from the core's HPCs."""
    counts = sim.banks[core].counts
    instructions = counts[Event.INSTRUCTIONS]
    if instructions <= 0:
        raise ProfilingError("no instructions retired during profiling run")
    return {
        "l1rpi": counts[Event.L1_REFS] / instructions,
        "l2rpi": counts[Event.L2_REFS] / instructions,
        "brpi": counts[Event.BRANCHES] / instructions,
        "fppi": counts[Event.FP_OPS] / instructions,
    }


def measure_alone(
    benchmark: SyntheticBenchmark,
    topology: MachineTopology,
    scale: SimulationScale,
    seed: int,
    core: int = 0,
) -> AloneMeasurement:
    """Run the process alone and record its solo operating point."""
    sim = MachineSimulation(topology, {core: [benchmark]}, scale=scale, seed=seed)
    result = sim.run_accesses()
    process = result.processes[0]
    if process.l2_refs == 0 or process.instructions <= 0:
        raise ProfilingError(f"{benchmark.name}: degenerate alone run")
    rates = _per_instruction_rates(sim, core)
    return AloneMeasurement(
        name=benchmark.name,
        api=process.l2_refs / process.instructions,
        mpa=process.mpa,
        spi=process.spi,
        **rates,
    )


def measure_with_stressmark(
    benchmark: SyntheticBenchmark,
    topology: MachineTopology,
    stress_ways: int,
    scale: SimulationScale,
    seed: int,
    core: int = 0,
    partner_core: Optional[int] = None,
) -> SweepPoint:
    """Co-run the process with a ``stress_ways``-way stressmark.

    The partner core defaults to the first other core in the profiled
    core's cache domain.
    """
    domain = topology.domain_of(core)
    if partner_core is None:
        partners = [c for c in domain.core_ids if c != core]
        if not partners:
            raise ProfilingError(
                f"core {core} has no cache-sharing partner for the stressmark"
            )
        partner_core = partners[0]
    stressmark = make_stressmark(stress_ways)
    sim = MachineSimulation(
        topology,
        {core: [benchmark], partner_core: [stressmark]},
        scale=scale,
        seed=seed,
    )
    result = sim.run_accesses()
    process = next(p for p in result.processes if p.core == core)
    if process.l2_refs == 0:
        raise ProfilingError(
            f"{benchmark.name}: no L2 accesses in stressmark sweep w={stress_ways}"
        )
    return SweepPoint(
        stress_ways=stress_ways,
        target_size=domain.geometry.ways - stress_ways,
        mpa=process.mpa,
        spi=process.spi,
    )


def measure_alone_power(
    benchmark: SyntheticBenchmark,
    topology: MachineTopology,
    power_env: PowerEnvironment,
    scale: SimulationScale,
    seed: int,
    core: int = 0,
) -> Tuple[float, float]:
    """Measured processor power with only this process running.

    Returns ``(processor_watts_alone, processor_watts_idle)`` so the
    caller can convert to a core-level P_alone.
    """
    alone = MachineSimulation(
        topology, {core: [benchmark]}, scale=scale, seed=seed, power_env=power_env
    ).run_duration()
    idle = MachineSimulation(
        topology, {}, scale=scale, seed=seed + 1, power_env=power_env
    ).run_duration()
    if alone.power is None or idle.power is None:
        raise ProfilingError("power traces missing from profiling runs")
    return alone.power.mean_measured, idle.power.mean_measured
