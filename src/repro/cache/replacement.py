"""Replacement policies for set-associative caches.

Each policy manages per-set bookkeeping separate from the tag array so
that :class:`repro.cache.set_associative.SetAssociativeCache` can mix
and match policies.  The paper assumes LRU; the other policies exist so
that the benchmark harness can measure how badly the model degrades
when the LRU assumption is violated (``bench_replacement_policy``).

A policy's *state* for one set is an opaque object created by
:meth:`ReplacementPolicy.make_state`.  Way indices run ``0..ways-1``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, List


class ReplacementPolicy(ABC):
    """Interface for per-set replacement bookkeeping."""

    name: str = "abstract"

    @abstractmethod
    def make_state(self, ways: int) -> Any:
        """Create the bookkeeping state for one cache set."""

    @abstractmethod
    def on_hit(self, state: Any, way: int) -> None:
        """Record a hit on ``way``."""

    @abstractmethod
    def on_fill(self, state: Any, way: int) -> None:
        """Record that ``way`` was filled by a new line."""

    @abstractmethod
    def victim(self, state: Any) -> int:
        """Choose the way to evict from a full set."""


class LruPolicy(ReplacementPolicy):
    """Exact least-recently-used replacement.

    State is a list of way indices ordered most- to least-recently
    used.  ``victim`` returns the last element.
    """

    name = "lru"

    def make_state(self, ways: int) -> List[int]:
        return list(range(ways))

    def on_hit(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def on_fill(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def victim(self, state: List[int]) -> int:
        return state[-1]


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement (hits do not refresh recency)."""

    name = "fifo"

    def make_state(self, ways: int) -> List[int]:
        return list(range(ways))

    def on_hit(self, state: List[int], way: int) -> None:
        pass  # FIFO ignores hits by definition.

    def on_fill(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def victim(self, state: List[int]) -> int:
        return state[-1]


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim selection (deterministic via seed)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def make_state(self, ways: int) -> int:
        return ways

    def on_hit(self, state: int, way: int) -> None:
        pass

    def on_fill(self, state: int, way: int) -> None:
        pass

    def victim(self, state: int) -> int:
        return self._rng.randrange(state)


class TreePlruPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU, the common hardware approximation of LRU.

    State is a list of internal-node bits for a complete binary tree
    over the ways (ways must be a power of two).  A bit of 0 means the
    pseudo-LRU line is in the left subtree.
    """

    name = "tree-plru"

    def make_state(self, ways: int) -> List[int]:
        if ways & (ways - 1):
            raise ValueError("tree-PLRU requires a power-of-two way count")
        # Element 0 stores the way count; elements 1..ways-1 are tree bits.
        return [ways] + [0] * (ways - 1)

    def _touch(self, state: List[int], way: int) -> None:
        ways = state[0]
        node = 1
        span = ways
        offset = 0
        while span > 1:
            span //= 2
            if way < offset + span:
                state[node] = 1  # pseudo-LRU now on the right
                node = 2 * node
            else:
                state[node] = 0  # pseudo-LRU now on the left
                node = 2 * node + 1
                offset += span

    def on_hit(self, state: List[int], way: int) -> None:
        self._touch(state, way)

    def on_fill(self, state: List[int], way: int) -> None:
        self._touch(state, way)

    def victim(self, state: List[int]) -> int:
        ways = state[0]
        node = 1
        span = ways
        offset = 0
        while span > 1:
            span //= 2
            if state[node] == 0:
                node = 2 * node
            else:
                node = 2 * node + 1
                offset += span
        return offset


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "tree-plru": TreePlruPolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Build a replacement policy by name.

    Args:
        name: One of ``lru``, ``fifo``, ``random``, ``tree-plru``.
        seed: Seed for stochastic policies (``random``).

    Raises:
        ValueError: If ``name`` is unknown.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(seed)
    return cls()
