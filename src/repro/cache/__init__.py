"""Cache simulator substrate.

Public surface:

- :class:`~repro.cache.set_associative.SetAssociativeCache` — the
  shared-cache simulator the contention experiments run on.
- :mod:`~repro.cache.replacement` — LRU / FIFO / random / tree-PLRU.
- :class:`~repro.cache.shared.ContentionMonitor` — per-process
  occupancy and miss-rate measurement.
- :class:`~repro.cache.reuse.SetReuseProfiler` — exact per-set
  reuse-distance measurement.
- :class:`~repro.cache.hierarchy.CacheHierarchy` — L1 + shared L2.
- :mod:`~repro.cache.prefetch` — prefetcher models for the ablation.
"""

from repro.cache.hierarchy import CacheHierarchy, HierarchyAccess
from repro.cache.prefetch import NextLinePrefetcher, Prefetcher, StridePrefetcher
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePlruPolicy,
    make_policy,
)
from repro.cache.reuse import GlobalStackProfiler, SetReuseProfiler
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.shared import ContentionMonitor, OwnerSummary
from repro.cache.stats import CacheStats, OwnerStats

__all__ = [
    "SetAssociativeCache",
    "CacheHierarchy",
    "HierarchyAccess",
    "ContentionMonitor",
    "OwnerSummary",
    "CacheStats",
    "OwnerStats",
    "SetReuseProfiler",
    "GlobalStackProfiler",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "TreePlruPolicy",
    "make_policy",
    "Prefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
]
