"""Shared-cache contention monitoring.

:class:`ContentionMonitor` wraps a
:class:`~repro.cache.set_associative.SetAssociativeCache` that several
processes access concurrently and maintains, per owner:

- windowed miss rates (what an HPC sampler would report), and
- time-averaged occupancy in ways per set — the measured ground truth
  for the paper's *effective cache size* ``S_i``.

Occupancy is sampled every ``sample_every`` accesses rather than on
each access to keep the simulator fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stats import OwnerStats


@dataclass
class OwnerSummary:
    """Steady-state measurement summary for one owner."""

    accesses: int
    misses: int
    mpa: float
    occupancy_ways: float


class ContentionMonitor:
    """Per-owner occupancy and miss-rate measurement on a shared cache.

    Args:
        cache: The shared cache being monitored.
        sample_every: Occupancy sampling interval in accesses.
    """

    def __init__(self, cache: SetAssociativeCache, sample_every: int = 256):
        if sample_every < 1:
            raise ValueError("sample_every must be positive")
        self.cache = cache
        self.sample_every = sample_every
        self._since_sample = 0
        self._occupancy_sum: Dict[int, float] = {}
        self._occupancy_samples = 0
        self._baseline: Dict[int, OwnerStats] = {}

    def access(self, line: int, owner: int) -> bool:
        """Forward an access to the cache and update monitoring state."""
        hit = self.cache.access(line, owner)
        self._since_sample += 1
        if self._since_sample >= self.sample_every:
            self._since_sample = 0
            self._sample_occupancy()
        return hit

    def _sample_occupancy(self) -> None:
        self._occupancy_samples += 1
        for owner, lines in self.cache.lines_by_owner().items():
            self._occupancy_sum[owner] = (
                self._occupancy_sum.get(owner, 0.0) + lines
            )

    def start_measurement(self) -> None:
        """Discard everything seen so far (end of warm-up)."""
        self._occupancy_sum.clear()
        self._occupancy_samples = 0
        self._since_sample = 0
        self._baseline = {
            owner: stats.snapshot()
            for owner, stats in self.cache.stats.by_owner.items()
        }

    def mean_occupancy_ways(self, owner: int) -> float:
        """Time-averaged effective cache size of ``owner`` (ways/set)."""
        if self._occupancy_samples == 0:
            return self.cache.occupancy_ways(owner)
        lines = self._occupancy_sum.get(owner, 0.0) / self._occupancy_samples
        return lines / self.cache.geometry.sets

    def window_stats(self, owner: int) -> OwnerStats:
        """Counters accumulated since :meth:`start_measurement`."""
        current = self.cache.stats.owner(owner)
        baseline = self._baseline.get(owner)
        if baseline is None:
            return current.snapshot()
        return current.delta_since(baseline)

    def summary(self, owner: int) -> OwnerSummary:
        """Measurement summary for one owner over the current window."""
        stats = self.window_stats(owner)
        return OwnerSummary(
            accesses=stats.accesses,
            misses=stats.misses,
            mpa=stats.miss_rate,
            occupancy_ways=self.mean_occupancy_ways(owner),
        )

    def summaries(self) -> Dict[int, OwnerSummary]:
        """Summaries for every owner that accessed the cache."""
        owners = set(self.cache.stats.by_owner) | set(self._baseline)
        return {owner: self.summary(owner) for owner in sorted(owners)}
