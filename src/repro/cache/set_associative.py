"""A set-associative cache simulator with per-owner statistics.

This is the substrate on which cache contention *emerges*: several
processes' line streams are interleaved into one
:class:`SetAssociativeCache` and the LRU policy decides who keeps how
many ways.  The paper's performance model then has to predict the
resulting per-process occupancy and miss rates without running the
combination.

Addresses are *line numbers* (byte address divided by the line size);
the workload generators already work at line granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.replacement import LruPolicy, ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.config import CacheGeometry

#: Sentinel owner id for lines inserted by a prefetcher.
PREFETCH_OWNER_BIT = 1 << 30


class SetAssociativeCache:
    """Set-associative cache with pluggable replacement policy.

    Args:
        geometry: Cache geometry (sets, ways, line size).
        policy: Replacement policy instance; defaults to exact LRU as
            assumed by the paper's model.

    The per-set storage is three parallel structures indexed by way:
    ``tags``, ``owners``, and a ``tag -> way`` dict for O(1) lookup.
    """

    def __init__(self, geometry: CacheGeometry, policy: Optional[ReplacementPolicy] = None):
        self.geometry = geometry
        self.policy = policy if policy is not None else LruPolicy()
        self.stats = CacheStats()
        sets, ways = geometry.sets, geometry.ways
        self._set_mask = sets - 1
        self._set_shift = sets.bit_length() - 1
        self._tags: List[List[Optional[int]]] = [[None] * ways for _ in range(sets)]
        self._owners: List[List[int]] = [[-1] * ways for _ in range(sets)]
        self._lookup: List[Dict[int, int]] = [{} for _ in range(sets)]
        self._policy_state = [self.policy.make_state(ways) for _ in range(sets)]
        self._free: List[List[int]] = [list(range(ways - 1, -1, -1)) for _ in range(sets)]
        self._lines_by_owner: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, line: int, owner: int = 0) -> bool:
        """Access ``line`` on behalf of ``owner``; return True on hit.

        A miss allocates the line (write-allocate, no write-back
        distinction — the paper's model only cares about presence).
        """
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        lookup = self._lookup[set_idx]
        stats = self.stats.owner(owner)
        stats.accesses += 1

        way = lookup.get(tag)
        if way is not None:
            stats.hits += 1
            self.policy.on_hit(self._policy_state[set_idx], way)
            self._owners[set_idx][way] = owner
            return True

        stats.misses += 1
        self._fill(set_idx, tag, owner)
        return False

    def _fill(self, set_idx: int, tag: int, owner: int) -> None:
        """Insert ``tag`` into ``set_idx``, evicting if the set is full."""
        free = self._free[set_idx]
        owners = self._owners[set_idx]
        if free:
            way = free.pop()
        else:
            way = self.policy.victim(self._policy_state[set_idx])
            old_tag = self._tags[set_idx][way]
            old_owner = owners[way]
            del self._lookup[set_idx][old_tag]
            self._lines_by_owner[old_owner] -= 1
            self.stats.owner(old_owner).evictions_suffered += 1
            if old_owner != owner:
                self.stats.owner(owner).evictions_inflicted += 1
        self._tags[set_idx][way] = tag
        owners[way] = owner
        self._lookup[set_idx][tag] = way
        self.policy.on_fill(self._policy_state[set_idx], way)
        self.stats.owner(owner).fills += 1
        self._lines_by_owner[owner] = self._lines_by_owner.get(owner, 0) + 1

    def contains(self, line: int) -> bool:
        """Return True if ``line`` is currently resident (no side effects)."""
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        return tag in self._lookup[set_idx]

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if resident; return True if it was present."""
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        way = self._lookup[set_idx].get(tag)
        if way is None:
            return False
        owner = self._owners[set_idx][way]
        del self._lookup[set_idx][tag]
        self._tags[set_idx][way] = None
        self._owners[set_idx][way] = -1
        self._lines_by_owner[owner] -= 1
        self._free[set_idx].append(way)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lines_by_owner(self) -> Dict[int, int]:
        """Current number of resident lines per owner."""
        return {o: n for o, n in self._lines_by_owner.items() if n > 0}

    def occupancy_ways(self, owner: int) -> float:
        """Average ways per set currently held by ``owner``.

        This is the instantaneous *effective cache size* ``S_i`` of the
        paper, measured rather than predicted.
        """
        return self._lines_by_owner.get(owner, 0) / self.geometry.sets

    def resident_lines(self, owner: Optional[int] = None) -> int:
        """Total resident line count (optionally for one owner)."""
        if owner is None:
            return sum(n for n in self._lines_by_owner.values())
        return self._lines_by_owner.get(owner, 0)

    def set_contents(self, set_idx: int) -> List[Tuple[int, int]]:
        """Return ``(tag, owner)`` pairs resident in one set (unordered)."""
        contents = []
        for way, tag in enumerate(self._tags[set_idx]):
            if tag is not None:
                contents.append((tag, self._owners[set_idx][way]))
        return contents

    def flush(self) -> None:
        """Empty the cache and reset occupancy (statistics are kept)."""
        ways = self.geometry.ways
        for set_idx in range(self.geometry.sets):
            self._tags[set_idx] = [None] * ways
            self._owners[set_idx] = [-1] * ways
            self._lookup[set_idx].clear()
            self._policy_state[set_idx] = self.policy.make_state(ways)
            self._free[set_idx] = list(range(ways - 1, -1, -1))
        self._lines_by_owner.clear()
