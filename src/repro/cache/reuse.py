"""Exact reuse-distance (stack-distance) profilers.

The paper's reuse distance (Section 3.1) is *per set*: the number of
distinct lines mapping to the same cache set accessed between two
consecutive accesses to a line.  :class:`SetReuseProfiler` measures it
exactly by maintaining one LRU stack per set.

:class:`GlobalStackProfiler` measures the classic whole-cache stack
distance (distinct lines anywhere in between), which is useful for
checking the trace generators and for fully-associative analyses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.histogram import ReuseDistanceHistogram


class SetReuseProfiler:
    """Measures per-set reuse distances of a line-address stream.

    Args:
        sets: Number of cache sets the addresses are interleaved over.
            Distances are counted among lines with equal
            ``line % sets``.
        max_tracked: Stack depth bound; reuses deeper than this are
            counted as infinite (they could never hit in any cache of
            that many ways, so the distinction is irrelevant).
    """

    def __init__(self, sets: int, max_tracked: int = 4096):
        if sets < 1 or sets & (sets - 1):
            raise ValueError("sets must be a positive power of two")
        if max_tracked < 1:
            raise ValueError("max_tracked must be positive")
        self._set_mask = sets - 1
        self._set_shift = sets.bit_length() - 1
        self._max_tracked = max_tracked
        self._stacks: Dict[int, List[int]] = {}
        self.counts: Dict[int, int] = {}
        self.cold_count = 0
        self.accesses = 0

    def record(self, line: int) -> Optional[int]:
        """Record one access; return its reuse distance (None if cold).

        Distances beyond ``max_tracked`` are reported (and counted) as
        cold/infinite.
        """
        self.accesses += 1
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        stack = self._stacks.get(set_idx)
        if stack is None:
            stack = []
            self._stacks[set_idx] = stack
        try:
            depth = stack.index(tag)
        except ValueError:
            depth = -1
        if depth < 0 or depth >= self._max_tracked:
            if depth >= 0:
                del stack[depth]
            stack.insert(0, tag)
            if len(stack) > self._max_tracked:
                stack.pop()
            self.cold_count += 1
            return None
        del stack[depth]
        stack.insert(0, tag)
        self.counts[depth] = self.counts.get(depth, 0) + 1
        return depth

    def record_many(self, lines) -> None:
        """Record a whole iterable of line addresses."""
        for line in lines:
            self.record(line)

    def histogram(self, include_cold: bool = True) -> ReuseDistanceHistogram:
        """Empirical reuse-distance histogram of everything recorded.

        Args:
            include_cold: Whether cold/deep accesses contribute to the
                infinity bucket.  Steady-state analyses of long traces
                usually want True (streaming mass matters); short
                warm-up-dominated traces may want False.
        """
        cold = self.cold_count if include_cold else 0
        if not self.counts and cold == 0:
            raise ValueError("no accesses recorded")
        return ReuseDistanceHistogram.from_counts(
            {d: float(c) for d, c in self.counts.items()}, inf_count=float(cold)
        )

    def reset(self) -> None:
        """Clear counts but keep the stacks (useful after warm-up)."""
        self.counts.clear()
        self.cold_count = 0
        self.accesses = 0


class GlobalStackProfiler:
    """Whole-trace stack-distance profiler (distinct lines in between)."""

    def __init__(self, max_tracked: int = 65536):
        if max_tracked < 1:
            raise ValueError("max_tracked must be positive")
        self._max_tracked = max_tracked
        self._stack: List[int] = []
        self.counts: Dict[int, int] = {}
        self.cold_count = 0
        self.accesses = 0

    def record(self, line: int) -> Optional[int]:
        """Record one access; return its stack distance (None if cold)."""
        self.accesses += 1
        stack = self._stack
        try:
            depth = stack.index(line)
        except ValueError:
            depth = -1
        if depth < 0 or depth >= self._max_tracked:
            if depth >= 0:
                del stack[depth]
            stack.insert(0, line)
            if len(stack) > self._max_tracked:
                stack.pop()
            self.cold_count += 1
            return None
        del stack[depth]
        stack.insert(0, line)
        self.counts[depth] = self.counts.get(depth, 0) + 1
        return depth

    def record_many(self, lines) -> None:
        for line in lines:
            self.record(line)

    def histogram(self, include_cold: bool = True) -> ReuseDistanceHistogram:
        """Empirical stack-distance histogram of everything recorded."""
        cold = self.cold_count if include_cold else 0
        if not self.counts and cold == 0:
            raise ValueError("no accesses recorded")
        return ReuseDistanceHistogram.from_counts(
            {d: float(c) for d, c in self.counts.items()}, inf_count=float(cold)
        )
