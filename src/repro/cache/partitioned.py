"""Way-partitioned shared cache.

The paper's performance model builds on Xu et al. [11], which uses the
same reuse-distance machinery to predict the impact of *cache
partitioning*.  This module provides the hardware substrate for that
use case: a set-associative cache whose ways are statically divided
among owners, each partition running private LRU.  With a partition in
place there is no inter-process contention — each process's MPA is
simply its histogram tail at its allocation (Eq. 2), which is what
makes partitioning predictable and the comparison against free-for-all
LRU sharing interesting.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.cache.stats import CacheStats
from repro.config import CacheGeometry
from repro.errors import ConfigurationError


class WayPartitionedCache:
    """Set-associative cache with static per-owner way quotas.

    Args:
        geometry: Cache geometry; allocations must sum to at most
            ``geometry.ways``.
        allocations: ``owner -> ways`` quota.  Owners absent from the
            mapping may not access the cache.

    Each (set, owner) pair keeps an LRU list over the owner's private
    ways, so one owner's behaviour can never evict another's lines.
    """

    def __init__(self, geometry: CacheGeometry, allocations: Mapping[int, int]):
        if not allocations:
            raise ConfigurationError("need at least one owner allocation")
        for owner, quota in allocations.items():
            if quota < 1:
                raise ConfigurationError(
                    f"owner {owner} allocation must be >= 1 way, got {quota}"
                )
        total = sum(allocations.values())
        if total > geometry.ways:
            raise ConfigurationError(
                f"allocations sum to {total} ways, cache has {geometry.ways}"
            )
        self.geometry = geometry
        self.allocations = dict(allocations)
        self.stats = CacheStats()
        self._set_mask = geometry.sets - 1
        self._set_shift = geometry.sets.bit_length() - 1
        # Per (owner, set): list of tags in MRU-first order, length
        # capped at the owner's quota.
        self._stacks: Dict[int, List[List[int]]] = {
            owner: [[] for _ in range(geometry.sets)] for owner in allocations
        }

    def access(self, line: int, owner: int) -> bool:
        """Access ``line`` within ``owner``'s partition; True on hit."""
        stacks = self._stacks.get(owner)
        if stacks is None:
            raise ConfigurationError(f"owner {owner} has no partition")
        set_idx = line & self._set_mask
        tag = line >> self._set_shift
        stack = stacks[set_idx]
        record = self.stats.owner(owner)
        record.accesses += 1
        try:
            index = stack.index(tag)
        except ValueError:
            index = -1
        if index >= 0:
            record.hits += 1
            del stack[index]
            stack.insert(0, tag)
            return True
        record.misses += 1
        record.fills += 1
        stack.insert(0, tag)
        if len(stack) > self.allocations[owner]:
            stack.pop()
            record.evictions_suffered += 1
        return False

    def occupancy_ways(self, owner: int) -> float:
        """Average ways per set currently used by ``owner``."""
        stacks = self._stacks.get(owner)
        if stacks is None:
            return 0.0
        return sum(len(stack) for stack in stacks) / self.geometry.sets

    def resident_lines(self, owner: Optional[int] = None) -> int:
        if owner is not None:
            stacks = self._stacks.get(owner, [])
            return sum(len(stack) for stack in stacks)
        return sum(
            len(stack) for stacks in self._stacks.values() for stack in stacks
        )
