"""Counters describing cache behaviour, per owner and in aggregate.

An *owner* is an integer identifying the process that issued an access;
the shared-cache experiments of the paper need per-process hit/miss and
occupancy statistics to measure each process's effective cache size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class OwnerStats:
    """Access statistics for one owner (process) of a cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    #: Lines of this owner evicted by anyone (including itself).
    evictions_suffered: int = 0
    #: Evictions this owner's fills inflicted on *other* owners.
    evictions_inflicted: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (MPA); 0.0 before any access."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Hits per access; 0.0 before any access."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def snapshot(self) -> "OwnerStats":
        """Return an independent copy of the current counters."""
        return OwnerStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            fills=self.fills,
            evictions_suffered=self.evictions_suffered,
            evictions_inflicted=self.evictions_inflicted,
        )

    def delta_since(self, earlier: "OwnerStats") -> "OwnerStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return OwnerStats(
            accesses=self.accesses - earlier.accesses,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            fills=self.fills - earlier.fills,
            evictions_suffered=self.evictions_suffered - earlier.evictions_suffered,
            evictions_inflicted=self.evictions_inflicted - earlier.evictions_inflicted,
        )


@dataclass
class CacheStats:
    """Aggregate and per-owner statistics of one cache instance."""

    by_owner: Dict[int, OwnerStats] = field(default_factory=dict)

    def owner(self, owner: int) -> OwnerStats:
        """Fetch (creating if needed) the stats record for ``owner``."""
        record = self.by_owner.get(owner)
        if record is None:
            record = OwnerStats()
            self.by_owner[owner] = record
        return record

    @property
    def accesses(self) -> int:
        return sum(s.accesses for s in self.by_owner.values())

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.by_owner.values())

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.by_owner.values())

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        if total == 0:
            return 0.0
        return self.misses / total

    def reset(self) -> None:
        """Zero every counter while keeping owner records alive."""
        for owner in self.by_owner:
            self.by_owner[owner] = OwnerStats()
