"""Two-level cache hierarchy: private L1s in front of a shared L2.

The paper's model reasons about the shared last-level (L2) cache only;
L1 references appear solely as an HPC event rate in the power model.
The machine simulator therefore drives the L2 directly.  This module
still provides a faithful hierarchy for completeness: it is used by
the hierarchy example and by tests that check L1 filtering behaviour
(inclusive fill, L1 hit shielding the L2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cache.replacement import LruPolicy
from repro.cache.set_associative import SetAssociativeCache
from repro.config import CacheGeometry
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HierarchyAccess:
    """Outcome of one hierarchy access."""

    l1_hit: bool
    l2_hit: bool

    @property
    def level(self) -> str:
        """Where the access was served: ``l1``, ``l2`` or ``memory``."""
        if self.l1_hit:
            return "l1"
        if self.l2_hit:
            return "l2"
        return "memory"


class CacheHierarchy:
    """Per-core private L1 caches sharing one L2.

    Args:
        l1_geometry: Geometry of each private L1.
        l2_geometry: Geometry of the shared L2.
        cores: Number of cores (one L1 each).

    The hierarchy is non-inclusive non-exclusive: L1 misses always fill
    both levels; L2 evictions do not back-invalidate the L1 (as in the
    paper's Core 2 era machines, where L2 was much larger than L1 and
    the distinction is negligible for miss statistics).
    """

    def __init__(self, l1_geometry: CacheGeometry, l2_geometry: CacheGeometry, cores: int):
        if cores < 1:
            raise ConfigurationError("cores must be positive")
        if l1_geometry.capacity_bytes >= l2_geometry.capacity_bytes:
            raise ConfigurationError("L1 must be smaller than L2")
        self.cores = cores
        self.l1: List[SetAssociativeCache] = [
            SetAssociativeCache(l1_geometry, LruPolicy()) for _ in range(cores)
        ]
        self.l2 = SetAssociativeCache(l2_geometry, LruPolicy())

    def access(self, core: int, line: int, owner: int = 0) -> HierarchyAccess:
        """Access ``line`` from ``core``; fill on misses."""
        if not 0 <= core < self.cores:
            raise ConfigurationError(f"core {core} out of range 0..{self.cores - 1}")
        l1_hit = self.l1[core].access(line, owner)
        if l1_hit:
            return HierarchyAccess(l1_hit=True, l2_hit=False)
        l2_hit = self.l2.access(line, owner)
        return HierarchyAccess(l1_hit=False, l2_hit=l2_hit)

    def miss_rates(self, owner: int) -> Dict[str, float]:
        """Per-level miss rates for one owner across all cores."""
        l1_accesses = sum(c.stats.owner(owner).accesses for c in self.l1)
        l1_misses = sum(c.stats.owner(owner).misses for c in self.l1)
        l2_stats = self.l2.stats.owner(owner)
        return {
            "l1": (l1_misses / l1_accesses) if l1_accesses else 0.0,
            "l2": l2_stats.miss_rate,
        }

    def flush(self) -> None:
        """Flush every cache in the hierarchy."""
        for cache in self.l1:
            cache.flush()
        self.l2.flush()
