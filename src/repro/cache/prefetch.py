"""Hardware prefetcher models.

The paper *disables* prefetching and argues (Section 3.1) that it buys
only ~3.25 % on average for SPEC CPU2000 under constrained memory
bandwidth.  These models exist so the harness can reproduce that
ablation (``bench_prefetch_ablation``): the machine simulator can run
with a prefetcher attached and report the throughput delta.

A prefetcher observes demand accesses and inserts predicted lines into
the cache under the demanding owner.  Prefetch fills are counted
separately so useless prefetches can be quantified.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List

from repro.cache.set_associative import SetAssociativeCache


@dataclass
class PrefetchStats:
    """Effectiveness counters for one prefetcher instance."""

    issued: int = 0
    #: Prefetches dropped because the line was already resident.
    redundant: int = 0
    #: Demand accesses that hit on a line brought in by a prefetch.
    useful: int = 0

    @property
    def accuracy(self) -> float:
        """Useful prefetches per issued prefetch (0.0 if none issued)."""
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class Prefetcher(ABC):
    """Interface: observe a demand access, optionally prefetch lines."""

    def __init__(self) -> None:
        self.stats = PrefetchStats()
        #: Lines currently resident because of a prefetch (not yet
        #: demanded); used to attribute usefulness.
        self._pending: Dict[int, bool] = {}

    @abstractmethod
    def predict(self, owner: int, line: int, hit: bool) -> List[int]:
        """Lines to prefetch after a demand access to ``line``."""

    def on_access(
        self, cache: SetAssociativeCache, owner: int, line: int, hit: bool
    ) -> int:
        """Process one demand access; return number of lines prefetched."""
        if hit and self._pending.pop(line, False):
            self.stats.useful += 1
        issued = 0
        for target in self.predict(owner, line, hit):
            if target < 0:
                continue
            if cache.contains(target):
                self.stats.redundant += 1
                continue
            cache.access(target, owner)
            # Remove the prefetch's own access from demand statistics:
            # it was not issued by the program.
            record = cache.stats.owner(owner)
            record.accesses -= 1
            record.misses -= 1
            self._pending[target] = True
            self.stats.issued += 1
            issued += 1
        return issued


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential lines on every miss."""

    def __init__(self, degree: int = 1):
        super().__init__()
        if degree < 1:
            raise ValueError("degree must be positive")
        self.degree = degree

    def predict(self, owner: int, line: int, hit: bool) -> List[int]:
        if hit:
            return []
        return [line + k for k in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Per-owner stride detector with a confidence counter.

    Tracks the last address and stride per owner; after two consecutive
    accesses with the same stride it prefetches ``degree`` lines ahead
    along that stride.
    """

    def __init__(self, degree: int = 2):
        super().__init__()
        if degree < 1:
            raise ValueError("degree must be positive")
        self.degree = degree
        self._last: Dict[int, int] = {}
        self._stride: Dict[int, int] = {}
        self._confidence: Dict[int, int] = {}

    def predict(self, owner: int, line: int, hit: bool) -> List[int]:
        last = self._last.get(owner)
        self._last[owner] = line
        if last is None:
            return []
        stride = line - last
        if stride == 0:
            return []
        if stride == self._stride.get(owner):
            self._confidence[owner] = self._confidence.get(owner, 0) + 1
        else:
            self._stride[owner] = stride
            self._confidence[owner] = 0
        if self._confidence.get(owner, 0) < 1:
            return []
        return [line + stride * k for k in range(1, self.degree + 1)]
