"""repro — reproduction of Chen et al., *Performance and Power Modeling
in a Multi-Programmed Multi-Core Environment* (DAC 2010).

The package is organised as:

- :mod:`repro.core` — the paper's contribution: reuse-distance-based
  performance prediction, MVLR power modeling, and the combined model
  for power-aware assignment.
- :mod:`repro.cache` — set-associative cache simulator substrate.
- :mod:`repro.workloads` — synthetic SPEC-CPU2000-like benchmarks,
  the stressmark, and the power-training micro-benchmark.
- :mod:`repro.machine` — closed-loop multicore machine simulator with
  hardware-performance-counter emulation.
- :mod:`repro.power` — hidden reference power functions and the
  simulated measurement chain (current clamp + DAQ).
- :mod:`repro.profiling` — automated stressmark-based profiling.
- :mod:`repro.analysis` — error metrics and table rendering.
- :mod:`repro.experiments` — one driver per paper table/figure.
- :mod:`repro.api` — one-stop facade (re-exported here): the
  :func:`profile_suite` → :func:`predict_mix` / :func:`train_power` →
  :func:`solve_assignment` pipeline with frozen result bundles.
- :mod:`repro.fleet` — heterogeneous fleet assignment: exhaustive
  oracle plus seeded greedy/annealing heuristics over a
  :class:`FleetSpec` inventory.
- :mod:`repro.obs` — opt-in tracing + metrics over the whole pipeline.
- :mod:`repro.serve` — asyncio HTTP prediction service with a model
  registry, dynamic micro-batching and backpressure.

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

from repro.api import (
    AssignmentPick,
    AssignmentRequest,
    FleetAssignment,
    FleetSpec,
    MachineAssignment,
    MachineGroup,
    MixPrediction,
    PowerTrainingResult,
    ProfileSuiteResult,
    load_fleet_assignment,
    load_pick,
    load_prediction,
    load_suite,
    pick_assignment,
    predict_mix,
    predict_mixes,
    profile_suite,
    solve_assignment,
    train_power,
)
from repro.config import CacheGeometry, SimulationScale
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    ModelNotFittedError,
    ProfilingError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "SimulationScale",
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "ProfilingError",
    "ModelNotFittedError",
    "SimulationError",
    "ProfileSuiteResult",
    "MixPrediction",
    "PowerTrainingResult",
    "AssignmentPick",
    "AssignmentRequest",
    "FleetAssignment",
    "FleetSpec",
    "MachineAssignment",
    "MachineGroup",
    "profile_suite",
    "predict_mix",
    "predict_mixes",
    "train_power",
    "pick_assignment",
    "solve_assignment",
    "load_suite",
    "load_prediction",
    "load_pick",
    "load_fleet_assignment",
    "__version__",
]
