"""Power-aware process-to-core assignment (the paper's use case).

With the combined model able to price any tentative mapping from
profiles alone, assignment becomes a search problem.  Two searchers
are provided:

- :func:`exhaustive_assignment` — enumerate every mapping of the
  given processes onto cores (feasible for the paper's 2–4 core
  machines; equilibrium solutions are cached across mappings).
- :func:`greedy_assignment` — place processes one at a time, each on
  the core minimising the incremental power estimate (the Figure 1
  runtime flow), in O(k · N) model queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.combined import Assignment, CombinedModel
from repro.errors import AssignmentTooLargeError, ConfigurationError
from repro.obs import get_observer

#: Objective functions mapping (power_watts, throughput_ips) -> score
#: to be *minimised*.
OBJECTIVES: Dict[str, Callable[[float, float], float]] = {
    "power": lambda watts, ips: watts,
    "throughput": lambda watts, ips: -ips,
    "energy_per_instruction": lambda watts, ips: watts / ips if ips > 0 else float("inf"),
}

#: Default cap on the raw enumeration size of an exhaustive search.
#: ``enumerate_candidates`` walks ``num_cores ** num_processes``
#: placements even when canonical dedup keeps the scored set smaller,
#: so the guard bounds the enumeration itself.
DEFAULT_MAX_CANDIDATES = 250_000


def candidate_bound(num_cores: int, num_processes: int) -> int:
    """Raw enumeration size of an exhaustive search (before dedup)."""
    return num_cores ** num_processes


def format_candidate_count(count: int) -> str:
    """Human-readable placement count; huge bounds print as ~10^N.

    Fleet-scale bounds overflow float and exceed CPython's int→str
    digit limit, so the decimal exponent comes from the bit length.
    """
    if count < 10**15:
        return str(count)
    exponent = int((count.bit_length() - 1) * 0.30102999566398120)
    return f"~10^{exponent}"


def check_enumeration_size(
    num_cores: int,
    num_processes: int,
    max_candidates: Optional[int] = None,
) -> int:
    """Guard an exhaustive enumeration against combinatorial blow-up.

    Returns the raw placement count when it is within ``max_candidates``
    (default :data:`DEFAULT_MAX_CANDIDATES`); raises
    :class:`~repro.errors.AssignmentTooLargeError` otherwise, *before*
    any candidate is generated or scored.
    """
    cap = DEFAULT_MAX_CANDIDATES if max_candidates is None else int(max_candidates)
    if cap < 1:
        raise ConfigurationError("max_candidates must be >= 1")
    count = candidate_bound(num_cores, num_processes)
    if count > cap:
        raise AssignmentTooLargeError(
            f"exhaustive enumeration of {num_processes} processes over "
            f"{num_cores} cores is {format_candidate_count(count)} "
            f"placements, above the cap of "
            f"{cap}; raise max_candidates if you really want this, or use "
            f'the scalable searchers (greedy=True here, or solver="greedy"'
            f' / solver="anneal" via repro.fleet)',
            candidate_count=count,
            max_candidates=cap,
        )
    return count


@dataclass(frozen=True)
class AssignmentDecision:
    """Outcome of an assignment search."""

    assignment: Dict[int, Tuple[str, ...]]
    predicted_watts: float
    predicted_ips: float
    objective: str
    score: float
    candidates_evaluated: int

    def to_dict(self) -> dict:
        """Plain-JSON representation (see :mod:`repro.io`)."""
        from repro.io import assignment_decision_to_dict

        return assignment_decision_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AssignmentDecision":
        from repro.io import assignment_decision_from_dict

        return assignment_decision_from_dict(data)


def score_assignment(
    model: CombinedModel, assignment: Assignment, objective: str
) -> Tuple[float, float, float]:
    """``(score, watts, ips)`` of one candidate under an objective.

    Shared by both searchers here and by the :mod:`repro.parallel`
    chunk evaluator, so every path prices a candidate identically.
    """
    watts = model.estimate_assignment_power(assignment).watts
    ips = model.estimate_assignment_throughput(assignment)
    return OBJECTIVES[objective](watts, ips), watts, ips


def _canonical(assignment: Mapping[int, Sequence[str]]) -> Dict[int, Tuple[str, ...]]:
    return {
        core: tuple(names)
        for core, names in sorted(assignment.items())
        if names
    }


def enumerate_candidates(
    num_cores: int,
    process_names: Sequence[str],
    max_per_core: Optional[int] = None,
) -> Iterator[Dict[int, Tuple[str, ...]]]:
    """Canonical candidate assignments in a deterministic order.

    Every function from processes to cores, canonicalised (idle cores
    dropped) and deduplicated so symmetric placements appear once.
    Both the serial exhaustive searcher and the parallel evaluator in
    :mod:`repro.parallel` consume this stream; sharing it is what
    keeps their candidate indices — and therefore their tie-breaking —
    aligned.
    """
    cores = range(num_cores)
    seen = set()
    for placement in itertools.product(cores, repeat=len(process_names)):
        assignment: Dict[int, List[str]] = {}
        for name, core in zip(process_names, placement):
            assignment.setdefault(core, []).append(name)
        if max_per_core is not None and any(
            len(names) > max_per_core for names in assignment.values()
        ):
            continue
        canonical = _canonical(assignment)
        key = tuple(
            sorted((core, tuple(sorted(names))) for core, names in canonical.items())
        )
        if key in seen:
            continue
        seen.add(key)
        yield canonical


def exhaustive_assignment(
    model: CombinedModel,
    process_names: Sequence[str],
    objective: str = "power",
    max_per_core: Optional[int] = None,
    max_candidates: Optional[int] = None,
) -> AssignmentDecision:
    """Best mapping of the processes onto the machine's cores.

    Every function from processes to cores is evaluated (symmetric
    duplicates are pruned via canonicalisation).  With k processes and
    N cores that is at most N^k model queries, heavily amortised by
    the combined model's equilibrium cache.

    Args:
        model: A fitted combined model for the target machine.
        process_names: Processes to place (duplicates allowed).
        objective: One of ``power``, ``throughput``,
            ``energy_per_instruction``.
        max_per_core: Optional cap on processes per core.
        max_candidates: Cap on the raw N^k enumeration size (default
            :data:`DEFAULT_MAX_CANDIDATES`); exceeding it raises
            :class:`~repro.errors.AssignmentTooLargeError` up front
            instead of hanging.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
        )
    if not process_names:
        raise ConfigurationError("need at least one process to assign")
    check_enumeration_size(
        model.topology.num_cores, len(process_names), max_candidates
    )
    observer = get_observer()
    if not observer.enabled:
        return _exhaustive_impl(model, process_names, objective, max_per_core)
    with observer.span(
        "assign.exhaustive",
        processes=len(process_names),
        objective=objective,
    ) as span:
        decision = _exhaustive_impl(model, process_names, objective, max_per_core)
        span.annotate(
            candidates=decision.candidates_evaluated, score=decision.score
        )
        observer.counter("assign.searches").inc()
        observer.counter("assign.candidates").inc(decision.candidates_evaluated)
        return decision


def _exhaustive_impl(
    model: CombinedModel,
    process_names: Sequence[str],
    objective: str,
    max_per_core: Optional[int],
) -> AssignmentDecision:
    best: Optional[AssignmentDecision] = None
    evaluated = 0
    for canonical in enumerate_candidates(
        model.topology.num_cores, process_names, max_per_core
    ):
        score, watts, ips = score_assignment(model, canonical, objective)
        evaluated += 1
        if best is None or score < best.score:
            best = AssignmentDecision(
                assignment=canonical,
                predicted_watts=watts,
                predicted_ips=ips,
                objective=objective,
                score=score,
                candidates_evaluated=evaluated,
            )
    if best is None:
        raise ConfigurationError("no feasible assignment under the given constraints")
    return AssignmentDecision(
        assignment=best.assignment,
        predicted_watts=best.predicted_watts,
        predicted_ips=best.predicted_ips,
        objective=best.objective,
        score=best.score,
        candidates_evaluated=evaluated,
    )


def greedy_assignment(
    model: CombinedModel,
    process_names: Sequence[str],
    objective: str = "power",
    max_per_core: Optional[int] = None,
) -> AssignmentDecision:
    """Greedy one-at-a-time placement using incremental estimates.

    Mirrors the runtime flow of the paper's Figure 1: each arriving
    process is assigned to the core whose incremental estimate is
    best, given the placements already made.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
        )
    if not process_names:
        raise ConfigurationError("need at least one process to assign")
    observer = get_observer()
    if not observer.enabled:
        return _greedy_impl(model, process_names, objective, max_per_core)
    with observer.span(
        "assign.greedy", processes=len(process_names), objective=objective
    ) as span:
        decision = _greedy_impl(model, process_names, objective, max_per_core)
        span.annotate(
            candidates=decision.candidates_evaluated, score=decision.score
        )
        observer.counter("assign.searches").inc()
        observer.counter("assign.candidates").inc(decision.candidates_evaluated)
        return decision


def _greedy_impl(
    model: CombinedModel,
    process_names: Sequence[str],
    objective: str,
    max_per_core: Optional[int],
) -> AssignmentDecision:
    assignment: Dict[int, List[str]] = {}
    evaluated = 0
    for name in process_names:
        best_core = None
        best_score = float("inf")
        for core in range(model.topology.num_cores):
            if max_per_core is not None and len(assignment.get(core, [])) >= max_per_core:
                continue
            trial = {c: list(v) for c, v in assignment.items()}
            trial.setdefault(core, []).append(name)
            score, _, _ = score_assignment(model, _canonical(trial), objective)
            evaluated += 1
            if score < best_score:
                best_score = score
                best_core = core
        if best_core is None:
            raise ConfigurationError("no feasible core for process under constraints")
        assignment.setdefault(best_core, []).append(name)
    canonical = _canonical(assignment)
    score, watts, ips = score_assignment(model, canonical, objective)
    return AssignmentDecision(
        assignment=canonical,
        predicted_watts=watts,
        predicted_ips=ips,
        objective=objective,
        score=score,
        candidates_evaluated=evaluated,
    )
