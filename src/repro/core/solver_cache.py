"""Shared, bounded cache for equilibrium solutions.

Every prediction — combined-model power estimates, throughput
estimates, and the assignment searchers that sit on top of them —
funnels through the same ``solve_equilibrium`` hot path, and an
assignment search revisits the same co-run combinations hundreds of
times.  :class:`EquilibriumCache` memoises those solves behind a
bounded LRU with hit/miss/eviction counters, and remembers each
process's most recent equilibrium size so Newton can warm-start from
the solution of a *neighbouring* co-run (same processes, different
partners) instead of the cold proportional-demand guess.

One cache instance can be shared across
:class:`~repro.core.combined.CombinedModel` instances and
:class:`~repro.core.performance_model.PerformanceModel` instances, as
long as they are built over the same registered profiles — the cache
keys carry the cache geometry and solver strategy but deliberately
not the profile contents.  Replacing a registered feature vector must
therefore invalidate the cache (``PerformanceModel.register`` does).

The cache is guarded by a lock so a future batched/async serving
layer can share it across worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import get_observer


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of an :class:`EquilibriumCache`'s counters."""

    hits: int
    misses: int
    evictions: int
    warm_starts: int
    entries: int
    max_entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before the first lookup."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter increments between two snapshots of one cache.

        ``entries``/``max_entries`` are states, not counters, and keep
        their current values.  Used by the batch engine to ship only
        the work one chunk did.
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            warm_starts=self.warm_starts - earlier.warm_starts,
            entries=self.entries,
            max_entries=self.max_entries,
        )

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits ({self.hit_rate * 100:.1f} %), "
            f"{self.evictions} evictions, {self.warm_starts} warm starts, "
            f"{self.entries}/{self.max_entries} entries"
        )


class EquilibriumCache:
    """Bounded LRU cache of equilibrium solutions with telemetry.

    Args:
        max_entries: Capacity bound.  Beyond it the least recently
            used entry is evicted.  ``0`` disables storage entirely
            (every lookup misses) — useful for honest benchmarking.
        warm_start: When ``False``, :meth:`suggest_initial` always
            returns ``None`` so every cache miss is solved from the
            cold proportional-demand guess.  Cold solves depend only
            on the co-run itself — not on which solves happened
            before — which is what makes the :mod:`repro.parallel`
            batch engine bit-identical between serial and parallel
            execution.
    """

    def __init__(self, max_entries: int = 4096, warm_start: bool = True):
        if max_entries < 0:
            raise ConfigurationError("max_entries must be non-negative")
        self.max_entries = max_entries
        self.warm_start = warm_start
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._last_sizes: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._warm_starts = 0
        self._absorbed_documents: set = set()

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Any]:
        """Cached value for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                value = None
            else:
                self._data.move_to_end(key)
                self._hits += 1
        observer = get_observer()
        if observer.enabled:
            name = "solver_cache.misses" if value is None else "solver_cache.hits"
            observer.counter(name).inc()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting LRU entries."""
        if self.max_entries == 0:
            return
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            observer = get_observer()
            if observer.enabled:
                observer.counter("solver_cache.evictions").inc(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop all entries and warm-start memory (counters survive)."""
        with self._lock:
            self._data.clear()
            self._last_sizes.clear()

    # ------------------------------------------------------------------
    # Newton warm starts
    # ------------------------------------------------------------------
    def record_sizes(self, names: Sequence[str], sizes: Sequence[float]) -> None:
        """Remember each process's most recent equilibrium size."""
        with self._lock:
            for name, size in zip(names, sizes):
                self._last_sizes[name] = float(size)

    def suggest_initial(
        self, names: Sequence[str], total_ways: int
    ) -> Optional[List[float]]:
        """Warm-start sizes from cached neighbour solutions.

        Returns the processes' most recent equilibrium sizes rescaled
        to the Eq. 1 capacity, or ``None`` when any process has never
        been solved (the solver's default guess is then as good) or
        warm starting is disabled.
        """
        if not self.warm_start:
            return None
        with self._lock:
            try:
                sizes = [self._last_sizes[name] for name in names]
            except KeyError:
                return None
            total = sum(sizes)
            if total <= 0.0:
                return None
            self._warm_starts += 1
            scale = total_ways / total
            suggestion = [s * scale for s in sizes]
        observer = get_observer()
        if observer.enabled:
            observer.counter("solver_cache.warm_starts").inc()
        return suggestion

    # ------------------------------------------------------------------
    # Batch-engine merge (repro.parallel)
    # ------------------------------------------------------------------
    def export_entries(self) -> List[Tuple[Hashable, Any]]:
        """All ``(key, value)`` pairs, least recently used first.

        Worker processes export their per-worker caches with this so
        the parent can absorb the solutions after a batch.
        """
        with self._lock:
            return list(self._data.items())

    def absorb(
        self,
        entries: Optional[Sequence[Tuple[Hashable, Any]]] = None,
        stats: Optional[CacheStats] = None,
        document_id: Optional[Hashable] = None,
    ) -> None:
        """Merge a worker cache's entries and/or telemetry into this one.

        ``entries`` are inserted through :meth:`put` (LRU/eviction
        rules apply); ``stats`` counters are *added* to this cache's,
        so the parent's telemetry reflects the whole fleet's work.

        ``document_id`` makes the merge idempotent: each distinct id is
        absorbed exactly once, so a worker chunk replayed after a pool
        failure (same id) cannot double-count its counter deltas or
        re-insert its entries (which would churn LRU order and inflate
        eviction counts).  ``None`` keeps the unconditional merge for
        callers that manage their own delivery semantics.
        """
        if document_id is not None:
            with self._lock:
                if document_id in self._absorbed_documents:
                    return
                self._absorbed_documents.add(document_id)
        if entries is not None:
            for key, value in entries:
                self.put(key, value)
        if stats is not None:
            with self._lock:
                self._hits += stats.hits
                self._misses += stats.misses
                self._evictions += stats.evictions
                self._warm_starts += stats.warm_starts

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                warm_starts=self._warm_starts,
                entries=len(self._data),
                max_entries=self.max_entries,
            )

    def __repr__(self) -> str:
        return f"EquilibriumCache({self.stats})"
