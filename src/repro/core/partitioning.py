"""Model-driven cache-partitioning (the Xu et al. [11] use case).

With reuse-distance histograms in hand, the expected behaviour of any
static way partition is closed-form: a process allocated ``s`` ways
misses with probability ``MPA(s)`` (Eq. 2) and runs at
``SPI = alpha * MPA(s) + beta`` (Eq. 3).  Finding the best partition is
then a small discrete optimisation, solved exactly here by dynamic
programming over ways.

Three objectives are provided:

- ``misses``  — minimise total misses per second,
- ``throughput`` — maximise total instructions per second,
- ``weighted_speedup`` — maximise the sum of per-process speedups
  relative to owning the whole cache (a fairness-flavoured metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.feature import FeatureVector
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PartitionPlan:
    """An allocation of cache ways to processes, with predictions."""

    names: Tuple[str, ...]
    allocation: Tuple[int, ...]
    predicted_mpas: Tuple[float, ...]
    predicted_spis: Tuple[float, ...]
    objective: str
    score: float

    def as_dict(self) -> Dict[str, int]:
        return dict(zip(self.names, self.allocation))


def _per_way_cost(
    feature: FeatureVector, ways: int, objective: str
) -> List[float]:
    """cost(s) for s = 1..ways under the chosen objective (minimised)."""
    costs = []
    for s in range(1, ways + 1):
        mpa = feature.histogram.mpa(s)
        spi = feature.spi_model.spi(mpa)
        if objective == "misses":
            # Misses per second at that operating point.
            costs.append(feature.api * mpa / spi)
        elif objective == "throughput":
            costs.append(-1.0 / spi)
        elif objective == "weighted_speedup":
            best_spi = feature.spi_model.spi(feature.histogram.mpa(ways))
            costs.append(-best_spi / spi)
        else:
            raise ConfigurationError(
                f"unknown objective {objective!r}; choose misses, throughput "
                "or weighted_speedup"
            )
    return costs


def optimal_partition(
    features: Sequence[FeatureVector],
    ways: int,
    objective: str = "throughput",
) -> PartitionPlan:
    """Exact best static partition by dynamic programming.

    O(k * ways^2) over k processes; every process receives at least
    one way.

    Args:
        features: Feature vectors of the co-scheduled processes.
        ways: Total ways of the shared cache.
        objective: See module docstring.
    """
    k = len(features)
    if k == 0:
        raise ConfigurationError("need at least one process")
    if ways < k:
        raise ConfigurationError(f"{k} processes cannot split {ways} ways")
    costs = [_per_way_cost(feature, ways, objective) for feature in features]

    # dp[i][w]: best total cost assigning w ways among first i processes.
    infinity = float("inf")
    dp = [[infinity] * (ways + 1) for _ in range(k + 1)]
    choice = [[0] * (ways + 1) for _ in range(k + 1)]
    dp[0][0] = 0.0
    for i in range(1, k + 1):
        remaining = k - i  # processes still to place (>=1 way each)
        for w in range(i, ways - remaining + 1):
            best = infinity
            best_s = 0
            for s in range(1, w - (i - 1) + 1):
                prev = dp[i - 1][w - s]
                if prev == infinity:
                    continue
                candidate = prev + costs[i - 1][s - 1]
                if candidate < best:
                    best = candidate
                    best_s = s
            dp[i][w] = best
            choice[i][w] = best_s

    if dp[k][ways] == infinity:
        raise ConfigurationError("no feasible partition found")
    allocation: List[int] = []
    w = ways
    for i in range(k, 0, -1):
        s = choice[i][w]
        allocation.append(s)
        w -= s
    allocation.reverse()

    mpas = tuple(
        feature.histogram.mpa(s) for feature, s in zip(features, allocation)
    )
    spis = tuple(
        feature.spi_model.spi(mpa) for feature, mpa in zip(features, mpas)
    )
    return PartitionPlan(
        names=tuple(feature.name for feature in features),
        allocation=tuple(allocation),
        predicted_mpas=mpas,
        predicted_spis=spis,
        objective=objective,
        score=dp[k][ways],
    )


def even_partition(
    features: Sequence[FeatureVector], ways: int
) -> PartitionPlan:
    """Baseline: split the ways as evenly as possible."""
    k = len(features)
    if k == 0:
        raise ConfigurationError("need at least one process")
    if ways < k:
        raise ConfigurationError(f"{k} processes cannot split {ways} ways")
    base = ways // k
    extras = ways % k
    allocation = tuple(base + (1 if i < extras else 0) for i in range(k))
    mpas = tuple(
        feature.histogram.mpa(s) for feature, s in zip(features, allocation)
    )
    spis = tuple(
        feature.spi_model.spi(mpa) for feature, mpa in zip(features, mpas)
    )
    return PartitionPlan(
        names=tuple(feature.name for feature in features),
        allocation=allocation,
        predicted_mpas=mpas,
        predicted_spis=spis,
        objective="even",
        score=float("nan"),
    )
