"""Process feature and profile vectors.

Section 3.4: profiling a process yields its *feature vector* — the
reuse-distance histogram, the L2 access-per-instruction rate (API),
and the Eq. 3 constants α, β.  That is everything the performance
model needs.

Section 5 additionally records a *profiling vector*
``PF_i = (P_alone, L1RPI, L2RPI, BRPI, FPPI)`` per process, which is
everything the combined model needs to estimate power for tentative
assignments without running them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.histogram import ReuseDistanceHistogram
from repro.core.occupancy import OccupancyModel
from repro.core.spi import SpiModel
from repro.errors import ConfigurationError
from repro.workloads.spec import SyntheticBenchmark


@dataclass(frozen=True)
class FeatureVector:
    """Performance-model inputs for one process (Section 3.4)."""

    name: str
    histogram: ReuseDistanceHistogram
    api: float
    spi_model: SpiModel

    def __post_init__(self) -> None:
        if self.api <= 0:
            raise ConfigurationError("api must be positive")

    @property
    def alpha(self) -> float:
        return self.spi_model.alpha

    @property
    def beta(self) -> float:
        return self.spi_model.beta

    def occupancy_model(self, max_ways: int) -> OccupancyModel:
        """Growth model of this process on an ``max_ways``-way cache."""
        return OccupancyModel(self.histogram, max_ways)

    def with_frequency_ratio(self, ratio: float) -> "FeatureVector":
        """Rescale the Eq. 3 constants to a different core clock.

        α and β are times (seconds) per instruction, so a core running
        at ``ratio`` times the profiled clock divides both by
        ``ratio``.  The reuse-distance histogram and API are clock
        independent.  This is how one profile covers heterogeneous
        cores.
        """
        if ratio <= 0:
            raise ConfigurationError("ratio must be positive")
        return FeatureVector(
            name=self.name,
            histogram=self.histogram,
            api=self.api,
            spi_model=SpiModel(
                alpha=self.spi_model.alpha / ratio,
                beta=self.spi_model.beta / ratio,
                r_squared=self.spi_model.r_squared,
            ),
        )

    @classmethod
    def oracle(
        cls, benchmark: SyntheticBenchmark, frequency_hz: float
    ) -> "FeatureVector":
        """Ground-truth features straight from a benchmark definition.

        Used by tests and ablations to separate model error from
        profiling error; real deployments use
        :func:`repro.profiling.profiler.profile_process` instead.
        """
        alpha, beta = benchmark.alpha_beta(frequency_hz)
        return cls(
            name=benchmark.name,
            histogram=benchmark.intrinsic_histogram(),
            api=benchmark.api,
            spi_model=SpiModel(alpha=alpha, beta=beta),
        )


@dataclass(frozen=True)
class ProfileVector:
    """Power-side profiling record PF_i for one process (Section 5).

    Attributes:
        name: Process name.
        p_alone: Core power (W) when the process runs alone.
        l1rpi: L1 references per instruction.
        l2rpi: L2 references per instruction.
        brpi: Branches per instruction.
        fppi: FP operations per instruction.
    """

    name: str
    p_alone: float
    l1rpi: float
    l2rpi: float
    brpi: float
    fppi: float

    def __post_init__(self) -> None:
        if self.p_alone < 0:
            raise ConfigurationError("p_alone must be non-negative")
        for field_name in ("l1rpi", "l2rpi", "brpi", "fppi"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")
