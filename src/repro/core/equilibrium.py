"""Steady-state cache-partition solvers (paper Section 3.3).

At equilibrium each process's accesses-per-second must be consistent
with its occupancy: over any recent window of length ``T`` a process
made ``G⁻¹(S_i)`` accesses (the number needed to build its occupancy),
and its throughput is set by its miss rate via Eq. 3:

    APS_i = G_i⁻¹(S_i) / T = API_i / (α_i · MPA_i(S_i) + β_i)   (Eq. 6)

Eliminating ``T`` gives the paper's Eq. 7 ratio conditions, closed by
the capacity constraint ``Σ S_i = A`` (Eq. 1).  Two solvers are
provided:

- :class:`NewtonSolver` — damped Newton–Raphson on the Eq. 7 residual
  system, the method the paper names.  The Jacobian is analytic by
  default — both ``G⁻¹`` and ``MPA`` are tabulated piecewise-linear
  curves, so their derivatives are exact segment slopes — with the
  original finite-difference Jacobian kept as a debug/verify option
  (``jacobian="fd"``).
- :class:`BisectionSolver` — a robust nested fixed-point/bisection
  scheme on the window length ``T``: for a trial ``T`` each process's
  occupancy is the greatest fixed point of ``S = G(T · APS(S))``
  (monotone, so the iteration from above converges), and the total
  occupancy is monotone in ``T``.

Both return identical answers on well-behaved inputs (the solver
ablation benchmark quantifies this); the default strategy tries
Newton and falls back to bisection.  Every result carries a
:class:`SolverTelemetry` record (strategy, iterations, residual norm,
fallback reason) so callers can observe the solve without re-running
it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.occupancy import OccupancyModel
from repro.errors import ConfigurationError, ConvergenceError
from repro.obs import get_observer


@dataclass(frozen=True)
class EquilibriumProcess:
    """Per-process inputs to the equilibrium system.

    Attributes:
        occupancy: Growth model built from the process's histogram.
        mpa: Miss-per-access curve (callable of occupancy in ways).
        api: L2 accesses per instruction.
        alpha: Eq. 3 slope (seconds per instruction per unit MPA).
        beta: Eq. 3 intercept (seconds per instruction).
        mpa_slope: Optional derivative of ``mpa``.  When omitted, the
            solver recovers it from the curve object behind ``mpa``
            (histograms and miss-ratio curves expose ``mpa_slope``) or
            falls back to a local finite difference.
    """

    occupancy: OccupancyModel
    mpa: Callable[[float], float]
    api: float
    alpha: float
    beta: float
    mpa_slope: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        if self.api <= 0:
            raise ConfigurationError("api must be positive")
        if self.alpha < 0 or self.beta <= 0:
            raise ConfigurationError("alpha must be >= 0 and beta > 0")

    def aps(self, size: float) -> float:
        """Accesses per second at occupancy ``size`` (Eq. 6 RHS)."""
        return self.api / (self.alpha * self.mpa(size) + self.beta)


@dataclass(frozen=True)
class SolverTelemetry:
    """Per-solve observability record.

    Attributes:
        strategy: Strategy the caller requested (``newton``,
            ``bisection`` or ``auto``).
        solver: Solver that actually produced the result.
        jacobian: Jacobian mode used by Newton (``analytic`` / ``fd``),
            ``None`` for bisection or uncontended short-circuits.
        iterations: Iterations spent by the producing solver.
        residual_norm: Final Eq. 1 + Eq. 7 residual norm of the
            returned sizes (0 for uncontended short-circuits).
        warm_started: Whether Newton started from a caller-supplied
            initial guess instead of the proportional-demand default.
        fallback_reason: Why ``auto`` fell back to bisection (the
            Newton failure message), ``None`` when no fallback
            happened.
    """

    strategy: str
    solver: str
    jacobian: Optional[str]
    iterations: int
    residual_norm: float
    warm_started: bool = False
    fallback_reason: Optional[str] = None

    def to_dict(self) -> dict:
        """Plain-JSON representation (see :mod:`repro.io`)."""
        from repro.io import telemetry_to_dict

        return telemetry_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SolverTelemetry":
        from repro.io import telemetry_from_dict

        return telemetry_from_dict(data)


@dataclass(frozen=True)
class EquilibriumResult:
    """Solved steady state of co-running, cache-sharing processes."""

    sizes: Tuple[float, ...]
    mpas: Tuple[float, ...]
    spis: Tuple[float, ...]
    solver: str
    iterations: int
    contended: bool
    telemetry: Optional[SolverTelemetry] = None

    @property
    def total_size(self) -> float:
        return float(sum(self.sizes))

    def to_dict(self) -> dict:
        """Plain-JSON representation (see :mod:`repro.io`)."""
        from repro.io import equilibrium_result_to_dict

        return equilibrium_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EquilibriumResult":
        from repro.io import equilibrium_result_from_dict

        return equilibrium_result_from_dict(data)


def _finish(
    processes: Sequence[EquilibriumProcess],
    sizes: Sequence[float],
    solver: str,
    iterations: int,
    contended: bool,
    telemetry: Optional[SolverTelemetry] = None,
) -> EquilibriumResult:
    mpas = tuple(p.mpa(s) for p, s in zip(processes, sizes))
    spis = tuple(p.alpha * m + p.beta for p, m in zip(processes, mpas))
    return EquilibriumResult(
        sizes=tuple(float(s) for s in sizes),
        mpas=mpas,
        spis=spis,
        solver=solver,
        iterations=iterations,
        contended=contended,
        telemetry=telemetry,
    )


def _uncontended(
    processes: Sequence[EquilibriumProcess], total_ways: int
) -> Optional[List[float]]:
    """If everyone's footprint fits, there is nothing to solve."""
    saturations = [min(p.occupancy.saturation_size, total_ways) for p in processes]
    if sum(saturations) <= total_ways + 1e-9:
        return saturations
    return None


def _resolve_mpa_slope(
    process: EquilibriumProcess,
) -> Callable[[float], float]:
    """Derivative of the process's MPA curve for the analytic Jacobian.

    Preference order: an explicit ``mpa_slope`` on the process, the
    ``mpa_slope`` method of the curve object the ``mpa`` callable is
    bound to, then a local finite difference of the black-box callable.
    """
    if process.mpa_slope is not None:
        return process.mpa_slope
    owner = getattr(process.mpa, "__self__", None)
    if owner is not None and getattr(process.mpa, "__name__", None) == "mpa":
        slope = getattr(owner, "mpa_slope", None)
        if callable(slope):
            return slope
    mpa = process.mpa

    def fd_slope(size: float, _mpa=mpa, _h=1e-6) -> float:
        lo = size - _h if size >= _h else 0.0
        hi = size + _h
        return (_mpa(hi) - _mpa(lo)) / (hi - lo)

    return fd_slope


def _redistribute_to_capacity(
    sizes: Sequence[float], caps: Sequence[float], total: float
) -> List[float]:
    """Rescale ``sizes`` to sum exactly to ``total`` without breaching caps.

    Proportional rescaling alone violates Eq. 1 whenever a process hits
    its cap (the clipped excess simply vanished); instead the residual
    is redistributed over the still-uncapped processes, iterating until
    no new process saturates.  Requires ``sum(caps) >= total`` — which
    contention guarantees, since caps are the per-process saturation
    sizes clipped at ``total`` — otherwise everyone is left at cap.

    The proportional loop alone has two failure edges: when every free
    index lands exactly at its cap mid-pass the loop exits with the
    clipped overshoot unredistributed, and when the free mass is zero
    the even spread can itself breach a small cap.  A deterministic
    closure pass afterwards moves the leftover gap onto processes with
    headroom (raising) or positive mass (lowering), so the invariant
    ``|Σ out - total| <= 1e-9 · max(1, total)`` holds for any cap
    vector with ``sum(caps) >= total >= 0`` — including zero caps and
    all-capped inputs.  Well-conditioned solves close within the
    proportional loop already; the closure only runs when a gap above
    float-roundoff (1e-12 relative) survives, so ordinary Newton /
    bisection results keep their historical bit patterns.
    """
    k = len(sizes)
    caps = [float(c) for c in caps]
    out = [min(float(s), c) for s, c in zip(sizes, caps)]
    if sum(caps) <= total:
        return list(caps)
    capped = [False] * k
    for _ in range(k + 1):
        fixed = sum(s for s, c in zip(out, capped) if c)
        free = [i for i in range(k) if not capped[i]]
        if not free:
            break
        remaining = total - fixed
        if remaining <= 0.0:
            # The capped mass alone meets (or overshoots) capacity;
            # zero the free entries and let the closure pull the
            # overshoot back out of the capped ones.
            for i in free:
                out[i] = 0.0
            break
        free_sum = sum(out[i] for i in free)
        if free_sum <= 0.0:
            # Degenerate: spread the remainder evenly instead (the cap
            # clip below catches entries this pushes past their cap).
            for i in free:
                out[i] = remaining / len(free)
        else:
            scale = remaining / free_sum
            for i in free:
                out[i] *= scale
        saturated = False
        for i in free:
            if out[i] >= caps[i]:
                out[i] = caps[i]
                capped[i] = True
                saturated = True
        if not saturated:
            break
    # Exact-closure pass: deterministically absorb whatever gap the
    # proportional loop left (it can be the whole overshoot when every
    # free index saturated mid-pass).  Guarded by a roundoff threshold
    # so well-behaved results are not perturbed.
    gap = total - sum(out)
    tol = 1e-12 * max(1.0, abs(total))
    if gap > tol:
        for i in range(k):
            headroom = caps[i] - out[i]
            if headroom <= 0.0:
                continue
            out[i] += gap if gap <= headroom else headroom
            gap = total - sum(out)
            if gap <= tol:
                break
    elif gap < -tol:
        for i in range(k):
            if out[i] <= 0.0:
                continue
            out[i] -= -gap if -gap <= out[i] else out[i]
            gap = total - sum(out)
            if gap >= -tol:
                break
    return out


#: Lower bound of the Newton search domain (ways).  Sizes are kept
#: strictly positive so G⁻¹ and the logarithmic derivatives stay
#: finite; shared with :mod:`repro.core.batch_equilibrium` so both
#: paths clamp identically.
NEWTON_DOMAIN_FLOOR = 0.05


def _newton_caps(
    processes: Sequence[EquilibriumProcess], total_ways: int, lo: float
) -> List[float]:
    """Per-process Newton domain caps (shared with the batch solver).

    Keeps iterates strictly inside the domain: ``g_inverse`` is
    infinite at saturation, so cap each size just below it, and leave
    room for every other process to sit at the floor.
    """
    k = len(processes)
    return [
        min(p.occupancy.saturation_size - 1e-3, total_ways - lo * (k - 1))
        for p in processes
    ]


def _proportional_start(
    processes: Sequence[EquilibriumProcess], total_ways: int
) -> List[float]:
    """Default Newton start: demands scaled onto the capacity plane.

    Shared with :mod:`repro.core.batch_equilibrium`; the batch kernels
    replicate these exact operations (same left-to-right summation) so
    the stacked start guess is bit-identical to this one.
    """
    demand = [
        min(p.occupancy.saturation_size, float(total_ways)) for p in processes
    ]
    scale = total_ways / sum(demand)
    return [d * scale for d in demand]


def _eq7_residual_norm(
    processes: Sequence[EquilibriumProcess],
    sizes: Sequence[float],
    total_ways: int,
) -> float:
    """Norm of the Eq. 1 + Eq. 7 residual at ``sizes`` (for telemetry)."""
    res = NewtonSolver()._residual(
        processes, np.asarray(sizes, dtype=float), total_ways
    )
    finite = res[np.isfinite(res)]
    return float(np.linalg.norm(finite)) if finite.size else float("inf")


class BisectionSolver:
    """Nested fixed-point / bisection equilibrium solver."""

    name = "bisection"

    def __init__(
        self,
        size_tol: float = 1e-4,
        max_outer: int = 200,
        max_inner: int = 300,
    ):
        self.size_tol = size_tol
        self.max_outer = max_outer
        self.max_inner = max_inner

    def _size_at(self, process: EquilibriumProcess, window_t: float, cap: float) -> float:
        """Greatest fixed point of S = G(T·APS(S)) on [0, cap]."""
        g = process.occupancy.g
        mpa = process.mpa
        api, alpha, beta = process.api, process.alpha, process.beta
        inner_tol = self.size_tol * 0.1
        size = cap
        for _ in range(self.max_inner):
            accesses = window_t * api / (alpha * mpa(size) + beta)
            new_size = g(accesses)
            if new_size > cap:
                new_size = cap
            if abs(new_size - size) < inner_tol:
                return new_size
            size = new_size
        return size

    def solve(
        self, processes: Sequence[EquilibriumProcess], total_ways: int
    ) -> EquilibriumResult:
        if not processes:
            raise ConfigurationError("need at least one process")
        if total_ways < len(processes):
            raise ConfigurationError("fewer ways than processes")
        free = _uncontended(processes, total_ways)
        if free is not None:
            telemetry = SolverTelemetry(
                strategy=self.name,
                solver=self.name,
                jacobian=None,
                iterations=0,
                residual_norm=0.0,
            )
            return _finish(processes, free, self.name, 0, False, telemetry)

        caps = [min(p.occupancy.saturation_size, float(total_ways)) for p in processes]

        def total(window_t: float) -> float:
            return sum(
                self._size_at(p, window_t, cap) for p, cap in zip(processes, caps)
            )

        # Bracket T: total(T) is monotone increasing.
        t_hi = 1.0
        iterations = 0
        for _ in range(80):
            iterations += 1
            if total(t_hi) >= total_ways:
                break
            t_hi *= 4.0
        else:
            raise ConvergenceError(
                "could not bracket the equilibrium window from above",
                iterations=iterations,
            )
        t_lo = t_hi
        for _ in range(120):
            iterations += 1
            t_lo /= 4.0
            if total(t_lo) < total_ways:
                break
        else:
            raise ConvergenceError(
                "could not bracket the equilibrium window from below",
                iterations=iterations,
            )

        for _ in range(self.max_outer):
            iterations += 1
            t_mid = (t_lo * t_hi) ** 0.5  # geometric: T spans decades
            excess = total(t_mid) - total_ways
            if abs(excess) < self.size_tol:
                break
            if excess > 0:
                t_hi = t_mid
            else:
                t_lo = t_mid
        t_mid = (t_lo * t_hi) ** 0.5
        sizes = [self._size_at(p, t_mid, cap) for p, cap in zip(processes, caps)]
        # Close the Eq. 1 capacity constraint exactly.  A plain
        # proportional rescale clipped at each cap loses the clipped
        # excess whenever any process saturates; redistribute it over
        # the uncapped processes instead (see _redistribute_to_capacity).
        sizes = _redistribute_to_capacity(sizes, caps, float(total_ways))
        total_now = sum(sizes)
        assert abs(total_now - total_ways) <= 1e-9 * max(1.0, total_ways), (
            f"capacity constraint violated: sum(sizes)={total_now!r} "
            f"!= total_ways={total_ways!r}"
        )
        telemetry = SolverTelemetry(
            strategy=self.name,
            solver=self.name,
            jacobian=None,
            iterations=iterations,
            residual_norm=_eq7_residual_norm(processes, sizes, total_ways),
        )
        return _finish(processes, sizes, self.name, iterations, True, telemetry)


class NewtonSolver:
    """Damped Newton–Raphson on the Eq. 1 + Eq. 7 residual system.

    Args:
        tol: Convergence threshold on the residual norm.
        max_iterations: Iteration budget.
        fd_step: Step for the finite-difference Jacobian (debug path).
        jacobian: ``analytic`` (default) builds the Jacobian from the
            tabulated growth-curve and MPA-tail segment slopes and
            solves the arrow-structured system in O(k); ``fd`` keeps
            the original k² finite-difference evaluation for
            verification.
    """

    name = "newton"

    def __init__(
        self,
        tol: float = 1e-7,
        max_iterations: int = 120,
        fd_step: float = 1e-4,
        jacobian: str = "analytic",
    ):
        if jacobian not in ("analytic", "fd"):
            raise ConfigurationError(
                f"unknown jacobian mode {jacobian!r}; choose analytic or fd"
            )
        self.tol = tol
        self.max_iterations = max_iterations
        self.fd_step = fd_step
        self.jacobian = jacobian

    def _residual(
        self,
        processes: Sequence[EquilibriumProcess],
        sizes: np.ndarray,
        total_ways: int,
    ) -> np.ndarray:
        k = len(processes)
        res = np.empty(k)
        p1 = processes[0]
        s1 = float(sizes[0])
        n1 = p1.occupancy.g_inverse(s1)
        rate1 = p1.api / (p1.alpha * p1.mpa(s1) + p1.beta)
        total = s1
        n1_finite = math.isfinite(n1)
        for i in range(1, k):
            pi = processes[i]
            si = float(sizes[i])
            total += si
            ni = pi.occupancy.g_inverse(si)
            ratei = pi.api / (pi.alpha * pi.mpa(si) + pi.beta)
            # Eq. 7 rearranged as n1 * rate_i ... / (n_i * rate_1) - 1,
            # numerically kinder than the raw difference of ratios.
            if not n1_finite or not math.isfinite(ni):
                res[i] = np.inf
            else:
                res[i] = (n1 * ratei) / (ni * rate1) - 1.0
        res[0] = total - total_ways
        return res

    def _evaluate(
        self,
        processes: Sequence[EquilibriumProcess],
        slopes: Sequence[Callable[[float], float]],
        sizes: np.ndarray,
        total_ways: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Residual and analytic-Jacobian ingredients in one pass.

        Returns ``(res, q, nlog, rlog)`` where ``q[i]`` is the Eq. 7
        ratio term (``res[i] = q[i] - 1``), and ``nlog``/``rlog`` are
        the logarithmic derivatives d ln G⁻¹/dS and d ln rate/dS read
        off the tabulated segment slopes.
        """
        k = len(processes)
        ns = np.empty(k)
        rates = np.empty(k)
        nlog = np.empty(k)
        rlog = np.empty(k)
        total = 0.0
        for i, p in enumerate(processes):
            s = float(sizes[i])
            total += s
            occ = p.occupancy
            n = occ.g_inverse(s)
            m = p.mpa(s)
            spi = p.alpha * m + p.beta
            ns[i] = n
            rates[i] = p.api / spi
            n_slope = occ.g_inverse_slope(s)
            nlog[i] = n_slope / n if n > 0 and math.isfinite(n) else np.inf
            rlog[i] = -p.alpha * slopes[i](s) / spi
        res = np.empty(k)
        q = np.empty(k)
        res[0] = total - total_ways
        q[0] = np.nan  # unused; row 0 is the capacity constraint
        n1, rate1 = ns[0], rates[0]
        for i in range(1, k):
            if not (math.isfinite(ns[i]) and math.isfinite(n1)):
                res[i] = np.inf
                q[i] = np.inf
            else:
                q[i] = (n1 * rates[i]) / (ns[i] * rate1)
                res[i] = q[i] - 1.0
        return res, q, nlog, rlog

    def _arrow_delta(
        self,
        res: np.ndarray,
        q: np.ndarray,
        nlog: np.ndarray,
        rlog: np.ndarray,
        iteration: int,
        norm: float,
    ) -> np.ndarray:
        """Solve J·Δ = -res exploiting the arrow structure of J.

        Row 0 of J is all ones (capacity constraint); row i has only
        two nonzeros, ``a_i = ∂F_i/∂S_1`` and ``b_i = ∂F_i/∂S_i``.
        Eliminating the ``Δ_i`` against row 0 solves the system in
        O(k) with no matrix assembly.
        """
        a = q * (nlog[0] - rlog[0])
        b = q * (rlog - nlog)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_b = 1.0 / b[1:]
        if not np.all(np.isfinite(inv_b)):
            raise ConvergenceError(
                "singular Jacobian", iterations=iteration, residual=norm
            )
        denom = 1.0 - float(a[1:] @ inv_b)
        num = -float(res[0]) + float(res[1:] @ inv_b)
        if not math.isfinite(denom) or denom == 0.0 or not math.isfinite(num):
            raise ConvergenceError(
                "singular Jacobian", iterations=iteration, residual=norm
            )
        delta = np.empty(res.shape)
        delta[0] = num / denom
        delta[1:] = (-res[1:] - a[1:] * delta[0]) * inv_b
        if not np.all(np.isfinite(delta)):
            raise ConvergenceError(
                "singular Jacobian", iterations=iteration, residual=norm
            )
        return delta

    def _caps(
        self, processes: Sequence[EquilibriumProcess], total_ways: int, lo: float
    ) -> np.ndarray:
        return np.array(_newton_caps(processes, total_ways, lo))

    # ------------------------------------------------------------------
    # Debug / verification Jacobians
    # ------------------------------------------------------------------
    def jacobian_fd(
        self,
        processes: Sequence[EquilibriumProcess],
        sizes: np.ndarray,
        total_ways: int,
    ) -> np.ndarray:
        """Finite-difference Jacobian of the residual at ``sizes``."""
        k = len(processes)
        x = np.asarray(sizes, dtype=float)
        caps = self._caps(processes, total_ways, 0.05)
        res = self._residual(processes, x, total_ways)
        jac = np.empty((k, k))
        h = self.fd_step
        for j in range(k):
            xh = x.copy()
            step = h if x[j] + h <= caps[j] else -h
            xh[j] += step
            res_h = self._residual(processes, xh, total_ways)
            jac[:, j] = (res_h - res) / step
        return jac

    def jacobian_analytic(
        self,
        processes: Sequence[EquilibriumProcess],
        sizes: np.ndarray,
        total_ways: int,
    ) -> np.ndarray:
        """Analytic Jacobian of the residual at ``sizes`` (assembled)."""
        k = len(processes)
        slopes = [_resolve_mpa_slope(p) for p in processes]
        x = np.asarray(sizes, dtype=float)
        _, q, nlog, rlog = self._evaluate(processes, slopes, x, total_ways)
        jac = np.zeros((k, k))
        jac[0, :] = 1.0
        for i in range(1, k):
            jac[i, 0] = q[i] * (nlog[0] - rlog[0])
            jac[i, i] = q[i] * (rlog[i] - nlog[i])
        return jac

    def solve(
        self,
        processes: Sequence[EquilibriumProcess],
        total_ways: int,
        initial: Optional[Sequence[float]] = None,
    ) -> EquilibriumResult:
        if not processes:
            raise ConfigurationError("need at least one process")
        if total_ways < len(processes):
            raise ConfigurationError("fewer ways than processes")
        free = _uncontended(processes, total_ways)
        if free is not None:
            telemetry = SolverTelemetry(
                strategy=self.name,
                solver=self.name,
                jacobian=None,
                iterations=0,
                residual_norm=0.0,
            )
            return _finish(processes, free, self.name, 0, False, telemetry)

        k = len(processes)
        lo = NEWTON_DOMAIN_FLOOR
        caps = _newton_caps(processes, total_ways, lo)
        caps_arr = np.array(caps)
        warm_started = initial is not None
        if initial is not None:
            start = [float(v) for v in initial]
            if len(start) != k:
                raise ConfigurationError(
                    "initial guess must have one size per process"
                )
        else:
            start = _proportional_start(processes, total_ways)
        x = [min(max(s, lo), c) for s, c in zip(start, caps)]

        if self.jacobian == "analytic":
            return self._solve_analytic(
                processes, total_ways, x, caps, lo, warm_started
            )
        return self._solve_fd(
            processes, total_ways, np.asarray(x), caps_arr, lo, warm_started
        )

    def _converged(
        self,
        processes: Sequence[EquilibriumProcess],
        total_ways: int,
        x: List[float],
        caps: List[float],
        iteration: int,
        warm_started: bool,
    ) -> EquilibriumResult:
        # Newton stops at ||res|| < tol, which leaves an O(tol)
        # capacity-constraint gap; close Eq. 1 exactly by
        # redistributing the residual over uncapped processes
        # (a <= tol-sized adjustment).
        if sum(caps) > total_ways:
            x = _redistribute_to_capacity(x, caps, float(total_ways))
        telemetry = SolverTelemetry(
            strategy=self.name,
            solver=self.name,
            jacobian=self.jacobian,
            iterations=iteration,
            residual_norm=_eq7_residual_norm(processes, x, total_ways),
            warm_started=warm_started,
        )
        return _finish(processes, x, self.name, iteration, True, telemetry)

    def _solve_analytic(
        self,
        processes: Sequence[EquilibriumProcess],
        total_ways: int,
        x: List[float],
        caps: List[float],
        lo: float,
        warm_started: bool,
    ) -> EquilibriumResult:
        """Newton with the analytic arrow Jacobian, in plain floats.

        The hot loop deliberately avoids numpy: for the k <= 16
        processes a cache domain can hold, Python-float segment
        lookups beat small-ndarray round trips by an order of
        magnitude, and the arrow structure makes the linear solve an
        O(k) elimination (see :meth:`_arrow_delta` for the algebra).
        """
        k = len(processes)
        g_inv = [p.occupancy.g_inverse for p in processes]
        g_inv_slope = [p.occupancy.g_inverse_slope for p in processes]
        mpa = [p.mpa for p in processes]
        api = [p.api for p in processes]
        alpha = [p.alpha for p in processes]
        beta = [p.beta for p in processes]
        slopes = [_resolve_mpa_slope(p) for p in processes]
        isfinite = math.isfinite

        def evaluate(xs):
            """Residual, norm and the (n, rate, spi) state behind it.

            The state is reused by the Jacobian pass, so each Newton
            iteration pays for exactly one table walk per process plus
            the two slope lookups.
            """
            s1 = xs[0]
            n1 = g_inv[0](s1)
            spi1 = alpha[0] * mpa[0](s1) + beta[0]
            rate1 = api[0] / spi1
            total = s1
            ok = isfinite(n1) and n1 > 0
            res = [0.0] * k
            ns = [n1] + [0.0] * (k - 1)
            rates = [rate1] + [0.0] * (k - 1)
            spis = [spi1] + [0.0] * (k - 1)
            sq = 0.0
            for i in range(1, k):
                si = xs[i]
                total += si
                ni = g_inv[i](si)
                spii = alpha[i] * mpa[i](si) + beta[i]
                ri = api[i] / spii
                ns[i] = ni
                rates[i] = ri
                spis[i] = spii
                if ok and isfinite(ni) and ni > 0:
                    value = (n1 * ri) / (ni * rate1) - 1.0
                else:
                    value = math.inf
                res[i] = value
                sq += value * value
            res[0] = total - total_ways
            sq += res[0] * res[0]
            return res, math.sqrt(sq), ns, rates, spis

        res, norm, ns, rates, spis = evaluate(x)
        for iteration in range(1, self.max_iterations + 1):
            if not isfinite(norm):
                raise ConvergenceError(
                    "residual left the finite domain", iterations=iteration
                )
            if norm < self.tol:
                return self._converged(
                    processes, total_ways, x, caps, iteration, warm_started
                )
            # Jacobian ingredients: only the tabulated segment slopes
            # are new; n, rate, spi come from the accepted evaluation.
            n1 = ns[0]
            rate1 = rates[0]
            nlog1 = g_inv_slope[0](x[0]) / n1
            rlog1 = -alpha[0] * slopes[0](x[0]) / spis[0]
            head = nlog1 - rlog1
            if not isfinite(head):
                raise ConvergenceError(
                    "singular Jacobian", iterations=iteration, residual=norm
                )
            a = [0.0] * k
            b = [0.0] * k
            for i in range(1, k):
                si = x[i]
                qi = res[i] + 1.0
                nlogi = g_inv_slope[i](si) / ns[i]
                rlogi = -alpha[i] * slopes[i](si) / spis[i]
                a[i] = qi * head
                b[i] = qi * (rlogi - nlogi)
            # Arrow elimination: row 0 is all ones, row i has nonzeros
            # only at columns 0 and i.
            denom = 1.0
            num = -res[0]
            singular = False
            for i in range(1, k):
                bi = b[i]
                if bi == 0.0 or not isfinite(bi):
                    singular = True
                    break
                denom -= a[i] / bi
                num += res[i] / bi
            if singular or denom == 0.0 or not isfinite(denom) or not isfinite(num):
                raise ConvergenceError(
                    "singular Jacobian", iterations=iteration, residual=norm
                )
            d1 = num / denom
            delta = [0.0] * k
            delta[0] = d1
            for i in range(1, k):
                delta[i] = (-res[i] - a[i] * d1) / b[i]
            if not all(isfinite(d) for d in delta):
                raise ConvergenceError(
                    "singular Jacobian", iterations=iteration, residual=norm
                )
            # Damped line search: halve until the residual improves.
            damping = 1.0
            for _ in range(30):
                x_new = [
                    min(max(x[i] + damping * delta[i], lo), caps[i])
                    for i in range(k)
                ]
                res_new, norm_new, ns_new, rates_new, spis_new = evaluate(x_new)
                if norm_new < norm:
                    break
                damping *= 0.5
            else:
                raise ConvergenceError(
                    "line search failed", iterations=iteration, residual=norm
                )
            x = x_new
            res, norm, ns, rates, spis = (
                res_new, norm_new, ns_new, rates_new, spis_new
            )
        raise ConvergenceError(
            "Newton iteration budget exhausted",
            iterations=self.max_iterations,
            residual=norm,
        )

    def _solve_fd(
        self,
        processes: Sequence[EquilibriumProcess],
        total_ways: int,
        x: np.ndarray,
        caps: np.ndarray,
        lo: float,
        warm_started: bool,
    ) -> EquilibriumResult:
        """The original finite-difference Newton (debug/verify path)."""
        k = len(processes)
        h = self.fd_step
        for iteration in range(1, self.max_iterations + 1):
            res = self._residual(processes, x, total_ways)
            if not np.all(np.isfinite(res)):
                raise ConvergenceError(
                    "residual left the finite domain", iterations=iteration
                )
            norm = float(np.linalg.norm(res))
            if norm < self.tol:
                return self._converged(
                    processes,
                    total_ways,
                    x.tolist(),
                    caps.tolist(),
                    iteration,
                    warm_started,
                )
            jac = np.empty((k, k))
            for j in range(k):
                xh = x.copy()
                step = h if x[j] + h <= caps[j] else -h
                xh[j] += step
                res_h = self._residual(processes, xh, total_ways)
                jac[:, j] = (res_h - res) / step
            try:
                delta = np.linalg.solve(jac, -res)
            except np.linalg.LinAlgError:
                raise ConvergenceError(
                    "singular Jacobian", iterations=iteration, residual=norm
                ) from None
            # Damped line search: halve until the residual improves.
            damping = 1.0
            for _ in range(30):
                x_new = np.clip(x + damping * delta, lo, caps)
                res_new = self._residual(processes, x_new, total_ways)
                if np.all(np.isfinite(res_new)) and np.linalg.norm(res_new) < norm:
                    break
                damping *= 0.5
            else:
                raise ConvergenceError(
                    "line search failed", iterations=iteration, residual=norm
                )
            x = x_new
        raise ConvergenceError(
            "Newton iteration budget exhausted",
            iterations=self.max_iterations,
            residual=float(np.linalg.norm(self._residual(processes, x, total_ways))),
        )


def solve_equilibrium(
    processes: Sequence[EquilibriumProcess],
    total_ways: int,
    strategy: str = "auto",
    initial: Optional[Sequence[float]] = None,
) -> EquilibriumResult:
    """Solve the shared-cache equilibrium with the chosen strategy.

    Args:
        processes: One entry per cache-sharing (simultaneously
            running) process.
        total_ways: Associativity ``A`` of the shared cache.
        strategy: ``newton``, ``bisection``, or ``auto`` (the paper's
            Newton–Raphson, falling back to the robust bisection
            scheme if it fails to converge).
        initial: Optional warm-start sizes for Newton (e.g. the
            solution of a neighbouring co-run from an
            :class:`~repro.core.solver_cache.EquilibriumCache`).
            Ignored by bisection.
    """
    observer = get_observer()
    if not observer.enabled:
        return _solve_equilibrium_impl(processes, total_ways, strategy, initial)
    with observer.span(
        "equilibrium.solve",
        strategy=strategy,
        processes=len(processes),
        total_ways=total_ways,
        warm_started=initial is not None,
    ) as span:
        result = _solve_equilibrium_impl(processes, total_ways, strategy, initial)
        observer.counter("equilibrium.solves").inc()
        if not result.contended:
            observer.counter("equilibrium.uncontended").inc()
        telemetry = result.telemetry
        if telemetry is not None:
            span.annotate(
                solver=telemetry.solver,
                jacobian=telemetry.jacobian,
                iterations=telemetry.iterations,
                residual_norm=telemetry.residual_norm,
                warm_started=telemetry.warm_started,
                fallback_reason=telemetry.fallback_reason,
            )
            observer.counter("equilibrium.iterations").inc(telemetry.iterations)
            observer.histogram("equilibrium.residual_norm").observe(
                telemetry.residual_norm
            )
            if telemetry.warm_started:
                observer.counter("equilibrium.warm_starts").inc()
            if telemetry.fallback_reason is not None:
                observer.counter("equilibrium.fallbacks").inc()
        return result


def _solve_equilibrium_impl(
    processes: Sequence[EquilibriumProcess],
    total_ways: int,
    strategy: str,
    initial: Optional[Sequence[float]],
) -> EquilibriumResult:
    """The uninstrumented solve (bench baseline for obs overhead)."""

    def _stamp(result: EquilibriumResult, **updates) -> EquilibriumResult:
        if result.telemetry is None:
            return result
        return replace(result, telemetry=replace(result.telemetry, **updates))

    if strategy == "newton":
        return NewtonSolver().solve(processes, total_ways, initial=initial)
    if strategy == "bisection":
        return BisectionSolver().solve(processes, total_ways)
    if strategy != "auto":
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; choose newton, bisection or auto"
        )
    try:
        result = NewtonSolver().solve(processes, total_ways, initial=initial)
        return _stamp(result, strategy="auto")
    except ConvergenceError as newton_err:
        try:
            result = BisectionSolver().solve(processes, total_ways)
        except ConvergenceError as bisection_err:
            # Chain so the Newton diagnostics (iterations, residual)
            # survive alongside the bisection failure.
            raise ConvergenceError(
                "both solvers failed: newton: "
                f"{newton_err} (iterations={newton_err.iterations}, "
                f"residual={newton_err.residual!r}); "
                f"bisection: {bisection_err}",
                iterations=bisection_err.iterations,
                residual=bisection_err.residual,
            ) from newton_err
        return _stamp(
            result,
            strategy="auto",
            fallback_reason=(
                f"newton failed after {newton_err.iterations} iterations: "
                f"{newton_err}"
            ),
        )
