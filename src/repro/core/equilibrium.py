"""Steady-state cache-partition solvers (paper Section 3.3).

At equilibrium each process's accesses-per-second must be consistent
with its occupancy: over any recent window of length ``T`` a process
made ``G⁻¹(S_i)`` accesses (the number needed to build its occupancy),
and its throughput is set by its miss rate via Eq. 3:

    APS_i = G_i⁻¹(S_i) / T = API_i / (α_i · MPA_i(S_i) + β_i)   (Eq. 6)

Eliminating ``T`` gives the paper's Eq. 7 ratio conditions, closed by
the capacity constraint ``Σ S_i = A`` (Eq. 1).  Two solvers are
provided:

- :class:`NewtonSolver` — damped Newton–Raphson on the Eq. 7 residual
  system, the method the paper names.
- :class:`BisectionSolver` — a robust nested fixed-point/bisection
  scheme on the window length ``T``: for a trial ``T`` each process's
  occupancy is the greatest fixed point of ``S = G(T · APS(S))``
  (monotone, so the iteration from above converges), and the total
  occupancy is monotone in ``T``.

Both return identical answers on well-behaved inputs (the solver
ablation benchmark quantifies this); the default strategy tries
Newton and falls back to bisection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.occupancy import OccupancyModel
from repro.errors import ConfigurationError, ConvergenceError


@dataclass(frozen=True)
class EquilibriumProcess:
    """Per-process inputs to the equilibrium system.

    Attributes:
        occupancy: Growth model built from the process's histogram.
        mpa: Miss-per-access curve (callable of occupancy in ways).
        api: L2 accesses per instruction.
        alpha: Eq. 3 slope (seconds per instruction per unit MPA).
        beta: Eq. 3 intercept (seconds per instruction).
    """

    occupancy: OccupancyModel
    mpa: Callable[[float], float]
    api: float
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.api <= 0:
            raise ConfigurationError("api must be positive")
        if self.alpha < 0 or self.beta <= 0:
            raise ConfigurationError("alpha must be >= 0 and beta > 0")

    def aps(self, size: float) -> float:
        """Accesses per second at occupancy ``size`` (Eq. 6 RHS)."""
        return self.api / (self.alpha * self.mpa(size) + self.beta)


@dataclass(frozen=True)
class EquilibriumResult:
    """Solved steady state of co-running, cache-sharing processes."""

    sizes: Tuple[float, ...]
    mpas: Tuple[float, ...]
    spis: Tuple[float, ...]
    solver: str
    iterations: int
    contended: bool

    @property
    def total_size(self) -> float:
        return float(sum(self.sizes))


def _finish(
    processes: Sequence[EquilibriumProcess],
    sizes: Sequence[float],
    solver: str,
    iterations: int,
    contended: bool,
) -> EquilibriumResult:
    mpas = tuple(p.mpa(s) for p, s in zip(processes, sizes))
    spis = tuple(p.alpha * m + p.beta for p, m in zip(processes, mpas))
    return EquilibriumResult(
        sizes=tuple(float(s) for s in sizes),
        mpas=mpas,
        spis=spis,
        solver=solver,
        iterations=iterations,
        contended=contended,
    )


def _uncontended(
    processes: Sequence[EquilibriumProcess], total_ways: int
) -> Optional[List[float]]:
    """If everyone's footprint fits, there is nothing to solve."""
    saturations = [min(p.occupancy.saturation_size, total_ways) for p in processes]
    if sum(saturations) <= total_ways + 1e-9:
        return saturations
    return None


class BisectionSolver:
    """Nested fixed-point / bisection equilibrium solver."""

    name = "bisection"

    def __init__(
        self,
        size_tol: float = 1e-4,
        max_outer: int = 200,
        max_inner: int = 300,
    ):
        self.size_tol = size_tol
        self.max_outer = max_outer
        self.max_inner = max_inner

    def _size_at(self, process: EquilibriumProcess, window_t: float, cap: float) -> float:
        """Greatest fixed point of S = G(T·APS(S)) on [0, cap]."""
        size = cap
        for _ in range(self.max_inner):
            accesses = window_t * process.aps(size)
            new_size = min(process.occupancy.g(accesses), cap)
            if abs(new_size - size) < self.size_tol * 0.1:
                return new_size
            size = new_size
        return size

    def solve(
        self, processes: Sequence[EquilibriumProcess], total_ways: int
    ) -> EquilibriumResult:
        if not processes:
            raise ConfigurationError("need at least one process")
        if total_ways < len(processes):
            raise ConfigurationError("fewer ways than processes")
        free = _uncontended(processes, total_ways)
        if free is not None:
            return _finish(processes, free, self.name, 0, contended=False)

        caps = [min(p.occupancy.saturation_size, float(total_ways)) for p in processes]

        def total(window_t: float) -> float:
            return sum(
                self._size_at(p, window_t, cap) for p, cap in zip(processes, caps)
            )

        # Bracket T: total(T) is monotone increasing.
        t_hi = 1.0
        iterations = 0
        for _ in range(80):
            iterations += 1
            if total(t_hi) >= total_ways:
                break
            t_hi *= 4.0
        else:
            raise ConvergenceError(
                "could not bracket the equilibrium window from above",
                iterations=iterations,
            )
        t_lo = t_hi
        for _ in range(120):
            iterations += 1
            t_lo /= 4.0
            if total(t_lo) < total_ways:
                break
        else:
            raise ConvergenceError(
                "could not bracket the equilibrium window from below",
                iterations=iterations,
            )

        for _ in range(self.max_outer):
            iterations += 1
            t_mid = (t_lo * t_hi) ** 0.5  # geometric: T spans decades
            excess = total(t_mid) - total_ways
            if abs(excess) < self.size_tol:
                break
            if excess > 0:
                t_hi = t_mid
            else:
                t_lo = t_mid
        t_mid = (t_lo * t_hi) ** 0.5
        sizes = [self._size_at(p, t_mid, cap) for p, cap in zip(processes, caps)]
        # Distribute any residual rounding error proportionally so the
        # capacity constraint holds exactly.
        scale = total_ways / sum(sizes)
        sizes = [min(s * scale, cap) for s, cap in zip(sizes, caps)]
        return _finish(processes, sizes, self.name, iterations, contended=True)


class NewtonSolver:
    """Damped Newton–Raphson on the Eq. 1 + Eq. 7 residual system."""

    name = "newton"

    def __init__(
        self,
        tol: float = 1e-7,
        max_iterations: int = 120,
        fd_step: float = 1e-4,
    ):
        self.tol = tol
        self.max_iterations = max_iterations
        self.fd_step = fd_step

    def _residual(
        self,
        processes: Sequence[EquilibriumProcess],
        sizes: np.ndarray,
        total_ways: int,
    ) -> np.ndarray:
        k = len(processes)
        res = np.empty(k)
        res[0] = sizes.sum() - total_ways
        p1 = processes[0]
        n1 = p1.occupancy.g_inverse(float(sizes[0]))
        rate1 = p1.api / (p1.alpha * p1.mpa(float(sizes[0])) + p1.beta)
        for i in range(1, k):
            pi = processes[i]
            ni = pi.occupancy.g_inverse(float(sizes[i]))
            ratei = pi.api / (pi.alpha * pi.mpa(float(sizes[i])) + pi.beta)
            # Eq. 7 rearranged as n1 * rate_i ... / (n_i * rate_1) - 1,
            # numerically kinder than the raw difference of ratios.
            if not np.isfinite(ni) or not np.isfinite(n1):
                res[i] = np.inf
            else:
                res[i] = (n1 * ratei) / (ni * rate1) - 1.0
        return res

    def solve(
        self,
        processes: Sequence[EquilibriumProcess],
        total_ways: int,
        initial: Optional[Sequence[float]] = None,
    ) -> EquilibriumResult:
        if not processes:
            raise ConfigurationError("need at least one process")
        if total_ways < len(processes):
            raise ConfigurationError("fewer ways than processes")
        free = _uncontended(processes, total_ways)
        if free is not None:
            return _finish(processes, free, self.name, 0, contended=False)

        k = len(processes)
        # Keep strictly inside the domain: g_inverse is infinite at
        # saturation, so cap each size just below it.
        lo = 0.05
        caps = np.array(
            [
                min(p.occupancy.saturation_size - 1e-3, total_ways - lo * (k - 1))
                for p in processes
            ]
        )
        if initial is not None:
            x = np.asarray(initial, dtype=float).copy()
        else:
            demand = np.array(
                [min(p.occupancy.saturation_size, total_ways) for p in processes]
            )
            x = demand * (total_ways / demand.sum())
        x = np.clip(x, lo, caps)

        h = self.fd_step
        for iteration in range(1, self.max_iterations + 1):
            res = self._residual(processes, x, total_ways)
            if not np.all(np.isfinite(res)):
                raise ConvergenceError(
                    "residual left the finite domain", iterations=iteration
                )
            norm = float(np.linalg.norm(res))
            if norm < self.tol:
                return _finish(processes, x, self.name, iteration, contended=True)
            jac = np.empty((k, k))
            for j in range(k):
                xh = x.copy()
                step = h if x[j] + h <= caps[j] else -h
                xh[j] += step
                res_h = self._residual(processes, xh, total_ways)
                jac[:, j] = (res_h - res) / step
            try:
                delta = np.linalg.solve(jac, -res)
            except np.linalg.LinAlgError:
                raise ConvergenceError(
                    "singular Jacobian", iterations=iteration, residual=norm
                ) from None
            # Damped line search: halve until the residual improves.
            damping = 1.0
            for _ in range(30):
                x_new = np.clip(x + damping * delta, lo, caps)
                res_new = self._residual(processes, x_new, total_ways)
                if np.all(np.isfinite(res_new)) and np.linalg.norm(res_new) < norm:
                    break
                damping *= 0.5
            else:
                raise ConvergenceError(
                    "line search failed", iterations=iteration, residual=norm
                )
            x = x_new
        raise ConvergenceError(
            "Newton iteration budget exhausted",
            iterations=self.max_iterations,
            residual=float(np.linalg.norm(self._residual(processes, x, total_ways))),
        )


def solve_equilibrium(
    processes: Sequence[EquilibriumProcess],
    total_ways: int,
    strategy: str = "auto",
) -> EquilibriumResult:
    """Solve the shared-cache equilibrium with the chosen strategy.

    Args:
        processes: One entry per cache-sharing (simultaneously
            running) process.
        total_ways: Associativity ``A`` of the shared cache.
        strategy: ``newton``, ``bisection``, or ``auto`` (the paper's
            Newton–Raphson, falling back to the robust bisection
            scheme if it fails to converge).
    """
    if strategy == "newton":
        return NewtonSolver().solve(processes, total_ways)
    if strategy == "bisection":
        return BisectionSolver().solve(processes, total_ways)
    if strategy != "auto":
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; choose newton, bisection or auto"
        )
    try:
        return NewtonSolver().solve(processes, total_ways)
    except ConvergenceError:
        return BisectionSolver().solve(processes, total_ways)
