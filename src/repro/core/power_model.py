"""The HPC-rate power model of paper Section 4 (Eq. 9).

Per-core power is modeled as

    P_core = P_idle + c1·L1RPS + c2·L2RPS + c3·L2MPS + c4·BRPS + c5·FPPS

with the six constants obtained by multi-variable linear regression
against measured processor power.  Training follows the paper: runs
where all N cores execute the same workload (so per-core rates equal
the measured per-core rates and per-core power is processor power / N)
plus the 6-phase micro-benchmark; the uncore share is folded into the
per-core intercept.  Processor power for an arbitrary assignment is
the sum of per-core predictions, idle cores contributing ``P_idle``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.regression import LinearRegression
from repro.errors import ConfigurationError, ModelNotFittedError
from repro.events import PAPER_NAMES, RATE_EVENTS, Event

RateVector = Tuple[float, float, float, float, float]


def rate_vector(rates: Mapping[Event, float]) -> RateVector:
    """Extract the Eq. 9 regressor tuple from a rate mapping."""
    return tuple(rates.get(event, 0.0) for event in RATE_EVENTS)  # type: ignore[return-value]


@dataclass
class PowerTrainingSet:
    """Accumulates (per-core rates, per-core power) training rows."""

    rows: List[RateVector]
    targets: List[float]

    def __init__(self) -> None:
        self.rows = []
        self.targets = []

    def add(self, rates: Mapping[Event, float], core_power_watts: float) -> None:
        """Add one observation of a single core."""
        if core_power_watts < 0:
            raise ConfigurationError("core power must be non-negative")
        self.rows.append(rate_vector(rates))
        self.targets.append(core_power_watts)

    def add_uniform_run(
        self,
        per_core_rates: Sequence[Mapping[Event, float]],
        processor_power_watts: float,
    ) -> None:
        """Add a paper-style training sample: N identical cores.

        The paper runs N instances of one benchmark and assumes each
        core contributes equally, so each core's target power is the
        measured processor power divided by N.
        """
        n = len(per_core_rates)
        if n == 0:
            raise ConfigurationError("need at least one core")
        share = processor_power_watts / n
        for rates in per_core_rates:
            self.add(rates, share)

    def __len__(self) -> int:
        return len(self.rows)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.rows, dtype=float), np.asarray(self.targets, dtype=float)


class CorePowerModel:
    """Fitted Eq. 9 model with per-core intercept (idle power)."""

    def __init__(self) -> None:
        self._regression = LinearRegression()

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self, training: PowerTrainingSet, idle_core_watts: Optional[float] = None
    ) -> "CorePowerModel":
        """MVLR fit; returns self for chaining.

        Args:
            training: The (rates, core power) rows.
            idle_core_watts: If given, pins P_idle to this directly
                measured value (the paper's micro-benchmark records
                idle power in its first phase); only c1..c5 are then
                fitted.  Anchoring matters for assignments with unused
                cores, whose power is ``P_idle`` by construction.
        """
        if len(training) < 7:
            raise ConfigurationError(
                "need at least 7 training rows (6 coefficients + 1)"
            )
        x, y = training.as_arrays()
        self._regression.fit(x, y, fixed_intercept=idle_core_watts)
        return self

    @property
    def fitted(self) -> bool:
        return self._regression.fitted

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise ModelNotFittedError("power model is not fitted yet")

    # ------------------------------------------------------------------
    # Coefficients (paper notation)
    # ------------------------------------------------------------------
    @property
    def p_idle(self) -> float:
        """Per-core idle power, uncore share included (the intercept)."""
        self._require_fitted()
        return float(self._regression.intercept)

    @property
    def coefficients(self) -> Dict[str, float]:
        """c1..c5 keyed by the paper's rate names (L1RPS, ... FPPS)."""
        self._require_fitted()
        return {
            PAPER_NAMES[event]: float(c)
            for event, c in zip(RATE_EVENTS, self._regression.coefficients)
        }

    @property
    def r_squared(self) -> float:
        self._require_fitted()
        return float(self._regression.r_squared)

    def accuracy(self, training: PowerTrainingSet) -> float:
        """The paper's accuracy metric on a (held-out) set."""
        x, y = training.as_arrays()
        return self._regression.accuracy(x, y)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def core_power(self, rates: Mapping[Event, float]) -> float:
        """Predicted power of one core from its event rates (Eq. 9)."""
        self._require_fitted()
        return self._regression.predict_one(rate_vector(rates))

    def idle_core_power(self) -> float:
        """Predicted power of an idle core (all rates zero)."""
        return self.p_idle

    def processor_power(
        self, per_core_rates: Sequence[Mapping[Event, float]]
    ) -> float:
        """Predicted processor power: sum over every core's Eq. 9.

        Pass one rate mapping per physical core; idle cores should be
        present with zero rates (or use :meth:`processor_power_padded`).
        """
        self._require_fitted()
        return float(sum(self.core_power(rates) for rates in per_core_rates))

    def processor_power_padded(
        self,
        busy_core_rates: Sequence[Mapping[Event, float]],
        total_cores: int,
    ) -> float:
        """Processor power with ``total_cores - busy`` idle cores."""
        if total_cores < len(busy_core_rates):
            raise ConfigurationError("total_cores smaller than busy core count")
        idle_cores = total_cores - len(busy_core_rates)
        return self.processor_power(busy_core_rates) + idle_cores * self.p_idle
