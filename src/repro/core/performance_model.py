"""Public façade of the paper's performance model (Section 3).

Register a :class:`~repro.core.feature.FeatureVector` per process of
interest (obtained once, in isolation, via stressmark profiling), then
predict the steady-state behaviour of *any* subset of them sharing a
last-level cache — O(k) profiling effort covering 2^k - 1 possible
co-run combinations, the paper's headline complexity win.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.equilibrium import (
    EquilibriumProcess,
    EquilibriumResult,
    solve_equilibrium,
)
from repro.core.feature import FeatureVector
from repro.core.occupancy import OccupancyModel
from repro.core.solver_cache import CacheStats, EquilibriumCache
from repro.errors import ConfigurationError, ConvergenceError
from repro.obs import get_observer


@dataclass(frozen=True)
class ProcessPrediction:
    """Predicted steady state of one process in a co-run."""

    name: str
    effective_size: float
    mpa: float
    spi: float

    @property
    def l2mpr(self) -> float:
        """L2 misses per L2 reference — identical to MPA at the L2."""
        return self.mpa

    @property
    def ips(self) -> float:
        """Instructions per second."""
        return 1.0 / self.spi

    def to_dict(self) -> dict:
        """Plain-JSON representation (see :mod:`repro.io`)."""
        from repro.io import process_prediction_to_dict

        return process_prediction_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ProcessPrediction":
        from repro.io import process_prediction_from_dict

        return process_prediction_from_dict(data)


@dataclass(frozen=True)
class CoRunPrediction:
    """Predicted steady state of a set of cache-sharing processes."""

    processes: Tuple[ProcessPrediction, ...]
    solver: str
    contended: bool

    def __getitem__(self, index: int) -> ProcessPrediction:
        return self.processes[index]

    def __len__(self) -> int:
        return len(self.processes)

    @property
    def total_size(self) -> float:
        return sum(p.effective_size for p in self.processes)

    def to_dict(self) -> dict:
        """Plain-JSON representation (see :mod:`repro.io`)."""
        from repro.io import corun_prediction_to_dict

        return corun_prediction_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CoRunPrediction":
        from repro.io import corun_prediction_from_dict

        return corun_prediction_from_dict(data)


class PerformanceModel:
    """Reuse-distance-based contention predictor.

    Args:
        ways: Associativity of the shared last-level cache the
            predictions are for.
        strategy: Equilibrium solver strategy (``auto`` / ``newton`` /
            ``bisection``).
        cache: Optional shared :class:`EquilibriumCache`.  Predictions
            are memoised per sorted (name, frequency-ratio) multiset,
            and cache misses warm-start Newton from the processes'
            most recent equilibrium sizes.  Omitted, the model owns a
            private cache; pass ``EquilibriumCache(max_entries=0)`` to
            disable caching, or one shared instance to several models
            (e.g. the per-domain models inside a
            :class:`~repro.core.combined.CombinedModel`) to pool their
            solutions.
    """

    def __init__(
        self,
        ways: int,
        strategy: str = "auto",
        cache: Optional[EquilibriumCache] = None,
    ):
        if ways < 1:
            raise ConfigurationError("ways must be >= 1")
        self.ways = ways
        self.strategy = strategy
        self.cache = cache if cache is not None else EquilibriumCache()
        self._features: Dict[str, FeatureVector] = {}
        self._occupancy_cache: Dict[str, OccupancyModel] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, feature: FeatureVector) -> None:
        """Register (or replace) a process's feature vector."""
        if feature.name in self._features:
            # Replacing a profile invalidates every cached solution
            # that could involve it; cache keys deliberately do not
            # carry profile contents, so drop everything.
            self.cache.clear()
        self._features[feature.name] = feature
        # Occupancy tables are pure functions of the histogram; build
        # once per registration.
        self._occupancy_cache[feature.name] = feature.occupancy_model(self.ways)

    def register_all(self, features: Sequence[FeatureVector]) -> None:
        for feature in features:
            self.register(feature)

    @property
    def known_processes(self) -> List[str]:
        return sorted(self._features)

    def feature(self, name: str) -> FeatureVector:
        try:
            return self._features[name]
        except KeyError:
            raise KeyError(
                f"no feature vector registered for {name!r}; "
                f"known: {self.known_processes}"
            ) from None

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _equilibrium_inputs(
        self,
        names: Sequence[str],
        frequency_ratios: Optional[Sequence[float]] = None,
    ) -> List[EquilibriumProcess]:
        if frequency_ratios is None:
            frequency_ratios = [1.0] * len(names)
        if len(frequency_ratios) != len(names):
            raise ConfigurationError(
                "frequency_ratios must have one entry per process"
            )
        inputs = []
        for name, ratio in zip(names, frequency_ratios):
            feature = self.feature(name)
            if ratio != 1.0:
                feature = feature.with_frequency_ratio(ratio)
            inputs.append(
                EquilibriumProcess(
                    occupancy=self._occupancy_cache[name],
                    mpa=feature.histogram.mpa,
                    api=feature.api,
                    alpha=feature.alpha,
                    beta=feature.beta,
                )
            )
        return inputs

    def predict(
        self,
        names: Sequence[str],
        frequency_ratios: Optional[Sequence[float]] = None,
    ) -> CoRunPrediction:
        """Predict the co-run steady state of the named processes.

        Each name is one *simultaneously running* process on its own
        core, all sharing one ``ways``-way cache.  Duplicate names are
        allowed (two instances of the same program).

        Args:
            names: Process names (feature vectors must be registered).
            frequency_ratios: Optional per-process core-clock ratios
                relative to the profiled clock, for heterogeneous
                machines — a faster core accesses the cache faster and
                wins a larger share, which the equilibrium captures
                through the rescaled Eq. 3 constants.
        """
        observer = get_observer()
        if not observer.enabled:
            # The disabled fast path adds exactly one global read and
            # one attribute check to PR 1's hot path; the obs-overhead
            # bench compares this wrapper against ``_predict_impl``.
            return self._predict_impl(names, frequency_ratios)
        with observer.span(
            "predict", processes=len(names), ways=self.ways
        ) as span:
            result = self._predict_impl(names, frequency_ratios)
            span.annotate(
                names=",".join(names),
                solver=result.solver,
                contended=result.contended,
            )
            observer.counter("predict.calls").inc()
            return result

    def _canonical_plan(
        self,
        names: Sequence[str],
        frequency_ratios: Optional[Sequence[float]],
    ) -> Tuple[List[str], List[float], Tuple, List[int]]:
        """Validate one mix; returns (canon_names, canon_ratios, key, slot).

        The equilibrium is order-independent, so solves are cached in
        canonical (sorted) order; ``slot[i]`` is the canonical position
        of original index ``i``, used to permute the solution back.
        Equal (name, ratio) duplicates are symmetric, making any
        consistent tie-break correct.
        """
        if not names:
            raise ConfigurationError("need at least one process name")
        if len(names) > self.ways:
            raise ConfigurationError(
                f"{len(names)} processes cannot share a {self.ways}-way cache"
            )
        if frequency_ratios is None:
            ratios: Tuple[float, ...] = (1.0,) * len(names)
        else:
            if len(frequency_ratios) != len(names):
                raise ConfigurationError(
                    "frequency_ratios must have one entry per process"
                )
            ratios = tuple(float(r) for r in frequency_ratios)
        order = sorted(range(len(names)), key=lambda i: (names[i], ratios[i]))
        canon_names = [names[i] for i in order]
        canon_ratios = [ratios[i] for i in order]
        key = (self.ways, self.strategy, tuple(zip(canon_names, canon_ratios)))
        slot = [0] * len(order)
        for pos, i in enumerate(order):
            slot[i] = pos
        return canon_names, canon_ratios, key, slot

    def _restore(
        self,
        names: Sequence[str],
        result: EquilibriumResult,
        slot: Sequence[int],
    ) -> CoRunPrediction:
        """Permute a canonical solution back to the caller's order."""
        restored = replace(
            result,
            sizes=tuple(result.sizes[slot[i]] for i in range(len(names))),
            mpas=tuple(result.mpas[slot[i]] for i in range(len(names))),
            spis=tuple(result.spis[slot[i]] for i in range(len(names))),
        )
        return self._package(names, restored)

    def _predict_impl(
        self,
        names: Sequence[str],
        frequency_ratios: Optional[Sequence[float]] = None,
    ) -> CoRunPrediction:
        """The uninstrumented predict (bench baseline for obs overhead)."""
        canon_names, canon_ratios, key, slot = self._canonical_plan(
            names, frequency_ratios
        )
        result = self.cache.get(key)
        if result is None:
            result = self._solve(canon_names, canon_ratios)
            self.cache.put(key, result)
            self.cache.record_sizes(canon_names, result.sizes)
        return self._restore(names, result, slot)

    def predict_batch(
        self,
        mixes: Sequence[Sequence[str]],
        frequency_ratios: Optional[Sequence[Optional[Sequence[float]]]] = None,
    ) -> Tuple[CoRunPrediction, ...]:
        """Predict many co-runs at once via the stacked batch solver.

        Equivalent to ``tuple(self.predict(mix) for mix in mixes)`` —
        payload-bit-identical per the
        :mod:`repro.core.batch_equilibrium` compatibility policy — but
        cache misses are solved as one stacked-numpy Newton problem
        instead of one scalar solve per mix.

        The sequential loop is used verbatim (no vectorization) when
        any of its order-dependent behaviours would be observable:
        warm-started caches (solution depends on solve order), the
        ``bisection`` strategy (nothing to vectorize), an enabled
        observer (per-mix ``predict`` spans keep their exact shape), or
        a batch too small to win.

        Cache-counter parity with the sequential loop holds for the
        totals: each mix performs exactly one ``get`` — the first
        occurrence of a repeated uncached mix probes (miss) before
        solving, later occurrences re-probe after the solution is
        stored (hit).  LRU *recency order* inside the cache may differ
        from the sequential loop's when hits and misses interleave, so
        eviction order under capacity pressure is the one sequential
        behaviour not reproduced.

        Args:
            mixes: Co-run combinations, each a sequence of names.
            frequency_ratios: Optional per-mix ratio sequences (one
                entry per mix; ``None`` entries mean homogeneous).
        """
        from repro.core.batch_equilibrium import BATCH_MIN_STACK

        mixes = [list(mix) for mix in mixes]
        if frequency_ratios is None:
            per_mix_ratios: List[Optional[Sequence[float]]] = [None] * len(mixes)
        else:
            if len(frequency_ratios) != len(mixes):
                raise ConfigurationError(
                    "frequency_ratios must have one entry per mix"
                )
            per_mix_ratios = list(frequency_ratios)
        if (
            len(mixes) < BATCH_MIN_STACK
            or self.cache.warm_start
            or self.strategy == "bisection"
            or get_observer().enabled
        ):
            return tuple(
                self.predict(mix, ratios)
                for mix, ratios in zip(mixes, per_mix_ratios)
            )
        plans = [
            self._canonical_plan(mix, ratios)
            for mix, ratios in zip(mixes, per_mix_ratios)
        ]
        # One get per mix, in order.  First occurrences of uncached
        # keys go to the batch solver; duplicates of a pending key
        # defer their (hitting) get until the solution is stored.
        pending: Dict[Tuple, int] = {}
        hits: Dict[int, EquilibriumResult] = {}
        deferred: List[int] = []
        for index, (_, _, key, _) in enumerate(plans):
            if key in pending:
                deferred.append(index)
                continue
            cached = self.cache.get(key)
            if cached is None:
                pending[key] = index
            else:
                hits[index] = cached
        if pending:
            solver = self._batch_solver()
            jobs = [
                self._equilibrium_inputs(plans[i][0], plans[i][1])
                for i in pending.values()
            ]
            solved = solver.solve_batch(jobs, self.ways)
            for (key, index), result in zip(pending.items(), solved):
                self.cache.put(key, result)
                self.cache.record_sizes(plans[index][0], result.sizes)
                hits[index] = result
        for index in deferred:
            hits[index] = self.cache.get(plans[index][2])
        return tuple(
            self._restore(mix, hits[index], plans[index][3])
            for index, mix in enumerate(mixes)
        )

    def _batch_solver(self):
        """Lazy per-model batch solver, rebuilt if ``strategy`` changed."""
        from repro.core.batch_equilibrium import BatchNewtonSolver

        solver = getattr(self, "_batch_solver_cache", None)
        if solver is None or solver.fallback_strategy != self.strategy:
            solver = BatchNewtonSolver(fallback_strategy=self.strategy)
            self._batch_solver_cache = solver
        return solver

    def _solve(
        self, names: Sequence[str], ratios: Sequence[float]
    ) -> EquilibriumResult:
        """Solve one (canonically ordered) co-run, warm-starting Newton."""
        inputs = self._equilibrium_inputs(names, ratios)
        initial = self.cache.suggest_initial(names, self.ways)
        try:
            return solve_equilibrium(
                inputs, self.ways, strategy=self.strategy, initial=initial
            )
        except ConvergenceError:
            if initial is None:
                raise
            # A stale warm start can strand Newton in a bad basin;
            # the cold proportional-demand start is the reference
            # behaviour, so retry from it before giving up.
            observer = get_observer()
            if observer.enabled:
                observer.counter("predict.cold_retries").inc()
            return solve_equilibrium(inputs, self.ways, strategy=self.strategy)

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the prediction cache."""
        return self.cache.stats

    def predict_solo(self, name: str) -> ProcessPrediction:
        """Predicted steady state of a process running alone."""
        return self.predict([name]).processes[0]

    def _package(
        self, names: Sequence[str], result: EquilibriumResult
    ) -> CoRunPrediction:
        predictions = tuple(
            ProcessPrediction(
                name=name,
                effective_size=size,
                mpa=mpa,
                spi=spi,
            )
            for name, size, mpa, spi in zip(
                names, result.sizes, result.mpas, result.spis
            )
        )
        return CoRunPrediction(
            processes=predictions, solver=result.solver, contended=result.contended
        )
