"""Time-sharing and multi-core power composition (paper Section 4.2).

Two rules close the gap between single-process core power and a
multi-programmed machine:

1. **Within a core** — context-switch transients are negligible (the
   paper measures the post-switch cache refill at ~1 % of a 20 ms
   timeslice), so a core's power is the timeslice-weighted mean of its
   processes' powers; with equal timeslices, the plain mean.
2. **Across cache-sharing cores** — with more than one process per
   core, each cross-core *process combination* runs for roughly equal
   total time, so the cores' combined power is the mean over all
   combinations (Eq. 10).
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence, Tuple

from repro.errors import ConfigurationError


def core_power_time_shared(
    process_powers: Sequence[float],
    weights: Sequence[float] = (),
) -> float:
    """Core power under round-robin time sharing.

    Args:
        process_powers: Power of each process when it holds the core.
        weights: Optional timeslice weights; defaults to equal shares
            (the paper's simplifying assumption).
    """
    if not process_powers:
        raise ConfigurationError("need at least one process power")
    if any(p < 0 for p in process_powers):
        raise ConfigurationError("powers must be non-negative")
    if not weights:
        return float(sum(process_powers) / len(process_powers))
    if len(weights) != len(process_powers):
        raise ConfigurationError("weights must match process_powers in length")
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ConfigurationError("weights must be non-negative with positive sum")
    total = sum(weights)
    return float(
        sum(p * w for p, w in zip(process_powers, weights)) / total
    )


def process_combinations(
    per_core_processes: Sequence[Sequence[str]],
) -> Tuple[Tuple[str, ...], ...]:
    """All cross-core process combinations (Eq. 10's index set).

    One process per busy core; cores are given in a fixed order and
    each combination is an ordered tuple aligned with that order.
    """
    if not per_core_processes:
        raise ConfigurationError("need at least one core")
    for processes in per_core_processes:
        if not processes:
            raise ConfigurationError("every busy core needs at least one process")
    return tuple(itertools.product(*per_core_processes))


def core_set_power(
    per_core_processes: Sequence[Sequence[str]],
    combination_power: Callable[[Tuple[str, ...]], float],
) -> float:
    """Average combined power of cache-sharing cores (Eq. 10).

    Args:
        per_core_processes: Process names per busy core.
        combination_power: Returns the summed power of the cores when
            one given combination runs simultaneously.
    """
    combos = process_combinations(per_core_processes)
    total = 0.0
    for combo in combos:
        power = combination_power(combo)
        if power < 0:
            raise ConfigurationError("combination power must be non-negative")
        total += power
    return total / len(combos)
