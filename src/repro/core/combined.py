"""The combined performance + power model (paper Section 5, Figure 1).

Estimates processor power for a *tentative* process-to-core assignment
before it runs, using only per-process profiling data.  The key
decomposition splits Eq. 9 by what cache contention can touch:

    P_process = P_idle + P1 + P2
    P1 = (c1·L1RPI + c4·BRPI + c5·FPPI) / SPI
    P2 = (c2·L2RPI + c3·L2RPI·L2MPR) / SPI

The per-instruction rates are fixed process properties recorded during
profiling; contention only moves SPI and L2MPR, and those two are
exactly what the performance model predicts.  Power for an assignment
then follows Figure 1: per cache domain, average the per-combination
powers over every cross-core process combination (Eq. 10), add idle
cores at ``P_idle``, and sum the domains (Eq. 11, where the other
domains are ``P_rest``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.feature import ProfileVector
from repro.core.performance_model import PerformanceModel
from repro.core.power_model import CorePowerModel
from repro.core.solver_cache import CacheStats, EquilibriumCache
from repro.core.timesharing import core_set_power, process_combinations
from repro.errors import ConfigurationError
from repro.events import Event
from repro.machine.topology import MachineTopology
from repro.obs import get_observer

Assignment = Mapping[int, Sequence[str]]


@dataclass(frozen=True)
class PowerSplit:
    """The P_idle / P1 / P2 decomposition of one process's power."""

    p_idle: float
    p1: float
    p2: float

    @property
    def total(self) -> float:
        return self.p_idle + self.p1 + self.p2


@dataclass(frozen=True)
class AssignmentPowerEstimate:
    """Predicted processor power for one tentative assignment."""

    watts: float
    per_domain_watts: Tuple[float, ...]
    combinations_evaluated: int


def classify_scenario(
    topology: MachineTopology, assignment: Assignment, core: int
) -> int:
    """Figure 1's four-way case split for assigning to ``core``.

    1: core and its partner set both idle; 2: core busy, partners
    idle; 3: core idle, partners busy; 4: both busy.
    """
    core_busy = bool(assignment.get(core))
    partners_busy = any(assignment.get(p) for p in topology.partners_of(core))
    if not core_busy and not partners_busy:
        return 1
    if core_busy and not partners_busy:
        return 2
    if not core_busy and partners_busy:
        return 3
    return 4


class CombinedModel:
    """Profiles-only processor-power estimator for assignments.

    Args:
        topology: The target machine.
        performance_models: One fitted
            :class:`~repro.core.performance_model.PerformanceModel`
            per cache domain (index-aligned with
            ``topology.domains``).  A single model may be passed if
            all domains share a geometry.
        power_model: Fitted Eq. 9 core power model.
        profiles: Per-process profiling vectors PF_i.
        corun_cache: Optional shared :class:`EquilibriumCache` for
            per-combination operating points.  Assignment searches
            revisit the same co-run combinations across candidate
            assignments, so passing one cache to several
            ``CombinedModel`` instances (or reusing it across
            searches) pools that work.  Omitted, the model owns a
            private cache.
    """

    def __init__(
        self,
        topology: MachineTopology,
        performance_models: Sequence[PerformanceModel],
        power_model: CorePowerModel,
        profiles: Mapping[str, ProfileVector],
        corun_cache: Optional[EquilibriumCache] = None,
    ):
        if len(performance_models) == 1:
            performance_models = list(performance_models) * len(topology.domains)
        if len(performance_models) != len(topology.domains):
            raise ConfigurationError(
                "need one performance model per cache domain (or a single "
                "shared one)"
            )
        for model, domain in zip(performance_models, topology.domains):
            if model.ways != domain.geometry.ways:
                raise ConfigurationError(
                    f"performance model ways ({model.ways}) do not match "
                    f"domain associativity ({domain.geometry.ways})"
                )
        self.topology = topology
        self.performance_models = list(performance_models)
        self.power_model = power_model
        self.profiles = dict(profiles)
        # Predicted operating points keyed by (domain, sorted co-run
        # multiset); bounded LRU with hit/miss telemetry, shareable
        # across models and assignment searches.
        self._corun_cache = (
            corun_cache if corun_cache is not None else EquilibriumCache()
        )

    @property
    def corun_cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the co-run operating-point cache."""
        return self._corun_cache.stats

    # ------------------------------------------------------------------
    # Process power from predicted SPI / L2MPR
    # ------------------------------------------------------------------
    def _profile(self, name: str) -> ProfileVector:
        try:
            return self.profiles[name]
        except KeyError:
            raise KeyError(
                f"no profile vector for {name!r}; known: {sorted(self.profiles)}"
            ) from None

    def process_power(self, name: str, spi: float, l2mpr: float) -> float:
        """Power of a core running ``name`` at a predicted operating point."""
        if spi <= 0:
            raise ConfigurationError("spi must be positive")
        profile = self._profile(name)
        ips = 1.0 / spi
        rates = {
            Event.L1_REFS: profile.l1rpi * ips,
            Event.L2_REFS: profile.l2rpi * ips,
            Event.L2_MISSES: profile.l2rpi * l2mpr * ips,
            Event.BRANCHES: profile.brpi * ips,
            Event.FP_OPS: profile.fppi * ips,
        }
        return self.power_model.core_power(rates)

    def power_split(self, name: str, spi: float, l2mpr: float) -> PowerSplit:
        """The Section 5 decomposition P_idle + P1 + P2 (for analysis)."""
        profile = self._profile(name)
        coeffs = self.power_model.coefficients
        ips = 1.0 / spi
        p1 = (
            coeffs["L1RPS"] * profile.l1rpi
            + coeffs["BRPS"] * profile.brpi
            + coeffs["FPPS"] * profile.fppi
        ) * ips
        p2 = (
            coeffs["L2RPS"] * profile.l2rpi
            + coeffs["L2MPS"] * profile.l2rpi * l2mpr
        ) * ips
        return PowerSplit(p_idle=self.power_model.p_idle, p1=p1, p2=p2)

    # ------------------------------------------------------------------
    # Co-run prediction with caching
    # ------------------------------------------------------------------
    def _predict_corun(
        self, domain_idx: int, combo: Tuple[str, ...]
    ) -> Dict[str, Tuple[float, float]]:
        """Predicted (SPI, L2MPR) per process name for one combination."""
        key = (domain_idx, tuple(sorted(combo)))
        cached = self._corun_cache.get(key)
        if cached is None:
            prediction = self.performance_models[domain_idx].predict(list(key[1]))
            cached = {
                p.name: (p.spi, p.l2mpr) for p in prediction.processes
            }
            self._corun_cache.put(key, cached)
        return cached

    def seed_corun(
        self,
        domain_idx: int,
        combo: Tuple[str, ...],
        operating: Mapping[str, Tuple[float, float]],
    ) -> None:
        """Pre-populate the operating-point cache for one combination.

        Batch frontends (the fleet evaluator) solve co-run closures
        through :class:`~repro.parallel.ParallelPredictor` and inject
        the results here, so assignment scoring never re-enters the
        equilibrium solver.  ``operating`` maps each name of ``combo``
        to its predicted ``(spi, l2mpr)``; existing entries win (the
        cache is cold-start deterministic, so they are identical
        anyway).
        """
        key = (domain_idx, tuple(sorted(combo)))
        if self._corun_cache.get(key) is None:
            self._corun_cache.put(key, dict(operating))

    # ------------------------------------------------------------------
    # Assignment power (Figure 1 + Eq. 10 + Eq. 11)
    # ------------------------------------------------------------------
    def estimate_assignment_power(self, assignment: Assignment) -> AssignmentPowerEstimate:
        """Predicted processor power for a full tentative assignment.

        ``assignment`` maps core id to the process names time-sharing
        that core; cores may be omitted or empty (idle).
        """
        observer = get_observer()
        if not observer.enabled:
            return self._estimate_assignment_power_impl(assignment)
        with observer.span(
            "combined.power",
            cores=len(assignment),
            processes=sum(len(names) for names in assignment.values()),
        ) as span:
            estimate = self._estimate_assignment_power_impl(assignment)
            span.annotate(
                watts=estimate.watts,
                combinations=estimate.combinations_evaluated,
            )
            observer.counter("combined.power_estimates").inc()
            observer.counter("combined.combinations").inc(
                estimate.combinations_evaluated
            )
            return estimate

    def _estimate_assignment_power_impl(
        self, assignment: Assignment
    ) -> AssignmentPowerEstimate:
        for core in assignment:
            if not 0 <= core < self.topology.num_cores:
                raise ConfigurationError(f"core {core} out of range")
        per_domain: List[float] = []
        combos_evaluated = 0
        for domain_idx, domain in enumerate(self.topology.domains):
            busy_cores = [c for c in domain.core_ids if assignment.get(c)]
            idle_cores = len(domain.core_ids) - len(busy_cores)
            watts = idle_cores * self.power_model.p_idle
            if len(busy_cores) == 1:
                # No cross-core cache contention in this domain: each
                # process runs as profiled; use the recorded P_alone
                # (Figure 1, scenario 1/2) averaged over timeslices.
                names = list(assignment[busy_cores[0]])
                watts += sum(self._profile(n).p_alone for n in names) / len(names)
            elif busy_cores:
                per_core_lists = [list(assignment[c]) for c in busy_cores]
                combos = process_combinations(per_core_lists)
                combos_evaluated += len(combos)

                def combination_power(combo: Tuple[str, ...]) -> float:
                    operating = self._predict_corun(domain_idx, combo)
                    return sum(
                        self.process_power(name, *operating[name]) for name in combo
                    )

                watts += core_set_power(per_core_lists, combination_power)
            per_domain.append(watts)
        return AssignmentPowerEstimate(
            watts=float(sum(per_domain)),
            per_domain_watts=tuple(per_domain),
            combinations_evaluated=combos_evaluated,
        )

    def estimate_after_assigning(
        self, assignment: Assignment, name: str, core: int
    ) -> Tuple[AssignmentPowerEstimate, int]:
        """Figure 1's incremental query: power if ``name`` joins ``core``.

        Returns the new-assignment estimate together with the Figure 1
        scenario number that applied.
        """
        scenario = classify_scenario(self.topology, assignment, core)
        new_assignment = {c: list(names) for c, names in assignment.items()}
        new_assignment.setdefault(core, []).append(name)
        return self.estimate_assignment_power(new_assignment), scenario

    # ------------------------------------------------------------------
    # Throughput (for energy-aware objectives)
    # ------------------------------------------------------------------
    def estimate_assignment_throughput(self, assignment: Assignment) -> float:
        """Predicted total instructions per second of an assignment.

        Within a domain, each cross-core combination is weighted
        equally (the Eq. 10 assumption); a process time-sharing a core
        with ``k - 1`` others runs ``1/k`` of the time.
        """
        observer = get_observer()
        if observer.enabled:
            observer.counter("combined.throughput_estimates").inc()
        total_ips = 0.0
        for domain_idx, domain in enumerate(self.topology.domains):
            busy_cores = [c for c in domain.core_ids if assignment.get(c)]
            if not busy_cores:
                continue
            per_core_lists = [list(assignment[c]) for c in busy_cores]
            if len(busy_cores) == 1:
                # No contention: each process runs as profiled, for
                # 1/k of the time when k processes share the core.
                model = self.performance_models[domain_idx]
                names = per_core_lists[0]
                time_share = 1.0 / len(names)
                for name in names:
                    total_ips += time_share * model.predict_solo(name).ips
                continue
            combos = process_combinations(per_core_lists)
            combo_ips = 0.0
            for combo in combos:
                operating = self._predict_corun(domain_idx, combo)
                combo_ips += sum(1.0 / operating[name][0] for name in combo)
            # The uniform average over combinations already encodes
            # the per-core time shares: a process on a core with k
            # residents appears in exactly len(combos)/k combinations
            # (every choice of its partners), so dividing the summed
            # per-combination IPS by len(combos) weights its mean
            # contended IPS by 1/k — the same weight the single-core
            # branch applies explicitly.  No separate share factor is
            # needed (an earlier version carried an unused one).
            total_ips += combo_ips / len(combos)
        return total_ips
