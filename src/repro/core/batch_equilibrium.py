"""Stacked-numpy batch equilibrium solver (many mixes, one Newton).

The paper's equilibrium system (Eq. 1 capacity constraint + Eq. 7
throughput-ratio conditions) is solved per co-run mix by
:class:`~repro.core.equilibrium.NewtonSolver` in plain Python floats —
the right call for one mix, but a batch of hundreds of mixes pays the
interpreter once per table lookup.  This module restates the *same*
damped Newton iteration over an ``(n_mixes, k)`` size matrix:

- the residual/Jacobian kernels gather from the profiles' tabulated
  growth curves (``OccupancyModel.growth_table``) and MPA tails
  (``ReuseDistanceHistogram.tail_table``), concatenated into flat
  arrays with per-cell offsets so one vector op serves every profile;
- the arrow-structured Jacobian (row 0 all ones, row i nonzero only
  at columns 0 and i) is eliminated column-by-column across the whole
  stack at once;
- convergence / failure are tracked per row: converged rows freeze
  (their state is kept, further full-stack evaluations of them are
  discarded), failed rows are excluded from the masks and retried on
  the scalar path — one row hitting a non-finite residual cannot
  poison its siblings, because every kernel op is element-wise.

Bit-compatibility policy
------------------------
Batched rows are **bit-identical** to the scalar
``solve_equilibrium(..., strategy=...)`` result for the payload fields
``sizes``, ``mpas``, ``spis``, ``solver``, ``iterations`` and
``contended``.  This is achieved by replicating the scalar path's
IEEE-754 float64 operation ordering exactly, not by a tolerance:

- table interpolation is hand-rolled as ``t[lo]*(1-frac) + t[lo+1]*frac``
  (``np.interp`` rounds differently and is *not* used);
- ``np.searchsorted(side="left")`` matches ``bisect_left``, and
  ``astype(int64)`` matches ``int()`` truncation for the non-negative
  sizes the solver iterates over;
- sums accumulate column-by-column in the scalar loop's left-to-right
  order; the damping ladder is exact powers of two; clamps apply
  ``max`` before ``min`` exactly as the scalar line search does;
- the post-convergence Eq. 1 closure reuses the *same*
  ``_redistribute_to_capacity`` routine, row by row.

The property test in ``tests/test_batch_equilibrium.py`` enforces the
policy with ``==`` on every payload field.  Telemetry is the one
documented divergence: ``telemetry.solver`` is ``"batch_newton"`` and
``telemetry.residual_norm`` is the stacked residual norm at the
converged iterate (before the Eq. 1 closure), whereas the scalar path
re-evaluates the residual after closure.  Telemetry is observability
metadata, not result payload, and is excluded from the bit-compat
guarantee.

Fallback ladder
---------------
A row leaves the stack and is solved by the ordinary scalar
:func:`~repro.core.equilibrium.solve_equilibrium` (with this solver's
``fallback_strategy``) when any of these hold:

- its curves are not sniffable as tabulated histogram/occupancy pairs
  (custom ``mpa`` callables, explicit ``mpa_slope`` overrides,
  subclassed models — anything whose scalar evaluation the kernels
  cannot replicate bit-for-bit);
- it is uncontended (the scalar short-circuit is already cheap);
- fewer than ``min_stack`` rows share its process count ``k`` (numpy
  overhead would exceed the win);
- its Newton iteration fails (non-finite residual, singular Jacobian,
  exhausted line search or iteration budget) — mirroring the scalar
  solver's own failure → fallback behaviour.

Two caveats worth knowing: frozen rows still ride along in full-stack
evaluations (their results are discarded — the fixed gather indices
are what keep the kernels cheap), so a single stubborn row makes the
whole stack iterate with it; and the per-row damping line search
evaluates the full stack once per halving round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.equilibrium import (
    NEWTON_DOMAIN_FLOOR,
    EquilibriumProcess,
    EquilibriumResult,
    NewtonSolver,
    SolverTelemetry,
    _redistribute_to_capacity,
    solve_equilibrium,
)
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.occupancy import OccupancyModel
from repro.errors import ConfigurationError

__all__ = ["BATCH_MIN_STACK", "BatchNewtonSolver"]

#: Smallest same-``k`` stack worth vectorizing; below this the numpy
#: call overhead exceeds the interpreter savings and rows take the
#: scalar path instead.
BATCH_MIN_STACK = 4

#: The one histogram method the batch kernels replicate; identity is
#: checked (not name) so subclass overrides never sneak onto the
#: vector path.
_HISTOGRAM_MPA = ReuseDistanceHistogram.mpa


class _TableRegistry:
    """Growth/tail tables of every distinct profile, concatenated flat.

    A *profile* is a (``OccupancyModel``, ``ReuseDistanceHistogram``)
    pair.  The registry pins the objects (so ``id()`` keys stay
    unique), keeps each table, and maintains flat concatenations plus
    per-profile constants so the batch kernels can gather any mix of
    profiles with plain integer offsets.
    """

    def __init__(self) -> None:
        self._index: Dict[Tuple[int, int], int] = {}
        self._pins: List[Tuple[OccupancyModel, ReuseDistanceHistogram]] = []
        self.growth_arrays: List[np.ndarray] = []
        self.tail_arrays: List[np.ndarray] = []
        self._dirty = True
        self.growth_flat: Optional[np.ndarray] = None
        self.tail_flat: Optional[np.ndarray] = None
        self.g_off: Optional[np.ndarray] = None
        self.g_len: Optional[np.ndarray] = None
        self.g_first: Optional[np.ndarray] = None
        self.g_last: Optional[np.ndarray] = None
        self.g_sat_cut: Optional[np.ndarray] = None
        self.inv_g_first: Optional[np.ndarray] = None
        self.t_off: Optional[np.ndarray] = None
        self.t_top_i: Optional[np.ndarray] = None
        self.t_top_f: Optional[np.ndarray] = None
        self.tail_at_top: Optional[np.ndarray] = None

    def lookup(self, process: EquilibriumProcess) -> Optional[int]:
        """Profile index for a batchable process, ``None`` otherwise.

        Only exact :class:`OccupancyModel` / bound
        ``ReuseDistanceHistogram.mpa`` pairs with no explicit
        ``mpa_slope`` override qualify — subclasses or custom callables
        could evaluate differently from the tables, which would break
        the bit-compat guarantee, so they take the scalar path.
        """
        occ = process.occupancy
        if type(occ) is not OccupancyModel:
            return None
        if process.mpa_slope is not None:
            return None
        mpa = process.mpa
        try:
            owner = mpa.__self__
            func = mpa.__func__
        except AttributeError:
            return None
        if func is not _HISTOGRAM_MPA or type(owner) is not ReuseDistanceHistogram:
            return None
        key = (id(occ), id(owner))
        index = self._index.get(key)
        if index is None:
            index = len(self.growth_arrays)
            self._index[key] = index
            self._pins.append((occ, owner))
            self.growth_arrays.append(np.asarray(occ.growth_table, dtype=float))
            self.tail_arrays.append(np.asarray(owner.tail_table, dtype=float))
            self._dirty = True
        return index

    def ensure_flat(self) -> None:
        if not self._dirty:
            return
        g_sizes = [g.size for g in self.growth_arrays]
        t_sizes = [t.size for t in self.tail_arrays]
        self.growth_flat = np.concatenate(self.growth_arrays)
        self.tail_flat = np.concatenate(self.tail_arrays)
        self.g_off = np.array(
            [0] + list(np.cumsum(g_sizes[:-1])), dtype=np.int64
        )
        self.g_len = np.array(g_sizes, dtype=np.int64)
        self.g_first = np.array([g[0] for g in self.growth_arrays])
        self.g_last = np.array([g[-1] for g in self.growth_arrays])
        # growth[-1] - 1e-12 / 1.0 / growth[0]: the same float64 ops the
        # scalar g_inverse performs, done once per profile.
        self.g_sat_cut = self.g_last - 1e-12
        self.inv_g_first = 1.0 / self.g_first
        self.t_off = np.array(
            [0] + list(np.cumsum(t_sizes[:-1])), dtype=np.int64
        )
        self.t_top_i = np.array([t.size - 1 for t in self.tail_arrays], dtype=np.int64)
        self.t_top_f = self.t_top_i.astype(float)
        self.tail_at_top = np.array([t[-1] for t in self.tail_arrays])
        self._dirty = False


class _StackState:
    """Residual state of one full-stack evaluation (see ``_Stack.evaluate``)."""

    __slots__ = ("res", "norm", "n", "spi", "gslope", "mslope")

    def __init__(self, res, norm, n, spi, gslope, mslope):
        self.res = res
        self.norm = norm
        self.n = n
        self.spi = spi
        self.gslope = gslope
        self.mslope = mslope

    def merge_rows(self, other: "_StackState", rows: np.ndarray) -> None:
        """Adopt ``other``'s state for the masked rows (line-search accept)."""
        cols = rows[:, None]
        np.copyto(self.res, other.res, where=cols)
        np.copyto(self.norm, other.norm, where=rows)
        np.copyto(self.n, other.n, where=cols)
        np.copyto(self.spi, other.spi, where=cols)
        np.copyto(self.gslope, other.gslope, where=cols)
        np.copyto(self.mslope, other.mslope, where=cols)


class _Stack:
    """All same-``k`` rows of one batch, stacked for vector kernels."""

    def __init__(
        self,
        registry: _TableRegistry,
        processes: List[List[EquilibriumProcess]],
        profiles: List[List[int]],
        total_ways: int,
    ):
        registry.ensure_flat()
        self.registry = registry
        self.processes = processes
        self.total_ways = total_ways
        self.m = len(processes)
        self.k = len(processes[0])
        prof = np.array(profiles, dtype=np.int64)
        pf = prof.reshape(-1)
        # Per-cell table constants (gathered once; iteration kernels
        # reuse them every evaluation).
        self.g_off = registry.g_off[pf]
        self.g_len = registry.g_len[pf]
        self.g_first = registry.g_first[pf]
        self.g_sat_cut = registry.g_sat_cut[pf]
        self.inv_g_first = registry.inv_g_first[pf]
        self.t_off = registry.t_off[pf]
        self.t_top_i = registry.t_top_i[pf]
        self.t_top_f = registry.t_top_f[pf]
        self.tail_at_top = registry.tail_at_top[pf]
        self.sat = registry.g_last[pf].reshape(self.m, self.k)
        # searchsorted is 1-D per table: group flat cells by profile.
        order = np.argsort(pf, kind="stable")
        sorted_pf = pf[order]
        bounds = np.flatnonzero(np.diff(sorted_pf)) + 1
        self.groups = [
            (registry.growth_arrays[int(pf[cells[0]])], cells)
            for cells in np.split(order, bounds)
        ]
        self.api_flat = np.array([p.api for row in processes for p in row])
        self.alpha_flat = np.array([p.alpha for row in processes for p in row])
        self.beta_flat = np.array([p.beta for row in processes for p in row])
        self.api = self.api_flat.reshape(self.m, self.k)
        self.alpha = self.alpha_flat.reshape(self.m, self.k)
        self.beta = self.beta_flat.reshape(self.m, self.k)
        # Hoisted iteration constants (one array op saved per use).
        self.alpha_neg = -self.alpha
        self.g_len_m1 = self.g_len - 1
        self.g_off_m1 = self.g_off - 1

    # ------------------------------------------------------------------
    # Kernels — every op mirrors the scalar path bit-for-bit
    # ------------------------------------------------------------------
    def _mpa_kernel(self, flat_sizes: np.ndarray, cells: np.ndarray):
        """Histogram ``mpa`` and ``mpa_slope`` at the given flat cells.

        Replicates ``ReuseDistanceHistogram.mpa`` exactly: clamp to the
        tail top beyond the support, otherwise the two-sided lerp
        ``tail[lo]*(1-frac) + tail[lo+1]*frac`` with ``lo = int(size)``.
        """
        tail_flat = self.registry.tail_flat
        top_mask = flat_sizes >= self.t_top_f[cells]
        lo = np.minimum(flat_sizes.astype(np.int64), self.t_top_i[cells] - 1)
        t_lo = tail_flat[self.t_off[cells] + lo]
        t_hi = tail_flat[self.t_off[cells] + lo + 1]
        frac = flat_sizes - lo
        mval = t_lo * (1.0 - frac) + t_hi * frac
        mval = np.where(top_mask, self.tail_at_top[cells], mval)
        mslope = np.where(top_mask, 0.0, t_hi - t_lo)
        return mval, mslope

    def evaluate(self, x: np.ndarray) -> _StackState:
        """Full-stack residual + Jacobian-ingredient evaluation.

        Mirrors the ``evaluate`` closure of
        ``NewtonSolver._solve_analytic`` (residual entries, left-to-right
        capacity sum, squared-norm accumulation order) plus the
        ``g_inverse_slope`` / ``mpa_slope`` lookups the Jacobian pass
        needs — the masks and segment indices are shared, so the extra
        slope outputs cost two vector ops, not a second table walk.
        Rows whose state is junk (frozen or failed) evaluate to junk
        harmlessly: all ops are element-wise, so no row contaminates
        another.
        """
        m, k = self.m, self.k
        s = x.reshape(-1)
        with np.errstate(all="ignore"):
            # --- g_inverse + g_inverse_slope (grouped searchsorted) ---
            idx = np.empty(s.size, dtype=np.int64)
            for growth, cells in self.groups:
                idx[cells] = np.searchsorted(growth, s[cells], side="left")
            sat_mask = s >= self.g_sat_cut
            below = (s <= self.g_first) & ~sat_mask
            idx_c = np.minimum(np.maximum(idx, 1), self.g_len_m1)
            growth_flat = self.registry.growth_flat
            g_lo = growth_flat[self.g_off_m1 + idx_c]
            g_hi = growth_flat[self.g_off + idx_c]
            span = g_hi - g_lo
            flat_seg = span <= 0.0
            nval = idx_c + (s - g_lo) / span
            nval = np.where(flat_seg, (idx_c + 1).astype(float), nval)
            nval = np.where(below, s / self.g_first, nval)
            nval = np.where(sat_mask, np.inf, nval)
            gslope = np.where(flat_seg, np.inf, 1.0 / span)
            gslope = np.where(below, self.inv_g_first, gslope)
            gslope = np.where(sat_mask, np.inf, gslope)
            # --- mpa + mpa_slope -------------------------------------
            mval, mslope = self._mpa_kernel(s, slice(None))
            spi = self.alpha_flat * mval + self.beta_flat
            rate = self.api_flat / spi
            # --- residual assembly (scalar accumulation order) -------
            n2 = nval.reshape(m, k)
            rate2 = rate.reshape(m, k)
            n1 = n2[:, 0]
            rate1 = rate2[:, 0]
            ok = np.isfinite(n1) & (n1 > 0.0)
            # Eq. 7 entries for all columns in one 2-D pass; the
            # element-wise products/divides are the scalar loop's ops
            # verbatim, just issued per-matrix instead of per-column.
            nc = n2[:, 1:]
            good = ok[:, None] & np.isfinite(nc) & (nc > 0.0)
            value = np.where(
                good,
                (n1[:, None] * rate2[:, 1:]) / (nc * rate1[:, None]) - 1.0,
                np.inf,
            )
            res = np.empty((m, k))
            res[:, 1:] = value
            # The capacity sum and squared-norm accumulate column-by-
            # column in the scalar's left-to-right order (float addition
            # is not associative; a tree reduction would change bits).
            total = x[:, 0].copy()
            for c in range(1, k):
                total += x[:, c]
            vsq = value * value
            sq = np.zeros(m)
            for c in range(k - 1):
                sq += vsq[:, c]
            res0 = total - self.total_ways
            res[:, 0] = res0
            sq += res0 * res0
            norm = np.sqrt(sq)
        return _StackState(
            res=res,
            norm=norm,
            n=n2,
            spi=spi.reshape(m, k),
            gslope=gslope.reshape(m, k),
            mslope=mslope.reshape(m, k),
        )

    def final_curves(self, x: np.ndarray, rows: np.ndarray):
        """``mpas``/``spis`` at the closed sizes for the given rows.

        The vectorized equivalent of ``_finish``'s per-process
        ``p.mpa(s)`` / ``p.alpha * m + p.beta``.
        """
        k = self.k
        cells = (rows[:, None] * k + np.arange(k)).reshape(-1)
        with np.errstate(all="ignore"):
            mval, _ = self._mpa_kernel(x.reshape(-1), cells)
            spis = self.alpha_flat[cells] * mval + self.beta_flat[cells]
        return mval.reshape(rows.size, k), spis.reshape(rows.size, k)


class BatchNewtonSolver:
    """Damped Newton over a stack of equilibrium systems at once.

    Args:
        tol / max_iterations: Must match the scalar
            :class:`NewtonSolver` defaults for bit-compatibility (they
            do by default; override both paths together or not at all).
        fallback_strategy: Strategy handed to
            :func:`solve_equilibrium` for rows the stack cannot or did
            not solve (see the module docstring's fallback ladder).
        min_stack: Smallest same-``k`` row group worth vectorizing.
    """

    name = "batch_newton"

    def __init__(
        self,
        tol: float = 1e-7,
        max_iterations: int = 120,
        fallback_strategy: str = "auto",
        min_stack: int = BATCH_MIN_STACK,
    ):
        if fallback_strategy not in ("auto", "newton", "bisection"):
            raise ConfigurationError(
                f"unknown strategy {fallback_strategy!r}; "
                "choose newton, bisection or auto"
            )
        self.tol = tol
        self.max_iterations = max_iterations
        self.fallback_strategy = fallback_strategy
        self.min_stack = max(1, int(min_stack))
        self._tables = _TableRegistry()

    def solve_batch(
        self,
        batch: Sequence[Sequence[EquilibriumProcess]],
        total_ways: int,
    ) -> List[EquilibriumResult]:
        """Solve every co-run in ``batch`` against one shared cache.

        Returns one :class:`EquilibriumResult` per input row, in order,
        each bit-identical (payload fields) to
        ``solve_equilibrium(row, total_ways, strategy=fallback_strategy)``.
        Exceptions (validation errors, rows where even the fallback
        fails) propagate exactly as the equivalent scalar loop would
        raise them.
        """
        jobs = [list(row) for row in batch]
        results: List[Optional[EquilibriumResult]] = [None] * len(jobs)
        if self.fallback_strategy == "bisection":
            # Nothing to vectorize: the batch kernels implement Newton.
            return [self._fallback(row, total_ways) for row in jobs]
        stacks: Dict[int, List[int]] = {}
        profiles: List[Optional[List[int]]] = [None] * len(jobs)
        scalar_rows: List[int] = []
        # The sniff test runs once per process per batch (hundreds of
        # times per call), so its hit path is inlined and minimal: an
        # id-keyed registry hit already proved the exact types at
        # registration (the registry pins both objects, so a live id
        # can only be the registered object); the per-process
        # ``mpa_slope`` / ``__func__`` identities are all that can
        # differ between processes sharing a profile.  Misses take the
        # registry's full ``lookup``.
        lookup = self._tables.lookup
        index_get = self._tables._index.get
        for index, row in enumerate(jobs):
            if not row or total_ways < len(row):
                # Scalar path raises the canonical validation error.
                scalar_rows.append(index)
                continue
            prof: List[Optional[int]] = []
            for p in row:
                mpa = p.mpa
                if (
                    p.mpa_slope is None
                    and getattr(mpa, "__func__", None) is _HISTOGRAM_MPA
                ):
                    pi = index_get((id(p.occupancy), id(mpa.__self__)))
                    prof.append(pi if pi is not None else lookup(p))
                else:
                    prof.append(None)
                    break
            if None in prof:
                scalar_rows.append(index)
                continue
            profiles[index] = prof  # type: ignore[assignment]
            stacks.setdefault(len(row), []).append(index)
        for _, members in sorted(stacks.items()):
            if len(members) < self.min_stack:
                scalar_rows.extend(members)
                continue
            unsolved = self._solve_stack(jobs, profiles, members, total_ways, results)
            scalar_rows.extend(unsolved)
        for index in sorted(scalar_rows):
            results[index] = self._fallback(jobs[index], total_ways)
        return results  # type: ignore[return-value]

    def _fallback(
        self, processes: List[EquilibriumProcess], total_ways: int
    ) -> EquilibriumResult:
        return solve_equilibrium(
            processes, total_ways, strategy=self.fallback_strategy
        )

    def _solve_stack(
        self,
        jobs: List[List[EquilibriumProcess]],
        profiles: List[Optional[List[int]]],
        members: List[int],
        total_ways: int,
        results: List[Optional[EquilibriumResult]],
    ) -> List[int]:
        """Newton-iterate one same-``k`` stack; returns unsolved rows."""
        stack = _Stack(
            self._tables,
            [jobs[i] for i in members],
            [profiles[i] for i in members],  # type: ignore[list-item]
            total_ways,
        )
        m, k = stack.m, stack.k
        lo = NEWTON_DOMAIN_FLOOR
        with np.errstate(all="ignore"):
            # Uncontended rows short-circuit on the (cheap) scalar path.
            demand = np.minimum(stack.sat, float(total_ways))
            total_demand = demand[:, 0].copy()
            for c in range(1, k):
                total_demand += demand[:, c]
            contended = total_demand > total_ways + 1e-9
            if not contended.all():
                keep = np.flatnonzero(contended)
                if keep.size < self.min_stack:
                    return list(members)
                uncontended_rows = [
                    members[i] for i in np.flatnonzero(~contended)
                ]
                members = [members[i] for i in keep]
                stack = _Stack(
                    self._tables,
                    [jobs[i] for i in members],
                    [profiles[i] for i in members],  # type: ignore[list-item]
                    total_ways,
                )
                m = stack.m
                demand = demand[keep]
                total_demand = total_demand[keep]
            else:
                uncontended_rows = []
            # Start guess and domain caps: same ops as the scalar
            # _proportional_start / _newton_caps, stacked.
            caps = np.minimum(stack.sat - 1e-3, total_ways - lo * (k - 1))
            scale = total_ways / total_demand
            x = np.minimum(np.maximum(demand * scale[:, None], lo), caps)

            state = stack.evaluate(x)
            active = np.ones(m, dtype=bool)
            converged_at = np.zeros(m, dtype=np.int64)
            for iteration in range(1, self.max_iterations + 1):
                # Scalar order: the finite check precedes the tol check.
                nonfinite = active & ~np.isfinite(state.norm)
                active &= ~nonfinite
                newly_converged = active & (state.norm < self.tol)
                converged_at[newly_converged] = iteration
                active &= ~newly_converged
                if not active.any():
                    break
                # --- arrow Jacobian + elimination, all rows at once ---
                # Per-cell log-derivatives for every column in three 2-D
                # ops (the scalar loop's exact expression, issued
                # matrix-wide); only the running denominator/numerator
                # stay as a column loop, because float addition order is
                # part of the bit contract.
                res = state.res
                nlog = state.gslope / state.n
                rlog = stack.alpha_neg * state.mslope / state.spi
                head = nlog[:, 0] - rlog[:, 0]
                q = res + 1.0
                b_cols = q * (rlog - nlog)
                a_cols = q * head[:, None]
                b_tail = b_cols[:, 1:]
                bad = active & (
                    ~np.isfinite(head)
                    | ((b_tail == 0.0) | ~np.isfinite(b_tail)).any(axis=1)
                )
                ab = a_cols / b_cols
                rb = res / b_cols
                denom = np.ones(m)
                num = -res[:, 0]
                for c in range(1, k):
                    denom = denom - ab[:, c]
                    num = num + rb[:, c]
                bad |= active & (
                    (denom == 0.0) | ~np.isfinite(denom) | ~np.isfinite(num)
                )
                d1 = num / denom
                delta = np.empty((m, k))
                delta[:, 0] = d1
                delta[:, 1:] = (-res[:, 1:] - a_cols[:, 1:] * d1[:, None]) / b_tail
                bad |= active & ~np.isfinite(delta).all(axis=1)
                active &= ~bad
                if not active.any():
                    break
                # --- damped line search, per-row damping ladder -------
                pending = active.copy()
                damping = np.ones(m)
                x_prev = x
                x = x.copy()
                for _ in range(30):
                    # Non-pending rows get junk trial values; harmless —
                    # evaluation is element-wise and only ``accepted``
                    # (⊆ pending) rows are ever merged back.
                    trial = np.minimum(
                        np.maximum(x_prev + damping[:, None] * delta, lo), caps
                    )
                    trial_state = stack.evaluate(trial)
                    accepted = pending & (trial_state.norm < state.norm)
                    if accepted.any():
                        x[accepted] = trial[accepted]
                        state.merge_rows(trial_state, accepted)
                        pending &= ~accepted
                    if not pending.any():
                        break
                    damping[pending] *= 0.5
                # Rows that exhausted the 30 halvings fail like the
                # scalar "line search failed".
                active &= ~pending
                if not active.any():
                    break
            # Rows still active exhausted the iteration budget → fallback.
        solved = np.flatnonzero(converged_at > 0)
        unsolved = [members[i] for i in np.flatnonzero(converged_at == 0)]
        if solved.size == 0:
            return unsolved
        # Endgame: close Eq. 1 per row.  The well-conditioned case of
        # ``_redistribute_to_capacity`` — no entry saturates, one
        # proportional pass closes within roundoff — is a fixed float64
        # op sequence, so it vectorizes bit-exactly: clamp, left-to-right
        # free sum, one scale, gap check.  Rows that hit a cap or leave
        # a gap above the 1e-12 closure threshold rerun through the
        # scalar routine (identical bits by construction: the vector
        # pass only *commits* when it took the scalar fast path).
        total_f = float(total_ways)
        with np.errstate(all="ignore"):
            xs = x[solved]
            caps_s = caps[solved]
            caps_sum = caps_s[:, 0].copy()
            for c in range(1, k):
                caps_sum += caps_s[:, c]
            need = caps_sum > total_f
            clamped = np.minimum(xs, caps_s)
            free_sum = clamped[:, 0].copy()
            for c in range(1, k):
                free_sum += clamped[:, c]
            scale_r = total_f / free_sum
            scaled = clamped * scale_r[:, None]
            out_sum = scaled[:, 0].copy()
            for c in range(1, k):
                out_sum += scaled[:, c]
            gap = total_f - out_sum
            tol_r = 1e-12 * max(1.0, abs(total_f))
            fast = (
                need
                & (free_sum > 0.0)
                & ~(scaled >= caps_s).any(axis=1)
                & (np.abs(gap) <= tol_r)
            )
        closed = np.where(need[:, None], scaled, xs)
        for out_row in np.flatnonzero(need & ~fast):
            closed[out_row] = _redistribute_to_capacity(
                xs[out_row].tolist(), caps_s[out_row].tolist(), total_f
            )
        mpas, spis = stack.final_curves(closed, solved)
        strategy_label = self.fallback_strategy
        # Result construction is the batch's largest fixed per-row cost
        # (two frozen dataclasses per row, 512 per 256-mix batch), so
        # the hot loop avoids both per-row numpy indexing (whole-matrix
        # ``.tolist()`` yields the exact same Python floats as per-row
        # ``.tolist()``) and the frozen-dataclass ``__init__``, whose
        # per-field ``object.__setattr__`` calls alone cost more than
        # the rest of the loop.  ``__dict__.update`` on a bare instance
        # produces field-for-field identical objects (``==``/``hash``
        # read the same attributes) at less than half the cost; every
        # field is assigned explicitly, defaults included.
        closed_l = closed.tolist()
        mpas_l = mpas.tolist()
        spis_l = spis.tolist()
        norm_l = state.norm.tolist()
        conv_l = converged_at.tolist()
        batch_name = self.name
        scalar_name = NewtonSolver.name
        new = object.__new__
        for out_row, row in enumerate(solved):
            iterations = int(conv_l[row])
            telemetry = new(SolverTelemetry)
            telemetry.__dict__.update(
                strategy=strategy_label,
                solver=batch_name,
                jacobian="analytic",
                iterations=iterations,
                residual_norm=norm_l[row],
                warm_started=False,
                fallback_reason=None,
            )
            result = new(EquilibriumResult)
            result.__dict__.update(
                sizes=tuple(closed_l[out_row]),
                mpas=tuple(mpas_l[out_row]),
                spis=tuple(spis_l[out_row]),
                solver=scalar_name,
                iterations=iterations,
                contended=True,
                telemetry=telemetry,
            )
            results[members[row]] = result
        for index in uncontended_rows:
            unsolved.append(index)
        return unsolved
