"""Effective-cache-size growth model (paper Section 3.2, Eqs. 4–5).

Starting from an empty cache, the probability ``P_{i,n}`` that a
process occupies ``i`` ways of a set after ``n`` of its own accesses
obeys the recursion

    P_{i,n} = P_{i,n-1} * (1 - MPA(i)) + P_{i-1,n-1} * MPA(i-1)

(a miss grows the occupancy by one way, a hit leaves it unchanged),
with ``P_{1,1} = 1`` and the top size absorbing (a full process evicts
its own lines).  The expected occupancy ``G(n) = Σ i·P_{i,n}`` is a
monotone growth curve; its inverse ``G⁻¹(S)`` — the number of accesses
needed to reach occupancy ``S`` — is what the equilibrium condition of
Section 3.3 ratios between co-running processes.

The curve is tabulated once per (histogram, associativity) pair; all
queries are table interpolations.  Scalar queries use plain-float
arithmetic with :mod:`bisect` (the equilibrium solvers call them in a
tight loop), batched queries use :func:`numpy.interp`, and the solver's
analytic Jacobian reads the tabulated derivative via
:meth:`OccupancyModel.g_inverse_slope`.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.core.histogram import ReuseDistanceHistogram
from repro.errors import ConfigurationError

#: Steps of the growth recursion run between saturation checks.  The
#: recursion is inherently sequential, so the win is amortising the
#: Python-level bookkeeping (stop-condition checks, buffer growth)
#: over a block of pure-numpy updates.
_GROWTH_CHUNK = 512


class OccupancyModel:
    """Growth curve G(n) and inverse for one process.

    Args:
        histogram: The process's reuse-distance histogram.
        max_ways: Associativity ``A`` of the shared cache; occupancy
            is capped here (absorbing state).
        max_accesses: Iteration budget for the recursion.  The curve
            stops early once it saturates (either at ``A`` or at the
            process's finite footprint where MPA reaches zero).
        saturation_tol: Growth-per-access threshold below which the
            curve is considered saturated.
    """

    def __init__(
        self,
        histogram: ReuseDistanceHistogram,
        max_ways: int,
        max_accesses: int = 400_000,
        saturation_tol: float = 1e-9,
    ):
        if max_ways < 1:
            raise ConfigurationError("max_ways must be >= 1")
        if max_accesses < 1:
            raise ConfigurationError("max_accesses must be >= 1")
        self.histogram = histogram
        self.max_ways = max_ways
        # MPA at integer sizes 0..A; the recursion only uses 0..A-1.
        self._mpa = histogram.mpa_batch(np.arange(max_ways + 1, dtype=float))
        self._growth = self._compute_growth(max_accesses, saturation_tol)
        # Scalar queries interpolate on a plain list (5x faster than
        # numpy scalar indexing); batched queries on padded arrays
        # that include the (n=0, S=0) origin.
        self._growth_list = self._growth.tolist()
        n = self._growth.size
        self._g_xp = np.arange(n + 1, dtype=float)  # n = 0, 1, ..., len
        self._g_fp = np.concatenate(([0.0], self._growth))

    def _compute_growth(self, max_accesses: int, tol: float) -> np.ndarray:
        a = self.max_ways
        mpa = self._mpa
        # p[i] = P(occupancy == i after n accesses), i in 0..A.
        p = np.zeros(a + 1)
        p[1] = 1.0  # the first access always installs one line
        scratch = np.empty_like(p)
        sizes = np.arange(a + 1, dtype=float)
        stay = 1.0 - mpa  # probability occupancy stays (hit) at size i
        g_prev = float(sizes @ p)
        chunks = [np.array([g_prev])]
        remaining = max_accesses - 1
        chunk = 32  # ramp up so quickly-saturating curves stop early
        while remaining > 0:
            steps = min(chunk, remaining)
            chunk = min(chunk * 2, _GROWTH_CHUNK)
            buf = np.empty(steps)
            for s in range(steps):
                np.multiply(p, stay, out=scratch)
                scratch[1:] += p[:-1] * mpa[:-1]
                # Absorbing top: a full process evicts itself, stays A.
                scratch[a] = p[a] + p[a - 1] * mpa[a - 1]
                p, scratch = scratch, p
                buf[s] = sizes @ p
            # Same stop rule as the step-wise recursion: saturated at
            # A, or growth-per-access below tol.
            prev = np.concatenate(([g_prev], buf[:-1]))
            stops = np.nonzero((buf >= a - 1e-9) | (buf - prev < tol))[0]
            if stops.size:
                chunks.append(buf[: stops[0] + 1])
                break
            chunks.append(buf)
            g_prev = float(buf[-1])
            remaining -= steps
        return np.concatenate(chunks)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def saturation_size(self) -> float:
        """Occupancy the process converges to with no competition.

        Equals ``A`` for processes whose footprint exceeds the cache,
        or the finite footprint where the MPA curve reaches zero.
        """
        return float(self._growth[-1])

    @property
    def table_length(self) -> int:
        """Number of access steps tabulated before saturation."""
        return int(self._growth.shape[0])

    @property
    def growth_table(self) -> np.ndarray:
        """The tabulated growth curve G(1..table_length) (read-only)."""
        view = self._growth.view()
        view.flags.writeable = False
        return view

    def g(self, n: float) -> float:
        """Expected occupancy after ``n`` accesses (Eq. 5), n >= 0.

        Linear interpolation between tabulated integer access counts;
        beyond the table the curve is flat at the saturation size.
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if n == 0:
            return 0.0
        growth = self._growth_list
        # growth[k] corresponds to n = k + 1 accesses.
        idx = n - 1.0
        if idx >= len(growth) - 1:
            return growth[-1]
        if idx < 0:
            # 0 < n < 1: interpolate from G(0) = 0 to G(1).  (Checked
            # on idx, not int(idx): int() truncates toward zero, so
            # int(-0.5) == 0 would skip this branch.)
            return growth[0] * n
        lo = int(idx)
        frac = idx - lo
        return growth[lo] * (1.0 - frac) + growth[lo + 1] * frac

    def g_batch(self, n) -> np.ndarray:
        """Vectorized :meth:`g` over an array of access counts."""
        arr = np.asarray(n, dtype=float)
        if np.any(arr < 0):
            raise ConfigurationError("n must be non-negative")
        return np.interp(arr, self._g_xp, self._g_fp)

    def g_inverse(self, size: float) -> float:
        """Accesses needed to first reach occupancy ``size`` (G⁻¹).

        Returns ``inf`` for sizes at or beyond saturation — such an
        occupancy is never reached from below in finite time.
        """
        if size < 0:
            raise ConfigurationError("size must be non-negative")
        if size == 0:
            return 0.0
        growth = self._growth_list
        if size >= growth[-1] - 1e-12:
            return float("inf")
        if size <= growth[0]:
            # Between 0 accesses (size 0) and 1 access (size growth[0]).
            return size / growth[0]
        idx = bisect_left(growth, size)
        g_lo, g_hi = growth[idx - 1], growth[idx]
        if g_hi <= g_lo:
            return float(idx + 1)
        # Table index k means n = k + 1.
        return idx + (size - g_lo) / (g_hi - g_lo)

    def g_inverse_batch(self, sizes) -> np.ndarray:
        """Vectorized :meth:`g_inverse` over an array of sizes."""
        arr = np.asarray(sizes, dtype=float)
        if np.any(arr < 0):
            raise ConfigurationError("size must be non-negative")
        growth = self._growth
        out = np.empty(arr.shape)
        saturated = arr >= growth[-1] - 1e-12
        below = (arr <= growth[0]) & ~saturated
        mid = ~(saturated | below)
        out[saturated] = np.inf
        out[below] = arr[below] / growth[0]
        if np.any(mid):
            values = arr[mid]
            idx = np.searchsorted(growth, values, side="left")
            g_lo = growth[idx - 1]
            g_hi = growth[idx]
            span = g_hi - g_lo
            flat = span <= 0
            frac = (values - g_lo) / np.where(flat, 1.0, span)
            out[mid] = np.where(flat, idx + 1.0, idx + frac)
        return out

    def g_inverse_slope(self, size: float) -> float:
        """Derivative d G⁻¹/dS of the tabulated inverse growth curve.

        The reciprocal of the growth-table increment on the segment
        :meth:`g_inverse` interpolates over; ``inf`` at or beyond
        saturation (where G⁻¹ itself is infinite) and on degenerate
        flat segments.  Used by the equilibrium solver's analytic
        Jacobian.
        """
        if size < 0:
            raise ConfigurationError("size must be non-negative")
        growth = self._growth_list
        if size >= growth[-1] - 1e-12:
            return float("inf")
        if size <= growth[0]:
            return 1.0 / growth[0]
        idx = bisect_left(growth, size)
        span = growth[idx] - growth[idx - 1]
        if span <= 0:
            return float("inf")
        return 1.0 / span

    def mpa_at(self, size: float) -> float:
        """Convenience: the histogram's MPA at a (fractional) size."""
        return self.histogram.mpa(size)
