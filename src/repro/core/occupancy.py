"""Effective-cache-size growth model (paper Section 3.2, Eqs. 4–5).

Starting from an empty cache, the probability ``P_{i,n}`` that a
process occupies ``i`` ways of a set after ``n`` of its own accesses
obeys the recursion

    P_{i,n} = P_{i,n-1} * (1 - MPA(i)) + P_{i-1,n-1} * MPA(i-1)

(a miss grows the occupancy by one way, a hit leaves it unchanged),
with ``P_{1,1} = 1`` and the top size absorbing (a full process evicts
its own lines).  The expected occupancy ``G(n) = Σ i·P_{i,n}`` is a
monotone growth curve; its inverse ``G⁻¹(S)`` — the number of accesses
needed to reach occupancy ``S`` — is what the equilibrium condition of
Section 3.3 ratios between co-running processes.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import ReuseDistanceHistogram
from repro.errors import ConfigurationError


class OccupancyModel:
    """Growth curve G(n) and inverse for one process.

    Args:
        histogram: The process's reuse-distance histogram.
        max_ways: Associativity ``A`` of the shared cache; occupancy
            is capped here (absorbing state).
        max_accesses: Iteration budget for the recursion.  The curve
            stops early once it saturates (either at ``A`` or at the
            process's finite footprint where MPA reaches zero).
        saturation_tol: Growth-per-access threshold below which the
            curve is considered saturated.
    """

    def __init__(
        self,
        histogram: ReuseDistanceHistogram,
        max_ways: int,
        max_accesses: int = 400_000,
        saturation_tol: float = 1e-9,
    ):
        if max_ways < 1:
            raise ConfigurationError("max_ways must be >= 1")
        if max_accesses < 1:
            raise ConfigurationError("max_accesses must be >= 1")
        self.histogram = histogram
        self.max_ways = max_ways
        # MPA at integer sizes 0..A; the recursion only uses 0..A-1.
        self._mpa = np.array([histogram.mpa(i) for i in range(max_ways + 1)])
        self._growth = self._compute_growth(max_accesses, saturation_tol)

    def _compute_growth(self, max_accesses: int, tol: float) -> np.ndarray:
        a = self.max_ways
        mpa = self._mpa
        # p[i] = P(occupancy == i after n accesses), i in 0..A.
        p = np.zeros(a + 1)
        p[1] = 1.0  # the first access always installs one line
        sizes = np.arange(a + 1, dtype=float)
        growth = [float(sizes @ p)]
        stay = 1.0 - mpa  # probability occupancy stays (hit) at size i
        for _ in range(1, max_accesses):
            new_p = p * stay
            new_p[1:] += p[:-1] * mpa[:-1]
            # Absorbing top: a full process evicts itself, size stays A.
            new_p[a] = p[a] + p[a - 1] * mpa[a - 1]
            p = new_p
            g = float(sizes @ p)
            growth.append(g)
            if g >= a - 1e-9 or g - growth[-2] < tol:
                break
        return np.asarray(growth)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def saturation_size(self) -> float:
        """Occupancy the process converges to with no competition.

        Equals ``A`` for processes whose footprint exceeds the cache,
        or the finite footprint where the MPA curve reaches zero.
        """
        return float(self._growth[-1])

    @property
    def table_length(self) -> int:
        """Number of access steps tabulated before saturation."""
        return int(self._growth.shape[0])

    def g(self, n: float) -> float:
        """Expected occupancy after ``n`` accesses (Eq. 5), n >= 0.

        Linear interpolation between tabulated integer access counts;
        beyond the table the curve is flat at the saturation size.
        """
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        if n == 0:
            return 0.0
        growth = self._growth
        # growth[k] corresponds to n = k + 1 accesses.
        idx = n - 1.0
        if idx >= growth.size - 1:
            return float(growth[-1])
        lo = int(idx)
        frac = idx - lo
        if lo < 0:
            # 0 < n < 1: interpolate from G(0) = 0 to G(1).
            return float(growth[0] * n)
        return float(growth[lo] * (1.0 - frac) + growth[lo + 1] * frac)

    def g_inverse(self, size: float) -> float:
        """Accesses needed to first reach occupancy ``size`` (G⁻¹).

        Returns ``inf`` for sizes at or beyond saturation — such an
        occupancy is never reached from below in finite time.
        """
        if size < 0:
            raise ConfigurationError("size must be non-negative")
        if size == 0:
            return 0.0
        growth = self._growth
        if size >= growth[-1] - 1e-12:
            return float("inf")
        if size <= growth[0]:
            # Between 0 accesses (size 0) and 1 access (size growth[0]).
            return float(size / growth[0])
        idx = int(np.searchsorted(growth, size, side="left"))
        g_lo, g_hi = growth[idx - 1], growth[idx]
        if g_hi <= g_lo:
            return float(idx + 1)
        frac = (size - g_lo) / (g_hi - g_lo)
        return float(idx + frac) + 0.0  # table index k means n = k + 1

    def mpa_at(self, size: float) -> float:
        """Convenience: the histogram's MPA at a (fractional) size."""
        return self.histogram.mpa(size)
