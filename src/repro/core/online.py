"""On-line refinement of the Eq. 3 constants from runtime HPC samples.

The paper emphasises that its profiling can be done on-line: when a
new application appears it is profiled once, and thereafter ordinary
HPC sampling keeps the model honest.  This module provides that
maintenance loop:

- :class:`OnlineSpiCalibrator` — recursive least squares (with a
  forgetting factor) on runtime ``(MPA, SPI)`` observations, seeded
  from the profiled prior, so α and β track slow drift without
  re-running the stressmark sweep.
- :func:`windows_to_observations` — extract those observations from a
  core's HPC sample stream (valid while one process owns the core).
- A *drift score*: the recent prediction error of the prior model,
  in standard deviations; a persistent excursion means the process
  changed behaviour (e.g. a new phase) and deserves re-profiling.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.spi import SpiModel
from repro.errors import ConfigurationError
from repro.events import Event
from repro.machine.hpc import HpcSample


def windows_to_observations(
    samples: Sequence[HpcSample],
    min_l2_refs: float = 100.0,
) -> List[Tuple[float, float]]:
    """Per-window ``(MPA, SPI)`` pairs from a core's HPC samples.

    Valid while a single process owns the core for the whole window
    (the paper's 1-process-per-core monitoring case).  Windows with
    too little L2 traffic are skipped — their MPA estimate is noise.
    """
    observations = []
    for sample in samples:
        refs = sample.rates[Event.L2_REFS] * sample.duration
        instructions = sample.rates[Event.INSTRUCTIONS] * sample.duration
        if refs < min_l2_refs or instructions <= 0:
            continue
        mpa = sample.rates[Event.L2_MISSES] / sample.rates[Event.L2_REFS]
        spi = sample.duration / instructions
        observations.append((float(np.clip(mpa, 0.0, 1.0)), spi))
    return observations


class OnlineSpiCalibrator:
    """Recursive least squares for ``SPI = alpha * MPA + beta``.

    Args:
        prior: The profiled Eq. 3 model to start from.
        prior_weight: Effective number of observations the prior is
            worth; higher = slower to move off the profile.
        forgetting: Exponential forgetting factor in (0, 1]; values
            below 1 let the calibrator track drift.
    """

    def __init__(
        self,
        prior: SpiModel,
        prior_weight: float = 50.0,
        forgetting: float = 0.99,
    ):
        if prior_weight <= 0:
            raise ConfigurationError("prior_weight must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ConfigurationError("forgetting must be within (0, 1]")
        self.prior = prior
        self._lambda = forgetting
        # theta = [alpha, beta]; information form seeded by the prior.
        self._theta = np.array([prior.alpha, prior.beta], dtype=float)
        # Prior information matrix: prior_weight pseudo-observations
        # spread over the MPA range.
        pseudo_x = np.array([[0.25, 1.0], [0.75, 1.0]])
        self._p_inv = prior_weight * (pseudo_x.T @ pseudo_x)
        self._p = np.linalg.inv(self._p_inv)
        self._residuals: List[float] = []
        self.observations = 0

    def observe(self, mpa: float, spi: float) -> None:
        """Fold one runtime observation into the estimate."""
        if not 0.0 <= mpa <= 1.0:
            raise ConfigurationError("mpa must be within [0, 1]")
        if spi <= 0:
            raise ConfigurationError("spi must be positive")
        x = np.array([mpa, 1.0])
        predicted = float(x @ self._theta)
        error = spi - predicted
        self._residuals.append(error)
        if len(self._residuals) > 64:
            self._residuals.pop(0)
        # RLS update with forgetting.
        px = self._p @ x
        gain = px / (self._lambda + float(x @ px))
        self._theta = self._theta + gain * error
        self._p = (self._p - np.outer(gain, px)) / self._lambda
        self.observations += 1

    def observe_many(self, observations: Sequence[Tuple[float, float]]) -> None:
        for mpa, spi in observations:
            self.observe(mpa, spi)

    @property
    def model(self) -> SpiModel:
        """Current Eq. 3 estimate (clamped to physical ranges)."""
        alpha = max(0.0, float(self._theta[0]))
        beta = max(1e-18, float(self._theta[1]))
        return SpiModel(alpha=alpha, beta=beta)

    def drift_score(self) -> float:
        """Recent |bias| of the *prior* model in residual sigmas.

        A score persistently above ~3 means the process no longer
        matches its profile (phase change, input change) and should be
        re-profiled rather than merely recalibrated.
        """
        if len(self._residuals) < 8:
            return 0.0
        residuals = np.asarray(self._residuals)
        prior_pred_errors = residuals  # residuals vs evolving theta
        sigma = float(np.std(prior_pred_errors))
        if sigma == 0:
            return 0.0
        # Compare recent window against the prior's prediction.
        return abs(float(np.mean(prior_pred_errors[-16:]))) / (
            sigma / np.sqrt(min(16, len(prior_pred_errors)))
        )
