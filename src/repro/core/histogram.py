"""Reuse-distance histograms (paper Section 3.1, Eq. 2).

The paper defines the *reuse distance* of a cache line as the number of
distinct lines in the same set accessed between two consecutive
accesses to it.  Under LRU, an access with reuse distance ``d`` hits
iff the process holds more than ``d`` ways, so for an effective cache
size ``S`` (ways) the misses-per-access is the histogram's upper tail:

    MPA(S) = P(distance >= S)        (discrete form of Eq. 2)

Cold (first-touch) and streaming accesses have no finite reuse
distance; their probability mass is tracked separately as
:attr:`ReuseDistanceHistogram.inf_mass` and always counts as a miss.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

Distance = Union[int, float]  # float only for math.inf


class ReuseDistanceHistogram:
    """Discrete reuse-distance distribution with an infinity bucket.

    Args:
        probs: ``probs[d]`` is the probability of reuse distance ``d``
            (distinct same-set lines between consecutive accesses).
        inf_mass: Probability of an infinite reuse distance (cold or
            streaming accesses that can never hit).

    The distribution is normalised on construction; supplying all-zero
    mass is an error.
    """

    def __init__(self, probs: Sequence[float], inf_mass: float = 0.0):
        arr = np.asarray(probs, dtype=float)
        if arr.ndim != 1:
            raise ConfigurationError("probs must be one-dimensional")
        if arr.size == 0:
            arr = np.zeros(1)
        if np.any(arr < -1e-12) or inf_mass < -1e-12:
            raise ConfigurationError("histogram mass must be non-negative")
        arr = np.clip(arr, 0.0, None)
        inf_mass = max(0.0, float(inf_mass))
        total = arr.sum() + inf_mass
        if total <= 0.0:
            raise ConfigurationError("histogram has no probability mass")
        self._probs = arr / total
        self._inf_mass = inf_mass / total
        # Upper tail: _tail[d] = P(distance >= d), finite part only.
        finite_tail = np.concatenate(
            [np.cumsum(self._probs[::-1])[::-1], [0.0]]
        )
        self._tail = finite_tail + self._inf_mass
        # Hot-path helpers: the equilibrium solvers evaluate mpa()
        # millions of times with scalar arguments, where plain-float
        # indexing beats numpy scalar arithmetic by ~5x; batched
        # callers interpolate on the integer support instead.
        self._tail_list = self._tail.tolist()
        self._support = np.arange(self._tail.size, dtype=float)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(
        cls, counts: Mapping[Distance, float], inf_count: float = 0.0
    ) -> "ReuseDistanceHistogram":
        """Build from raw ``distance -> count`` observations.

        Keys of ``math.inf`` are folded into the infinity bucket.
        """
        finite: Dict[int, float] = {}
        inf_total = float(inf_count)
        for distance, count in counts.items():
            if count < 0:
                raise ConfigurationError("counts must be non-negative")
            if distance == float("inf"):
                inf_total += count
            else:
                d = int(distance)
                if d < 0:
                    raise ConfigurationError("distances must be non-negative")
                finite[d] = finite.get(d, 0.0) + count
        max_d = max(finite) if finite else 0
        probs = np.zeros(max_d + 1)
        for d, count in finite.items():
            probs[d] = count
        return cls(probs, inf_total)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[Distance, float]]
    ) -> "ReuseDistanceHistogram":
        """Build from ``(distance, probability)`` pairs."""
        return cls.from_counts(dict(pairs))

    @classmethod
    def point_mass(cls, distance: int) -> "ReuseDistanceHistogram":
        """Distribution concentrated at a single distance.

        This is exactly the histogram of the stressmark: a cyclic sweep
        over ``w`` lines per set has every reuse distance equal to
        ``w - 1``.
        """
        probs = np.zeros(distance + 1)
        probs[distance] = 1.0
        return cls(probs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def probs(self) -> np.ndarray:
        """Finite-distance probabilities (read-only view)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def inf_mass(self) -> float:
        """Probability of cold/streaming (never-hitting) accesses."""
        return self._inf_mass

    @property
    def max_distance(self) -> int:
        """Largest finite distance with support."""
        nonzero = np.nonzero(self._probs)[0]
        return int(nonzero[-1]) if nonzero.size else 0

    def probability(self, distance: int) -> float:
        """P(distance == d)."""
        if distance < 0:
            raise ConfigurationError("distance must be non-negative")
        if distance >= self._probs.size:
            return 0.0
        return float(self._probs[distance])

    @property
    def tail_table(self) -> np.ndarray:
        """Upper tail ``P(distance >= d)`` for ``d = 0..top`` (read-only).

        ``mpa(size)`` linearly interpolates this table on the integer
        support and flattens at ``tail_table[-1]`` (= :attr:`inf_mass`)
        beyond it.  The batched equilibrium kernels
        (:mod:`repro.core.batch_equilibrium`) gather from this table to
        replicate :meth:`mpa` / :meth:`mpa_slope` bit-for-bit.
        """
        view = self._tail.view()
        view.flags.writeable = False
        return view

    def mpa(self, size: float) -> float:
        """Misses per access at effective cache size ``size`` (ways).

        Implements the discrete Eq. 2 with linear interpolation between
        integer sizes so the equilibrium solver sees a continuous,
        monotonically non-increasing function.  ``mpa(0)`` is 1.0 (no
        space means every access misses); beyond the histogram support
        it flattens at :attr:`inf_mass`.
        """
        if size < 0:
            raise ConfigurationError("size must be non-negative")
        tail = self._tail_list
        top = len(tail) - 1
        if size >= top:
            return tail[top]
        lo = int(size)
        frac = size - lo
        return tail[lo] * (1.0 - frac) + tail[lo + 1] * frac

    def mpa_batch(self, sizes) -> np.ndarray:
        """Vectorized :meth:`mpa` over an array of sizes.

        Element-wise identical to calling :meth:`mpa` per entry;
        clamps at :attr:`inf_mass` beyond the histogram support.
        """
        arr = np.asarray(sizes, dtype=float)
        if np.any(arr < 0):
            raise ConfigurationError("size must be non-negative")
        return np.interp(arr, self._support, self._tail)

    def mpa_slope(self, size: float) -> float:
        """Right-hand derivative of the piecewise-linear MPA curve.

        The slope of the tail segment ``[floor(size), floor(size)+1)``
        — the convention :meth:`mpa` interpolates with — and 0 beyond
        the histogram support where the curve is flat at
        :attr:`inf_mass`.  Used by the equilibrium solver's analytic
        Jacobian.
        """
        if size < 0:
            raise ConfigurationError("size must be non-negative")
        tail = self._tail_list
        top = len(tail) - 1
        if size >= top:
            return 0.0
        lo = int(size)
        return tail[lo + 1] - tail[lo]

    def mpa_curve(self, max_size: int) -> np.ndarray:
        """Vector of ``mpa(s)`` for integer ``s`` in ``0..max_size``."""
        return self.mpa_batch(np.arange(max_size + 1, dtype=float))

    def mean_distance(self) -> float:
        """Mean finite reuse distance, conditioned on being finite.

        Returns ``inf`` if all mass is in the infinity bucket.
        """
        finite = self._probs.sum()
        if finite <= 0.0:
            return float("inf")
        distances = np.arange(self._probs.size)
        return float((distances * self._probs).sum() / finite)

    def percentile(self, q: float) -> float:
        """Smallest size S with MPA(S) <= 1 - q (the q-quantile).

        Returns ``inf`` when even an unbounded cache cannot reach hit
        probability ``q`` because of the infinity bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("q must be within [0, 1]")
        target = 1.0 - q
        if self._inf_mass > target + 1e-15:
            return float("inf")
        for s, tail in enumerate(self._tail):
            if tail <= target + 1e-15:
                return float(s)
        return float(len(self._tail) - 1)

    def footprint(self, coverage: float = 0.999) -> int:
        """Distance covering ``coverage`` of the finite mass.

        A proxy for the process's working-set size in ways per set.
        """
        finite = self._probs.sum()
        if finite <= 0.0:
            return 0
        cum = np.cumsum(self._probs) / finite
        return int(np.searchsorted(cum, coverage) + 1)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def truncated(self, max_distance: int) -> "ReuseDistanceHistogram":
        """Fold all mass beyond ``max_distance`` into the inf bucket.

        This is what stressmark profiling can actually observe: a sweep
        over an ``A``-way cache cannot distinguish distances >= ``A``.
        """
        if max_distance < 0:
            raise ConfigurationError("max_distance must be non-negative")
        keep = self._probs[: max_distance + 1]
        folded = self._probs[max_distance + 1:].sum() + self._inf_mass
        return ReuseDistanceHistogram(keep.copy(), folded)

    def mixed_with(
        self, other: "ReuseDistanceHistogram", weight: float
    ) -> "ReuseDistanceHistogram":
        """Convex mixture: ``weight`` of ``self``, rest of ``other``."""
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError("weight must be within [0, 1]")
        size = max(self._probs.size, other._probs.size)
        mixed = np.zeros(size)
        mixed[: self._probs.size] += weight * self._probs
        mixed[: other._probs.size] += (1.0 - weight) * other._probs
        inf_mixed = weight * self._inf_mass + (1.0 - weight) * other._inf_mass
        return ReuseDistanceHistogram(mixed, inf_mixed)

    def close_to(self, other: "ReuseDistanceHistogram", atol: float = 1e-9) -> bool:
        """True if both distributions match within ``atol`` per bucket."""
        size = max(self._probs.size, other._probs.size)
        mine = np.zeros(size)
        mine[: self._probs.size] = self._probs
        theirs = np.zeros(size)
        theirs[: other._probs.size] = other._probs
        return bool(
            np.allclose(mine, theirs, atol=atol)
            and abs(self._inf_mass - other._inf_mass) <= atol
        )

    def __repr__(self) -> str:
        return (
            f"ReuseDistanceHistogram(max_distance={self.max_distance}, "
            f"inf_mass={self._inf_mass:.4f})"
        )
