"""Three-layer sigmoid neural-network power model.

Section 4.1 of the paper compares its MVLR model against "a
three-layer sigmoid activation function neural network" and finds the
NN only marginally better (96.8 % vs 96.2 %), justifying the simpler
linear model.  This is that comparator: a single sigmoid hidden layer
with a linear output, trained with full-batch Adam on standardized
inputs/targets.  Deterministic given the seed.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.power_model import PowerTrainingSet, rate_vector
from repro.errors import ConfigurationError, ModelNotFittedError
from repro.events import Event


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class NeuralPowerModel:
    """Input(5) -> sigmoid hidden -> linear output regression network.

    Args:
        hidden: Hidden-layer width.
        epochs: Full-batch training epochs.
        learning_rate: Adam step size.
        seed: Weight-initialisation seed.
    """

    def __init__(
        self,
        hidden: int = 10,
        epochs: int = 4000,
        learning_rate: float = 0.01,
        seed: int = 0,
    ):
        if hidden < 1:
            raise ConfigurationError("hidden must be >= 1")
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self._params: Optional[Tuple[np.ndarray, ...]] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self.final_loss: Optional[float] = None

    @property
    def fitted(self) -> bool:
        return self._params is not None

    def fit(self, training: PowerTrainingSet) -> "NeuralPowerModel":
        """Train on the same rows the MVLR model uses."""
        x, y = training.as_arrays()
        if x.shape[0] < 8:
            raise ConfigurationError("need at least 8 training rows")
        self._x_mean = x.mean(axis=0)
        self._x_std = x.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        xn = (x - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std

        rng = np.random.default_rng(self.seed)
        n_in = x.shape[1]
        w1 = rng.normal(0, 1.0 / np.sqrt(n_in), size=(n_in, self.hidden))
        b1 = np.zeros(self.hidden)
        w2 = rng.normal(0, 1.0 / np.sqrt(self.hidden), size=(self.hidden, 1))
        b2 = np.zeros(1)
        params = [w1, b1, w2, b2]
        moments1 = [np.zeros_like(p) for p in params]
        moments2 = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        n = xn.shape[0]
        target = yn[:, None]

        for step in range(1, self.epochs + 1):
            hidden_pre = xn @ params[0] + params[1]
            hidden_act = _sigmoid(hidden_pre)
            output = hidden_act @ params[2] + params[3]
            err = output - target
            # Mean-squared-error gradients.
            grad_out = 2.0 * err / n
            g_w2 = hidden_act.T @ grad_out
            g_b2 = grad_out.sum(axis=0)
            grad_hidden = (grad_out @ params[2].T) * hidden_act * (1.0 - hidden_act)
            g_w1 = xn.T @ grad_hidden
            g_b1 = grad_hidden.sum(axis=0)
            grads = [g_w1, g_b1, g_w2, g_b2]
            for i, grad in enumerate(grads):
                moments1[i] = beta1 * moments1[i] + (1 - beta1) * grad
                moments2[i] = beta2 * moments2[i] + (1 - beta2) * grad * grad
                m_hat = moments1[i] / (1 - beta1**step)
                v_hat = moments2[i] / (1 - beta2**step)
                params[i] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        self._params = tuple(params)
        final = _sigmoid(xn @ params[0] + params[1]) @ params[2] + params[3]
        self.final_loss = float(np.mean((final - target) ** 2))
        return self

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise ModelNotFittedError("neural power model is not fitted yet")

    def predict_rows(self, rows: Sequence[Sequence[float]]) -> np.ndarray:
        """Predicted per-core power for raw rate rows."""
        self._require_fitted()
        x = np.asarray(rows, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        xn = (x - self._x_mean) / self._x_std
        w1, b1, w2, b2 = self._params
        out = _sigmoid(xn @ w1 + b1) @ w2 + b2
        return out[:, 0] * self._y_std + self._y_mean

    def core_power(self, rates: Mapping[Event, float]) -> float:
        """Predicted power of one core from its event rates."""
        return float(self.predict_rows([list(rate_vector(rates))])[0])

    def accuracy(self, training: PowerTrainingSet) -> float:
        """1 - mean(|error|/|truth|), as quoted by the paper."""
        x, y = training.as_arrays()
        if np.any(y == 0):
            raise ConfigurationError("accuracy undefined for zero targets")
        predictions = self.predict_rows(x)
        return float(1.0 - np.mean(np.abs(predictions - y) / np.abs(y)))
