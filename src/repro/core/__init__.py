"""The paper's contribution: performance, power, and combined models.

- Performance (Section 3): :class:`~repro.core.performance_model.PerformanceModel`
  over :class:`~repro.core.histogram.ReuseDistanceHistogram`,
  :class:`~repro.core.occupancy.OccupancyModel` and the equilibrium
  solvers in :mod:`~repro.core.equilibrium`.
- Power (Section 4): :class:`~repro.core.power_model.CorePowerModel`
  (MVLR, Eq. 9), :class:`~repro.core.neural.NeuralPowerModel`
  (comparator), and the time-sharing rules in
  :mod:`~repro.core.timesharing`.
- Combined (Section 5): :class:`~repro.core.combined.CombinedModel`
  and the assignment searchers in :mod:`~repro.core.assignment`.
"""

from repro.core.assignment import (
    AssignmentDecision,
    OBJECTIVES,
    exhaustive_assignment,
    greedy_assignment,
)
from repro.core.combined import (
    AssignmentPowerEstimate,
    CombinedModel,
    PowerSplit,
    classify_scenario,
)
from repro.core.batch_equilibrium import BatchNewtonSolver
from repro.core.equilibrium import (
    BisectionSolver,
    EquilibriumProcess,
    EquilibriumResult,
    NewtonSolver,
    SolverTelemetry,
    solve_equilibrium,
)
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.mpa import MissRatioCurve
from repro.core.neural import NeuralPowerModel
from repro.core.occupancy import OccupancyModel
from repro.core.online import OnlineSpiCalibrator, windows_to_observations
from repro.core.partitioning import (
    PartitionPlan,
    even_partition,
    optimal_partition,
)
from repro.core.performance_model import (
    CoRunPrediction,
    PerformanceModel,
    ProcessPrediction,
)
from repro.core.power_model import CorePowerModel, PowerTrainingSet, rate_vector
from repro.core.regression import LinearRegression
from repro.core.solver_cache import CacheStats, EquilibriumCache
from repro.core.spi import SpiModel, fit_spi_model
from repro.core.timesharing import (
    core_power_time_shared,
    core_set_power,
    process_combinations,
)

__all__ = [
    "ReuseDistanceHistogram",
    "MissRatioCurve",
    "OccupancyModel",
    "EquilibriumProcess",
    "EquilibriumResult",
    "NewtonSolver",
    "BatchNewtonSolver",
    "BisectionSolver",
    "SolverTelemetry",
    "solve_equilibrium",
    "EquilibriumCache",
    "CacheStats",
    "SpiModel",
    "fit_spi_model",
    "FeatureVector",
    "ProfileVector",
    "PerformanceModel",
    "CoRunPrediction",
    "ProcessPrediction",
    "LinearRegression",
    "CorePowerModel",
    "PowerTrainingSet",
    "rate_vector",
    "NeuralPowerModel",
    "core_power_time_shared",
    "core_set_power",
    "process_combinations",
    "CombinedModel",
    "PowerSplit",
    "AssignmentPowerEstimate",
    "classify_scenario",
    "AssignmentDecision",
    "OBJECTIVES",
    "exhaustive_assignment",
    "greedy_assignment",
    "OnlineSpiCalibrator",
    "windows_to_observations",
    "PartitionPlan",
    "optimal_partition",
    "even_partition",
]
