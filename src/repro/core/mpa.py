"""Miss-ratio (misses-per-access) curves.

Profiling (paper Section 3.4) does not observe a reuse-distance
histogram directly; it observes MPA at a sweep of effective cache
sizes.  :class:`MissRatioCurve` represents that measured curve, keeps
it monotone (a cache can only get better with more space), and
converts to and from :class:`~repro.core.histogram.ReuseDistanceHistogram`
via the finite-difference relation of Eq. 8:

    hist(S) ~= MPA(S) - MPA(S + 1)
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.histogram import ReuseDistanceHistogram
from repro.errors import ConfigurationError, ProfilingError


class MissRatioCurve:
    """Piecewise-linear, monotonically non-increasing MPA(S) curve.

    Args:
        sizes: Effective cache sizes (ways), strictly increasing.
        mpas: Measured misses-per-access at each size, within [0, 1].
        enforce_monotone: Replace the measured values with their
            running minimum (isotonic clamp).  Raw measurements are
            noisy; a non-monotone curve would imply a negative
            histogram bucket in Eq. 8.
    """

    def __init__(
        self,
        sizes: Sequence[float],
        mpas: Sequence[float],
        enforce_monotone: bool = True,
    ):
        size_arr = np.asarray(sizes, dtype=float)
        mpa_arr = np.asarray(mpas, dtype=float)
        if size_arr.ndim != 1 or size_arr.shape != mpa_arr.shape:
            raise ConfigurationError("sizes and mpas must be 1-D and equal length")
        if size_arr.size < 2:
            raise ConfigurationError("need at least two sweep points")
        if np.any(np.diff(size_arr) <= 0):
            raise ConfigurationError("sizes must be strictly increasing")
        if np.any(size_arr < 0):
            raise ConfigurationError("sizes must be non-negative")
        if np.any((mpa_arr < -1e-9) | (mpa_arr > 1 + 1e-9)):
            raise ConfigurationError("MPA values must lie within [0, 1]")
        mpa_arr = np.clip(mpa_arr, 0.0, 1.0)
        if enforce_monotone:
            mpa_arr = np.minimum.accumulate(mpa_arr)
        elif np.any(np.diff(mpa_arr) > 1e-9):
            raise ProfilingError("MPA curve is not monotone non-increasing")
        self._sizes = size_arr
        self._mpas = mpa_arr

    @classmethod
    def from_histogram(
        cls, histogram: ReuseDistanceHistogram, max_size: int
    ) -> "MissRatioCurve":
        """Evaluate Eq. 2 at integer sizes ``0..max_size``."""
        sizes = np.arange(max_size + 1, dtype=float)
        return cls(sizes, histogram.mpa_curve(max_size))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def mpas(self) -> np.ndarray:
        view = self._mpas.view()
        view.flags.writeable = False
        return view

    def mpa(self, size: float) -> float:
        """Interpolated MPA at ``size``; clamped outside the sweep range."""
        if size <= self._sizes[0]:
            return float(self._mpas[0])
        if size >= self._sizes[-1]:
            return float(self._mpas[-1])
        return float(np.interp(size, self._sizes, self._mpas))

    def mpa_batch(self, sizes) -> np.ndarray:
        """Vectorized :meth:`mpa` over an array of sizes."""
        arr = np.asarray(sizes, dtype=float)
        return np.interp(arr, self._sizes, self._mpas)

    def mpa_slope(self, size: float) -> float:
        """Right-hand derivative of the piecewise-linear curve at ``size``.

        Zero outside the sweep range (the curve is clamped there).
        Used by the equilibrium solver's analytic Jacobian.
        """
        if size < self._sizes[0] or size >= self._sizes[-1]:
            return 0.0
        idx = int(np.searchsorted(self._sizes, size, side="right"))
        span = self._sizes[idx] - self._sizes[idx - 1]
        return float((self._mpas[idx] - self._mpas[idx - 1]) / span)

    def points(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (sizes, mpas) sweep arrays as copies."""
        return self._sizes.copy(), self._mpas.copy()

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_histogram(self) -> ReuseDistanceHistogram:
        """Recover a reuse-distance histogram via Eq. 8.

        Sweep points are first resampled onto the integer grid spanned
        by the sweep.  The residual MPA at the largest size becomes the
        infinity bucket (accesses the sweep proved can never hit).
        """
        lo = int(np.ceil(self._sizes[0]))
        hi = int(np.floor(self._sizes[-1]))
        if hi <= lo:
            raise ProfilingError("sweep range too narrow to build a histogram")
        grid = np.arange(lo, hi + 1, dtype=float)
        mpa_grid = self.mpa_batch(grid)
        # hist(d) = MPA(d) - MPA(d + 1): mass at distance d (hits once
        # the process owns d+1 ways).
        probs = np.zeros(hi)
        # Mass below the first measured size: accesses that hit even at
        # the smallest observed allocation. MPA(0) == 1 by definition,
        # so distances < lo share 1 - MPA(lo); attribute it to d = lo-1
        # (the finest statement the sweep supports).
        if lo > 0:
            probs[lo - 1] = 1.0 - mpa_grid[0]
        probs[lo:] = np.maximum(0.0, mpa_grid[:-1] - mpa_grid[1:])
        inf_mass = float(mpa_grid[-1])
        return ReuseDistanceHistogram(probs, inf_mass)

    def __repr__(self) -> str:
        return (
            f"MissRatioCurve(points={self._sizes.size}, "
            f"range=[{self._sizes[0]:g}, {self._sizes[-1]:g}])"
        )
