"""The linear SPI model of Eq. 3: ``SPI = α · MPA + β``.

α and β are per-process constants obtained during characterization by
regressing measured seconds-per-instruction against measured
misses-per-access across the stressmark sweep.  The paper validated
this linearity empirically (re-affirmed by Choi et al.); our machine
substrate realises it mechanistically, so the fit quality here mainly
reflects measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, ProfilingError


@dataclass(frozen=True)
class SpiModel:
    """Fitted Eq. 3 relation for one process."""

    alpha: float
    beta: float
    r_squared: float = 1.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ConfigurationError("beta must be positive (finite hit-path SPI)")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")

    def spi(self, mpa: float) -> float:
        """Seconds per instruction at a given miss-per-access ratio."""
        if not 0.0 <= mpa <= 1.0:
            raise ConfigurationError("mpa must be within [0, 1]")
        return self.alpha * mpa + self.beta

    def mpa_for_spi(self, spi: float) -> float:
        """Invert Eq. 3 (clamped to the physical MPA range)."""
        if self.alpha == 0:
            raise ConfigurationError("alpha is zero; SPI does not determine MPA")
        return float(np.clip((spi - self.beta) / self.alpha, 0.0, 1.0))


def fit_spi_model(mpas: Sequence[float], spis: Sequence[float]) -> SpiModel:
    """Least-squares fit of Eq. 3 from sweep measurements.

    Args:
        mpas: Measured misses-per-access at each sweep point.
        spis: Measured seconds-per-instruction at each sweep point.

    Raises:
        ProfilingError: If fewer than two points are given, the MPA
            range is degenerate, or the fit is unphysical (negative
            slope or intercept), which indicates broken profiling data.
    """
    x = np.asarray(mpas, dtype=float)
    y = np.asarray(spis, dtype=float)
    if x.ndim != 1 or x.shape != y.shape:
        raise ConfigurationError("mpas and spis must be 1-D and equal length")
    if x.size < 2:
        raise ProfilingError("need at least two sweep points to fit Eq. 3")
    if float(x.max() - x.min()) < 1e-9:
        # No MPA variation: any slope fits. Treat as miss-insensitive.
        return SpiModel(alpha=0.0, beta=float(y.mean()), r_squared=1.0)
    design = np.column_stack([x, np.ones_like(x)])
    (alpha, beta), *_ = np.linalg.lstsq(design, y, rcond=None)
    if beta <= 0 or alpha < -1e-12:
        raise ProfilingError(
            f"unphysical Eq. 3 fit (alpha={alpha:.3e}, beta={beta:.3e}); "
            "check the profiling sweep"
        )
    predicted = design @ np.array([alpha, beta])
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return SpiModel(alpha=max(0.0, float(alpha)), beta=float(beta), r_squared=r2)
