"""Multi-variable linear regression (the paper's MVLR).

A deliberately small, dependency-free implementation on top of
``numpy.linalg.lstsq``, with the two quality metrics the paper quotes:
R² and *accuracy* (one minus the mean absolute relative error, the
"96.2 %" figure of Section 4.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, ModelNotFittedError


class LinearRegression:
    """Ordinary least squares with intercept.

    Call :meth:`fit` with a 2-D design matrix (rows are observations)
    and a target vector; then :meth:`predict` maps new rows to
    predictions.
    """

    def __init__(self) -> None:
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: Optional[float] = None
        self.r_squared: Optional[float] = None

    @property
    def fitted(self) -> bool:
        return self.coefficients is not None

    def fit(
        self,
        x: Sequence[Sequence[float]],
        y: Sequence[float],
        fixed_intercept: Optional[float] = None,
    ) -> "LinearRegression":
        """Least-squares fit; returns self for chaining.

        Args:
            x: Design matrix (observations x features).
            y: Targets.
            fixed_intercept: If given, the intercept is pinned to this
                value and only the slopes are fitted (used to anchor
                the power model's P_idle to a direct idle measurement,
                as the paper's micro-benchmark phase 0 provides).
        """
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        if x_arr.ndim != 2:
            raise ConfigurationError("x must be 2-D (observations x features)")
        if y_arr.ndim != 1 or y_arr.shape[0] != x_arr.shape[0]:
            raise ConfigurationError("y must be 1-D with one entry per row of x")
        if x_arr.shape[0] <= x_arr.shape[1]:
            raise ConfigurationError(
                f"need more observations ({x_arr.shape[0]}) than "
                f"features ({x_arr.shape[1]})"
            )
        if fixed_intercept is None:
            design = np.column_stack([x_arr, np.ones(x_arr.shape[0])])
            solution, *_ = np.linalg.lstsq(design, y_arr, rcond=None)
            self.coefficients = solution[:-1]
            self.intercept = float(solution[-1])
            predictions = design @ solution
        else:
            solution, *_ = np.linalg.lstsq(
                x_arr, y_arr - fixed_intercept, rcond=None
            )
            self.coefficients = solution
            self.intercept = float(fixed_intercept)
            predictions = x_arr @ solution + fixed_intercept
        ss_res = float(((y_arr - predictions) ** 2).sum())
        ss_tot = float(((y_arr - y_arr.mean()) ** 2).sum())
        self.r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        return self

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise ModelNotFittedError("call fit() before predicting")

    def predict(self, x: Sequence[Sequence[float]]) -> np.ndarray:
        """Predictions for a 2-D batch of feature rows."""
        self._require_fitted()
        x_arr = np.asarray(x, dtype=float)
        if x_arr.ndim == 1:
            x_arr = x_arr[None, :]
        return x_arr @ self.coefficients + self.intercept

    def predict_one(self, row: Sequence[float]) -> float:
        """Prediction for a single feature row."""
        return float(self.predict([list(row)])[0])

    def accuracy(self, x: Sequence[Sequence[float]], y: Sequence[float]) -> float:
        """1 - mean(|error| / |truth|): the paper's accuracy metric."""
        self._require_fitted()
        y_arr = np.asarray(y, dtype=float)
        if np.any(y_arr == 0):
            raise ConfigurationError("accuracy undefined for zero targets")
        predictions = self.predict(x)
        return float(1.0 - np.mean(np.abs(predictions - y_arr) / np.abs(y_arr)))
