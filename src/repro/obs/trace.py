"""Nested spans with wall- and CPU-clock timing.

A :class:`Span` is a context manager; entering pushes it on the
tracer's stack (so spans opened inside it become its children) and
exiting records wall time (``time.perf_counter``), CPU time
(``time.process_time``) and whether the body raised.  Finished spans
are appended to the owning :class:`Tracer` as flat records linked by
``parent_id`` — the natural shape for JSON export and for streaming
to a collector later.

The disabled path never builds spans: observers hand out the shared
:data:`NULL_SPAN`, whose enter/exit/annotate are no-ops.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Dict, List, Optional, Sequence

TRACE_FORMAT_VERSION = 1

_LOG = logging.getLogger("repro.obs.trace")


class Span:
    """One timed, attributed operation; use as a context manager."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "start_s",
        "wall_s",
        "cpu_s",
        "status",
        "_tracer",
        "_cpu_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict):
        self.name = name
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.attributes = attributes
        self.start_s = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.status = "ok"
        self._tracer = tracer
        self._cpu_start = 0.0

    def annotate(self, **attributes) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.start_s = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self.start_s
        self.cpu_s = time.process_time() - self._cpu_start
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def annotate(self, **attributes) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; hands out nested ones via a stack."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stack: List[Span] = []
        self._finished: List[Span] = []
        self._next_id = 1

    def span(self, name: str, /, **attributes) -> Span:
        """A new span; nest by entering it while another is open.

        ``name`` is positional-only so an attribute may also be called
        ``name`` (e.g. ``span("profile", name=benchmark.name)``).
        """
        return Span(self, name, attributes)

    # ------------------------------------------------------------------
    # Span lifecycle (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _open(self, span: Span) -> None:
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            if self._stack:
                span.parent_id = self._stack[-1].span_id
            self._stack.append(span)

    def _close(self, span: Span) -> None:
        with self._lock:
            # Tolerate out-of-order exits (generators, leaked spans):
            # remove the span wherever it sits instead of asserting
            # strict stack discipline — but never silently: the span
            # is marked and the anomaly logged so a missing parent
            # link in an exported trace can be traced back here.
            try:
                self._stack.remove(span)
            except ValueError:
                span.status = "error"
                span.attributes.setdefault("error", "span closed while not open")
                _LOG.debug(
                    "span %r (id %s) closed while not on the tracer stack",
                    span.name,
                    span.span_id,
                )
            self._finished.append(span)

    # ------------------------------------------------------------------
    # Inspection / export
    # ------------------------------------------------------------------
    @property
    def finished(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._stack.clear()
            self._finished.clear()
            self._next_id = 1

    def to_dict(self) -> Dict:
        """Self-describing plain-JSON document of finished spans."""
        with self._lock:
            return {
                "kind": "trace",
                "version": TRACE_FORMAT_VERSION,
                "spans": [span.to_dict() for span in self._finished],
            }

    def absorb(
        self, spans: Sequence[Dict], parent_id: Optional[int] = None
    ) -> None:
        """Graft exported span records into this tracer.

        ``spans`` is the ``spans`` list of another tracer's
        :meth:`to_dict` document (e.g. from a worker process of the
        :mod:`repro.parallel` batch engine).  Every record gets a
        fresh id from this tracer's counter; links *within* the batch
        are preserved via an old→new id map, and roots of the absorbed
        forest are re-parented under ``parent_id`` so a worker's spans
        nest below the parent's batch span.
        """
        with self._lock:
            # Two passes: children finish (and are recorded) before
            # their parents, so every id must be mapped before any
            # parent link is resolved.
            id_map: Dict[int, int] = {}
            grafted: List[Span] = []
            for record in spans:
                span = Span(self, record.get("name", ""), dict(record.get("attributes", {})))
                span.span_id = self._next_id
                self._next_id += 1
                old_id = record.get("id")
                if old_id is not None:
                    id_map[old_id] = span.span_id
                span.start_s = record.get("start_s", 0.0)
                span.wall_s = record.get("wall_s", 0.0)
                span.cpu_s = record.get("cpu_s", 0.0)
                span.status = record.get("status", "ok")
                grafted.append(span)
            for record, span in zip(spans, grafted):
                span.parent_id = id_map.get(record.get("parent_id"), parent_id)
                self._finished.append(span)
