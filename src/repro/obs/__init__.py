"""repro.obs — tracing + metrics for the model pipeline.

Every stage of the prediction pipeline (simulator, equilibrium
solvers, prediction cache, profiling, power measurement) reports into
one :class:`Observer`: spans for *where time went* and counters /
gauges / histograms for *what happened*.  Instrumentation is off by
default — :func:`get_observer` returns the shared
:data:`NULL_OBSERVER`, whose ``enabled`` flag lets hot paths skip all
bookkeeping with a single attribute check — so the disabled-path
overhead on the predict hot path stays under the budget
``benchmarks/bench_obs_overhead.py`` enforces.

Typical use::

    from repro import obs

    observer = obs.Observer()
    with obs.use_observer(observer):
        model.predict(["mcf", "gzip"])
    observer.write_trace("trace.json")
    observer.write_metrics("metrics.json")

Call sites inside the library follow one convention::

    o = obs.get_observer()
    if o.enabled:
        with o.span("stage", key=value):
            ...
        o.counter("stage.events").inc()

The CLI exposes the same machinery via ``--trace FILE`` and
``--metrics FILE`` on ``predict``, ``run``, ``profile`` and
``assign``.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS_FORMAT_VERSION,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    quantile_from_buckets,
)
from repro.obs.trace import NULL_SPAN, Span, TRACE_FORMAT_VERSION, Tracer

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "get_observer",
    "set_observer",
    "use_observer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "METRICS_FORMAT_VERSION",
    "TRACE_FORMAT_VERSION",
    "quantile_from_buckets",
]


class Observer:
    """Bundles a :class:`Tracer` and a :class:`MetricsRegistry`.

    Attributes:
        enabled: Hot paths check this single flag; when ``False``
            (only the shared :data:`NULL_OBSERVER`) every method is a
            cheap no-op.
    """

    enabled = True

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Instrumentation surface
    # ------------------------------------------------------------------
    def span(self, name: str, /, **attributes) -> Span:
        return self.tracer.span(name, **attributes)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def trace_dict(self) -> Dict:
        return self.tracer.to_dict()

    def metrics_dict(self) -> Dict:
        return self.metrics.to_dict()

    def write_trace(self, path) -> None:
        """Write finished spans as JSON (io.py conventions).

        Span attributes may carry non-finite floats (a NaN watts
        annotation from a failed fit, say); they are sanitized to
        string markers so the export is always strict JSON — a trace
        of a failing run must never itself fail to write.
        """
        from repro.io import sanitize_non_finite, save_json

        save_json(sanitize_non_finite(self.trace_dict()), path)

    def write_metrics(self, path) -> None:
        """Write the metric registry as JSON (io.py conventions).

        Sanitized like :meth:`write_trace`: a gauge set to NaN or a
        histogram fed an infinity exports as a string marker instead
        of invalidating the whole document.
        """
        from repro.io import sanitize_non_finite, save_json

        save_json(sanitize_non_finite(self.metrics_dict()), path)

    # ------------------------------------------------------------------
    # Cross-process merge (repro.parallel)
    # ------------------------------------------------------------------
    def absorb(
        self,
        trace_document: Optional[Dict] = None,
        metrics_document: Optional[Dict] = None,
        parent_span_id: Optional[int] = None,
    ) -> None:
        """Merge a worker observer's exported documents into this one.

        Worker spans are re-identified and nested under
        ``parent_span_id`` (typically the parent's batch span);
        counters add, gauges take the worker value, histograms fold.
        """
        if trace_document is not None:
            self.tracer.absorb(
                trace_document.get("spans", []), parent_id=parent_span_id
            )
        if metrics_document is not None:
            self.metrics.absorb(metrics_document)


class _NullObserver(Observer):
    """Disabled observer: every handle it returns is a shared no-op."""

    enabled = False

    def __init__(self) -> None:  # no tracer/registry allocation
        pass

    def span(self, name: str, /, **attributes):
        return NULL_SPAN

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return NULL_HISTOGRAM

    def trace_dict(self) -> Dict:
        return {"kind": "trace", "version": TRACE_FORMAT_VERSION, "spans": []}

    def metrics_dict(self) -> Dict:
        return {
            "kind": "metrics",
            "version": METRICS_FORMAT_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


#: The process-wide disabled observer (default).
NULL_OBSERVER = _NullObserver()

_OBSERVER: Observer = NULL_OBSERVER


def get_observer() -> Observer:
    """The currently installed observer (default: disabled no-op)."""
    return _OBSERVER


def set_observer(observer: Union[Observer, None]) -> Observer:
    """Install ``observer`` process-wide; returns the previous one.

    Pass ``None`` to restore the disabled default.
    """
    global _OBSERVER
    previous = _OBSERVER
    _OBSERVER = observer if observer is not None else NULL_OBSERVER
    return previous


@contextlib.contextmanager
def use_observer(observer: Observer) -> Iterator[Observer]:
    """Temporarily install ``observer`` (restores the previous one)."""
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)
