"""Counter / gauge / histogram registry for the observability layer.

Three metric kinds cover everything the pipeline wants to count:

- :class:`Counter` — monotonically increasing totals (solver
  iterations, cache hits, simulated accesses).
- :class:`Gauge` — last-written values (current hit rate, last
  measured watts).
- :class:`Histogram` — streaming summaries (count/sum/min/max/mean)
  of per-event samples (residual norms, per-window power), kept O(1)
  in memory so instrumenting a million-event run costs nothing.

A :class:`MetricsRegistry` interns metrics by name and serialises the
whole set to one plain-JSON document.  Registries are lock-guarded so
a future batched/async serving layer can share one across workers.

Disabled observers hand out the module-level null singletons instead
(:data:`NULL_COUNTER`, …) whose mutators are no-ops — call sites can
always call ``.inc()``/``.observe()`` without checking for ``None``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict

from repro.errors import ConfigurationError

METRICS_FORMAT_VERSION = 1


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Resolution floor of the histogram's quantile buckets.  Bucket 0
#: holds every sample <= this value; bucket ``i`` holds samples in
#: ``(_BUCKET_BASE * 2**(i-1), _BUCKET_BASE * 2**i]``.  1 µs is fine
#: for latencies (the dominant quantile consumer) and harmless for
#: unitless samples — quantiles are then simply coarse at the low end.
_BUCKET_BASE = 1e-6
_BUCKET_LIMIT = 64  # 1e-6 * 2**63 ≈ 9.2e12: everything above saturates


def _bucket_index(value: float) -> int:
    if value <= _BUCKET_BASE:
        return 0
    index = 1 + int(math.log2(value / _BUCKET_BASE))
    # Guard the exact-power-of-two edge: log2 can round up.
    if _BUCKET_BASE * 2.0 ** (index - 1) >= value:
        index -= 1
    return min(_BUCKET_LIMIT, max(1, index))


def quantile_from_buckets(buckets: Dict[int, int], q: float) -> float:
    """Upper-bound ``q``-quantile of a ``bucket index -> count`` map.

    The estimate is the upper edge of the bucket holding the q-th
    sample, i.e. conservative within one power of two — good enough to
    drive a latency-SLO control loop, not a precision statistic.
    Returns 0.0 for an empty map.  Use with
    :meth:`Histogram.bucket_counts` deltas to get *windowed* quantiles
    from the cumulative histograms in a metrics registry.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = sum(buckets.values())
    if total <= 0:
        return 0.0
    rank = q * total
    seen = 0
    for index in sorted(buckets):
        seen += buckets[index]
        if seen >= rank:
            return _BUCKET_BASE * 2.0 ** index if index else _BUCKET_BASE
    return _BUCKET_BASE * 2.0 ** max(buckets)


class Histogram:
    """Streaming count/sum/min/max summary of observed samples.

    Also keeps O(1)-memory log2-spaced bucket counts so consumers can
    read coarse quantiles (:meth:`quantile`) or windowed deltas
    (:meth:`bucket_counts`); the JSON export schema is unchanged —
    buckets feed in-process control loops (the serve layer's adaptive
    batcher), not documents.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = _bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def bucket_counts(self) -> Dict[int, int]:
        """Copy of the log2 bucket counts (``index -> count``)."""
        return dict(self._buckets)

    def quantile(self, q: float) -> float:
        """Conservative ``q``-quantile over every observed sample."""
        return quantile_from_buckets(self._buckets, q)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def absorb(self, document: Dict) -> None:
        """Fold another histogram's exported summary into this one."""
        count = int(document.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(document.get("sum", 0.0))
        low, high = document.get("min"), document.get("max")
        if low is not None and float(low) < self.min:
            self.min = float(low)
        if high is not None and float(high) > self.max:
            self.max = float(high)

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instances handed out by disabled observers.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named counters, gauges and histograms with JSON export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def absorb(self, document: Dict) -> None:
        """Merge another registry's exported document into this one.

        Counters add, gauges take the absorbed (later) value, and
        histograms fold their streaming summaries together — the
        merge the batch engine applies when worker metrics return to
        the parent process.
        """
        for name, value in document.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in document.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in document.get("histograms", {}).items():
            self.histogram(name).absorb(summary)

    def to_dict(self) -> Dict:
        """Self-describing plain-JSON document of every metric."""
        with self._lock:
            return {
                "kind": "metrics",
                "version": METRICS_FORMAT_VERSION,
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
            }
