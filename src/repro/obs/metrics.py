"""Counter / gauge / histogram registry for the observability layer.

Three metric kinds cover everything the pipeline wants to count:

- :class:`Counter` — monotonically increasing totals (solver
  iterations, cache hits, simulated accesses).
- :class:`Gauge` — last-written values (current hit rate, last
  measured watts).
- :class:`Histogram` — streaming summaries (count/sum/min/max/mean)
  of per-event samples (residual norms, per-window power), kept O(1)
  in memory so instrumenting a million-event run costs nothing.

A :class:`MetricsRegistry` interns metrics by name and serialises the
whole set to one plain-JSON document.  Registries are lock-guarded so
a future batched/async serving layer can share one across workers.

Disabled observers hand out the module-level null singletons instead
(:data:`NULL_COUNTER`, …) whose mutators are no-ops — call sites can
always call ``.inc()``/``.observe()`` without checking for ``None``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict

from repro.errors import ConfigurationError

METRICS_FORMAT_VERSION = 1


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming count/sum/min/max summary of observed samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def absorb(self, document: Dict) -> None:
        """Fold another histogram's exported summary into this one."""
        count = int(document.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(document.get("sum", 0.0))
        low, high = document.get("min"), document.get("max")
        if low is not None and float(low) < self.min:
            self.min = float(low)
        if high is not None and float(high) > self.max:
            self.max = float(high)

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instances handed out by disabled observers.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named counters, gauges and histograms with JSON export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def absorb(self, document: Dict) -> None:
        """Merge another registry's exported document into this one.

        Counters add, gauges take the absorbed (later) value, and
        histograms fold their streaming summaries together — the
        merge the batch engine applies when worker metrics return to
        the parent process.
        """
        for name, value in document.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in document.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, summary in document.get("histograms", {}).items():
            self.histogram(name).absorb(summary)

    def to_dict(self) -> Dict:
        """Self-describing plain-JSON document of every metric."""
        with self._lock:
            return {
                "kind": "metrics",
                "version": METRICS_FORMAT_VERSION,
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
            }
