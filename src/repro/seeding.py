"""Deterministic, collision-free RNG stream derivation.

One master seed fans out into many independent streams: per-process
trace generators, per-core scheduler jitter, per-domain replacement
policies, the power meter, and — with the :mod:`repro.parallel` batch
engine — one stream per task in a fan-out.  Child seeds used to be
derived affinely (``seed * 1_000_003 + pid`` for generators,
``seed * 7_919 + core`` for schedulers, ``seed + idx`` for policies),
which collides across domains for small master seeds: seed 0 hands
process 0, core 0 and cache domain 0 the *same* raw seed 0, so their
"independent" streams are byte-identical.

Every consumer now derives its seed from the
:class:`numpy.random.SeedSequence` tree instead.  Each stream is the
grandchild ``SeedSequence(master, spawn_key=(domain, index))`` — the
sequence ``SeedSequence(master).spawn(...)`` would hand out, addressed
directly so a stream can be recreated without materialising its
siblings.  SeedSequence mixes entropy and spawn key through a hash
with provable stream-separation properties, so streams differ even
when ``(master, domain, index)`` triples are small and overlapping.

The 128-bit integers returned by :func:`stream_seed` are fed to
``numpy.random.default_rng`` and ``random.Random`` unchanged; both
accept arbitrary-size ints.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Spawn-key domains.  Every consumer of a derived stream draws from
#: its own domain so streams never collide across subsystems.
STREAM_PROCESS = 0  #: per-process trace generators (index: pid)
STREAM_SCHEDULER = 1  #: per-core timeslice jitter (index: core id)
STREAM_POLICY = 2  #: per-domain replacement policies (index: domain)
STREAM_METER = 3  #: the power meter of one machine (index: 0)
STREAM_PHASE = 4  #: per-phase generators inside one process (index: phase)
STREAM_TASK = 5  #: per-task streams of a parallel batch (index: task)
STREAM_FLEET = 6  #: fleet assignment search (index: restart / chain id)


def spawn_sequence(seed: int, *key: int) -> np.random.SeedSequence:
    """The ``SeedSequence`` child of ``seed`` addressed by ``key``."""
    if seed < 0:
        raise ConfigurationError("master seed must be non-negative")
    return np.random.SeedSequence(
        entropy=int(seed), spawn_key=tuple(int(k) for k in key)
    )


def _sequence_to_int(sequence: np.random.SeedSequence) -> int:
    words = sequence.generate_state(4, np.uint32)
    value = 0
    for word in reversed(words):
        value = (value << 32) | int(word)
    return value


def stream_seed(seed: int, *key: int) -> int:
    """A 128-bit child seed for the ``key`` stream of master ``seed``.

    Deterministic in ``(seed, key)``; distinct keys give independent
    streams (SeedSequence's guarantee), so e.g.
    ``stream_seed(0, STREAM_PROCESS, 1)`` and
    ``stream_seed(0, STREAM_SCHEDULER, 1)`` no longer coincide the way
    the old affine derivation made them.
    """
    return _sequence_to_int(spawn_sequence(seed, *key))


def task_seeds(seed: int, count: int) -> Tuple[int, ...]:
    """``count`` independent per-task seeds for one batch.

    Uses ``SeedSequence.spawn`` on the batch's :data:`STREAM_TASK`
    child, so task ``i`` of a batch always receives the same seed
    regardless of chunking, worker count or completion order — the
    invariant behind the batch engine's serial ≡ parallel guarantee —
    while different task indices get provably independent streams.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    root = spawn_sequence(seed, STREAM_TASK)
    return tuple(_sequence_to_int(child) for child in root.spawn(count))
