"""Voltage-regulator model of the paper's measurement setup.

Section 6.1: a Fluke i30 current clamp sits on one of the 12 V
processor supply lines; an on-board regulator with an assumed fixed
efficiency of 90 % converts down to the core voltage, so the paper
computes processor power as ``P = 0.9 * 12 * I = 10.8 * I``.

We run the chain in both directions: the reference model gives true
processor power, the regulator maps it to the 12 V line current the
clamp would see, and the meter maps noisy current samples back to the
power figure the paper's methodology reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Regulator:
    """Fixed-efficiency 12 V to core-voltage regulator.

    Attributes:
        supply_volts: Supply-line voltage (12 V in the paper).
        efficiency: Fraction of supply power delivered to the chip.
    """

    supply_volts: float = 12.0
    efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.supply_volts <= 0:
            raise ConfigurationError("supply_volts must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be within (0, 1]")

    @property
    def watts_per_amp(self) -> float:
        """The paper's 10.8 factor: reported W per measured A."""
        return self.efficiency * self.supply_volts

    def line_current(self, processor_watts: float) -> float:
        """12 V line current drawn for a given true processor power.

        The paper's convention reports ``P = eff * V * I`` as processor
        power, i.e. the true power *is* that product, so the line
        current is ``P / (eff * V)``.
        """
        if processor_watts < 0:
            raise ConfigurationError("processor_watts must be non-negative")
        return processor_watts / self.watts_per_amp

    def reported_power(self, line_current: float) -> float:
        """Power figure the paper's methodology reports for a current."""
        if line_current < 0:
            raise ConfigurationError("line_current must be non-negative")
        return self.watts_per_amp * line_current
