"""Power-trace containers and window alignment helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import get_observer


@dataclass
class PowerTrace:
    """Per-window processor power over one measurement run.

    Windows are contiguous with fixed duration ``window_s``; entry
    ``i`` covers ``[start_s + i*window_s, start_s + (i+1)*window_s)``.
    ``true_watts`` comes from the hidden reference model,
    ``measured_watts`` from the simulated meter — the models only ever
    see the latter.
    """

    window_s: float
    start_s: float = 0.0
    true_watts: List[float] = field(default_factory=list)
    measured_watts: List[float] = field(default_factory=list)

    def append(self, true_w: float, measured_w: float) -> None:
        self.true_watts.append(true_w)
        self.measured_watts.append(measured_w)
        observer = get_observer()
        if observer.enabled:
            observer.counter("power.trace.windows").inc()

    def __len__(self) -> int:
        return len(self.measured_watts)

    @property
    def times(self) -> np.ndarray:
        """Window-center timestamps in seconds."""
        n = len(self.measured_watts)
        return self.start_s + (np.arange(n) + 0.5) * self.window_s

    @property
    def mean_measured(self) -> float:
        if not self.measured_watts:
            raise ConfigurationError("empty power trace")
        return float(np.mean(self.measured_watts))

    @property
    def mean_true(self) -> float:
        if not self.true_watts:
            raise ConfigurationError("empty power trace")
        return float(np.mean(self.true_watts))

    def as_arrays(self):
        """Return (times, true, measured) numpy arrays."""
        return (
            self.times,
            np.asarray(self.true_watts),
            np.asarray(self.measured_watts),
        )
