"""Power ground truth and measurement-chain substrate.

The hidden :class:`~repro.power.reference.ReferencePowerModel` plays
the role of the physical processor; the
:class:`~repro.power.meter.PowerMeter` plays the Fluke clamp + NI DAQ
chain.  Models in :mod:`repro.core` only ever see meter output.
"""

from repro.power.meter import MeterSpec, PowerMeter
from repro.power.reference import ComponentResponse, ReferencePowerModel, reference_for
from repro.power.regulator import Regulator
from repro.power.sampling import PowerTrace

__all__ = [
    "ReferencePowerModel",
    "ComponentResponse",
    "reference_for",
    "Regulator",
    "PowerMeter",
    "MeterSpec",
    "PowerTrace",
]
