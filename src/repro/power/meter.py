"""Current-clamp + DAQ measurement chain.

Models the paper's instrumentation: a Fluke i30 current clamp (gain
error plus broadband noise) sampled by an NI USB6210 card at 10 kHz
with finite resolution.  The simulator supplies the *true* processor
power over a measurement window; the meter returns what the
experimenter's pipeline would record — the per-window mean of the
quantised, noisy samples mapped through the 10.8 W/A factor — plus an
optional slow thermal wander so consecutive windows are realistically
correlated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import get_observer
from repro.power.regulator import Regulator


@dataclass(frozen=True)
class MeterSpec:
    """Noise/quantisation characteristics of the measurement chain.

    Attributes:
        sample_rate_hz: DAQ sampling rate (paper: 10 kHz).
        clamp_gain_error: Fixed multiplicative gain error of the clamp,
            drawn once per meter instance within ±this fraction.
        clamp_noise_amps: Per-sample RMS current noise of the clamp.
        daq_lsb_amps: Quantisation step of the acquisition card.
        wander_fraction: RMS of the slow (per-window AR(1)) power
            wander as a fraction of the current true power, modelling
            temperature-dependent leakage the models cannot see.
        wander_rho: AR(1) correlation of the wander between windows.
    """

    sample_rate_hz: float = 10_000.0
    clamp_gain_error: float = 0.015
    clamp_noise_amps: float = 0.05
    daq_lsb_amps: float = 0.005
    wander_fraction: float = 0.035
    wander_rho: float = 0.8

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        for name in ("clamp_gain_error", "clamp_noise_amps", "daq_lsb_amps", "wander_fraction"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if not 0.0 <= self.wander_rho < 1.0:
            raise ConfigurationError("wander_rho must be within [0, 1)")


class PowerMeter:
    """Stateful measurement chain for one experiment run.

    Args:
        spec: Noise characteristics.
        regulator: Supply-line model (12 V, 90 % efficient).
        seed: RNG seed; one meter instance models one physical setup,
            so the clamp gain error is drawn once here.
    """

    def __init__(
        self,
        spec: Optional[MeterSpec] = None,
        regulator: Optional[Regulator] = None,
        seed: int = 0,
    ):
        self.spec = spec if spec is not None else MeterSpec()
        self.regulator = regulator if regulator is not None else Regulator()
        self._rng = np.random.default_rng(seed)
        self._gain = 1.0 + self._rng.uniform(
            -self.spec.clamp_gain_error, self.spec.clamp_gain_error
        )
        self._wander_state = 0.0

    def measure_window(self, true_watts: float, window_s: float) -> float:
        """Measured average power over one window of true power.

        Draws the DAQ samples the window would contain, adds clamp
        noise and wander, quantises, and returns the mean reported
        power.  At 10 kHz even short windows contain many samples, so
        white noise averages down while gain error and wander do not —
        matching why the paper's *average*-power errors are smaller
        than its per-sample errors.
        """
        if true_watts < 0:
            raise ConfigurationError("true_watts must be non-negative")
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        spec = self.spec
        n = max(1, int(round(window_s * spec.sample_rate_hz)))
        rho = spec.wander_rho
        self._wander_state = rho * self._wander_state + (
            1.0 - rho**2
        ) ** 0.5 * self._rng.normal()
        wandered = true_watts * (1.0 + spec.wander_fraction * self._wander_state)
        true_current = self.regulator.line_current(max(0.0, wandered))
        samples = self._gain * true_current + self._rng.normal(
            0.0, spec.clamp_noise_amps, size=n
        )
        if spec.daq_lsb_amps > 0:
            samples = np.round(samples / spec.daq_lsb_amps) * spec.daq_lsb_amps
        clipped = int(np.count_nonzero(samples < 0.0))
        mean_current = float(np.clip(samples, 0.0, None).mean())
        observer = get_observer()
        if observer.enabled:
            observer.counter("power.meter.windows").inc()
            observer.counter("power.meter.samples").inc(n)
            if clipped:
                observer.counter("power.meter.clipped_samples").inc(clipped)
        return self.regulator.reported_power(mean_current)

    def measure_trace(self, true_watts: np.ndarray, window_s: float) -> np.ndarray:
        """Measure a sequence of windows (vector convenience)."""
        return np.array([self.measure_window(float(w), window_s) for w in true_watts])
