"""Hidden ground-truth power functions.

The paper measures real processor power with a current clamp.  Our
substitute is a per-machine *reference* power function that the models
never see: they only observe noisy meter readings (see
:mod:`repro.power.meter`) and must learn the mapping from HPC event
rates to power by regression, exactly as on real hardware.

The reference is intentionally *not* linear in the event rates — each
component's power response saturates at high activity, and L2 misses
carry a negative marginal term (a stalled pipeline burns less dynamic
power, which is why the paper's fitted ``c3`` is negative).  The
non-linearity is mild, so a multi-variable linear regression attains
roughly the paper's 96 % accuracy while a small neural network does
slightly better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.events import RATE_EVENTS, Event


@dataclass(frozen=True)
class ComponentResponse:
    """Power response of one architectural block to its event rate.

    ``watts(r) = peak * x / (1 + x)`` with ``x = r / sat_rate``: linear
    with slope ``peak / sat_rate`` at low rates, saturating towards
    ``peak``.  A negative ``peak`` yields a (bounded) negative
    response, used for the L2-miss stall effect.
    """

    peak: float
    sat_rate: float

    def __post_init__(self) -> None:
        if self.sat_rate <= 0:
            raise ConfigurationError("sat_rate must be positive")

    def watts(self, rate: float) -> float:
        if rate < 0:
            raise ConfigurationError("event rates must be non-negative")
        x = rate / self.sat_rate
        return self.peak * x / (1.0 + x)


class ReferencePowerModel:
    """Per-machine ground-truth processor power.

    Processor power is an uncore constant plus, per core, an idle
    constant plus the component responses evaluated at that core's
    event rates, plus a small L2-reference x FP interaction term (to
    give the neural network something a linear model cannot capture).

    Args:
        uncore_watts: Always-on non-core power.
        core_idle_watts: Per-core power with no process running.
        responses: Mapping of rate event to its response curve.
        interaction_watts: Peak of the L2RPS×FPPS interaction.
        frequency_hz: Machine clock; used to normalise the interaction.
    """

    def __init__(
        self,
        uncore_watts: float,
        core_idle_watts: float,
        responses: Mapping[Event, ComponentResponse],
        interaction_watts: float,
        frequency_hz: float,
    ):
        if uncore_watts < 0 or core_idle_watts < 0:
            raise ConfigurationError("idle powers must be non-negative")
        if frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        missing = [e for e in RATE_EVENTS if e not in responses]
        if missing:
            raise ConfigurationError(f"missing responses for events: {missing}")
        self.uncore_watts = uncore_watts
        self.core_idle_watts = core_idle_watts
        self.responses: Dict[Event, ComponentResponse] = dict(responses)
        self.interaction_watts = interaction_watts
        self.frequency_hz = frequency_hz

    def core_power(self, rates: Mapping[Event, float]) -> float:
        """True power of one core given its event rates (W)."""
        power = self.core_idle_watts
        for event in RATE_EVENTS:
            power += self.responses[event].watts(rates.get(event, 0.0))
        x_l2 = rates.get(Event.L2_REFS, 0.0) / self.frequency_hz
        x_fp = rates.get(Event.FP_OPS, 0.0) / self.frequency_hz
        power += self.interaction_watts * (x_l2 * x_fp) / (1.0 + x_l2 * x_fp)
        return power

    def processor_power(self, per_core_rates: Sequence[Mapping[Event, float]]) -> float:
        """True processor power over all cores (W)."""
        return self.uncore_watts + sum(self.core_power(r) for r in per_core_rates)

    def idle_processor_power(self, cores: int) -> float:
        """Processor power with every core idle."""
        if cores < 1:
            raise ConfigurationError("cores must be positive")
        return self.uncore_watts + cores * self.core_idle_watts


def reference_for(
    nominal_watts: float, cores: int, frequency_hz: float
) -> ReferencePowerModel:
    """Build a plausible reference model for a machine.

    The component weights are fixed fractions of the machine's dynamic
    power budget (nominal minus idle), with saturation knees placed at
    activity levels a fast core actually reaches, so different machines
    (different ``nominal_watts``/``cores``) get genuinely different
    coefficient sets — the paper validates that the *construction
    process*, not one coefficient set, generalises.
    """
    if nominal_watts <= 0:
        raise ConfigurationError("nominal_watts must be positive")
    if cores < 1:
        raise ConfigurationError("cores must be positive")
    idle_fraction = 0.42
    uncore = nominal_watts * idle_fraction * 0.35
    core_idle = nominal_watts * idle_fraction * 0.65 / cores
    dynamic = nominal_watts * (1.0 - idle_fraction) / cores
    f = frequency_hz
    responses = {
        # L1 references track instruction throughput: the dominant term.
        Event.L1_REFS: ComponentResponse(peak=dynamic * 1.10, sat_rate=0.55 * f),
        Event.L2_REFS: ComponentResponse(peak=dynamic * 0.35, sat_rate=0.10 * f),
        # Misses stall the pipeline: negative marginal power.
        Event.L2_MISSES: ComponentResponse(peak=-dynamic * 0.55, sat_rate=0.035 * f),
        Event.BRANCHES: ComponentResponse(peak=dynamic * 0.30, sat_rate=0.30 * f),
        Event.FP_OPS: ComponentResponse(peak=dynamic * 0.45, sat_rate=0.40 * f),
    }
    return ReferencePowerModel(
        uncore_watts=uncore,
        core_idle_watts=core_idle,
        responses=responses,
        interaction_watts=dynamic * 0.06,
        frequency_hz=f,
    )
