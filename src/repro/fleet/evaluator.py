"""Memoised per-machine evaluation behind the fleet solvers.

The expensive part of pricing a fleet placement is the equilibrium
solve behind each co-run combination.  Two structural facts make
fleet-scale search tractable:

- Machine scores decompose: a fleet candidate's power/throughput is
  the sum of independent per-machine estimates, so the solvers only
  ever need ``(watts, ips)`` for a *single machine state*.
- Co-run combinations are tiny: the combined model evaluates one
  process per busy core of a cache domain, and every standard machine
  has at most two cores per domain — so every solve the search can
  possibly trigger is a co-run of at most ``domain width`` names.

:class:`FleetEvaluator` exploits both.  :meth:`prime` fans the full
co-run closure (every name multiset up to the widest domain) through
:class:`~repro.parallel.ParallelPredictor` — inheriting its engine
selection and serial/vectorized/pool bit-equality — after which every
machine-state evaluation is pure cached arithmetic.  States themselves
are memoised by canonical key, shared across the interchangeable
machines of a group, so greedy packing and annealing over 10k+
processes re-price only states they have never seen.

All equilibrium caches are built with ``warm_start=False``: solves are
order-independent, which is what makes scores bit-identical across
solvers, engines and runs (the determinism the tests pin).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.combined import CombinedModel
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.performance_model import PerformanceModel
from repro.core.power_model import CorePowerModel
from repro.core.solver_cache import EquilibriumCache
from repro.errors import ConfigurationError
from repro.fleet.spec import FleetSpec
from repro.hetero.model import (
    HeteroPricer,
    HeteroState,
    canonical_hetero_state,
)
from repro.hetero.types import HeteroMachineSpec
from repro.machine.topology import MachineTopology
from repro.obs import get_observer
from repro.parallel import ParallelPredictor

__all__ = [
    "CANONICAL_OBJECTIVES",
    "OBJECTIVE_ALIASES",
    "FleetEvaluator",
    "canonical_objective",
    "canonical_state",
    "fleet_score",
]

#: Fleet-level objectives (scores are minimised).
CANONICAL_OBJECTIVES = (
    "min-power",
    "max-throughput",
    "min-energy-per-instruction",
    "throughput-under-watts-budget",
)

#: Single-machine objective names accepted for compatibility with
#: :data:`repro.core.assignment.OBJECTIVES`.
OBJECTIVE_ALIASES = {
    "power": "min-power",
    "throughput": "max-throughput",
    "energy_per_instruction": "min-energy-per-instruction",
}


def canonical_objective(objective: str) -> str:
    """Resolve an objective name (canonical or legacy alias)."""
    resolved = OBJECTIVE_ALIASES.get(objective, objective)
    if resolved not in CANONICAL_OBJECTIVES:
        known = sorted(CANONICAL_OBJECTIVES) + sorted(OBJECTIVE_ALIASES)
        raise ConfigurationError(
            f"unknown objective {objective!r}; choose from {known}"
        )
    return resolved


def fleet_score(
    objective: str,
    watts: float,
    ips: float,
    power_budget_watts: Optional[float] = None,
) -> float:
    """Fleet-level score (minimised) of aggregate ``(watts, ips)``.

    A global power budget is a hard constraint: exceeding it scores
    ``inf`` under every objective, so budget-violating candidates can
    never win a search.
    """
    if power_budget_watts is not None and watts > power_budget_watts:
        return float("inf")
    if objective == "min-power":
        return watts
    if objective == "max-throughput":
        return -ips
    if objective == "min-energy-per-instruction":
        return watts / ips if ips > 0 else float("inf")
    if objective == "throughput-under-watts-budget":
        return -ips
    raise ConfigurationError(f"unknown canonical objective {objective!r}")


#: Canonical machine state: ``((core, sorted names), ...)`` sorted by
#: core, idle cores dropped.
MachineState = Tuple[Tuple[int, Tuple[str, ...]], ...]


def canonical_state(assignment: Mapping[int, Sequence[str]]) -> MachineState:
    """Order-insensitive key (and scoring form) of a machine assignment.

    Names within a core are sorted before scoring as well as keying:
    time-sharing order cannot change the model's estimate
    mathematically, but it changes float summation order — scoring the
    canonical form is what keeps memoised scores bit-stable.
    """
    return tuple(
        sorted(
            (int(core), tuple(sorted(names)))
            for core, names in assignment.items()
            if names
        )
    )


@dataclass
class _MachineConfig:
    """Shared evaluation state for one ``(machine, sets, hetero)`` triple."""

    machine: str
    sets: int
    topology: MachineTopology
    combined: CombinedModel
    idle_watts: float
    num_cores: int
    width: int  #: widest cache domain (max co-run size on this machine)
    key_id: int = 0  #: unique per distinct config; memo key component
    hetero: Optional[HeteroMachineSpec] = None
    pricer: Optional[HeteroPricer] = None


class FleetEvaluator:
    """Shared, memoised ``(watts, ips)`` oracle for fleet searches.

    Args:
        features: ``name -> FeatureVector`` of every process the
            request may name.
        profiles: ``name -> ProfileVector`` (P_alone and the
            per-instruction rates of Eq. 9).
        power_model: Fitted per-core power model.
        fleet: The machine inventory being packed.
        strategy: Equilibrium solver strategy.
        workers / chunk_size / engine: Fan-out knobs handed to the
            :class:`ParallelPredictor` used by :meth:`prime`; scores
            are bit-identical for every setting.
    """

    def __init__(
        self,
        features: Mapping[str, FeatureVector],
        profiles: Mapping[str, ProfileVector],
        power_model: CorePowerModel,
        fleet: FleetSpec,
        *,
        strategy: str = "auto",
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        engine: str = "auto",
    ):
        self.features = dict(features)
        self.profiles = dict(profiles)
        self.power_model = power_model
        self.fleet = fleet
        self.strategy = strategy
        self.workers = workers
        self.chunk_size = chunk_size
        self.engine = engine
        self._models_by_ways: Dict[int, PerformanceModel] = {}
        self._caches_by_ways: Dict[int, EquilibriumCache] = {}
        self._configs: Dict[
            Tuple[str, int, Optional[HeteroMachineSpec]], _MachineConfig
        ] = {}
        self.group_configs: List[_MachineConfig] = [
            self._config_for(group.machine, group.sets, group.hetero)
            for group in fleet.groups
        ]
        # (config key_id, state) -> (watts, ips); machines of a group
        # are interchangeable, so one entry serves them all.
        self._state_memo: Dict[
            Tuple[int, Union[MachineState, HeteroState]], Tuple[float, float]
        ] = {}
        self.evaluations = 0  #: machine states priced by the model
        self.lookups = 0  #: machine-state queries (memo hits included)

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def _model_for(self, ways: int) -> PerformanceModel:
        model = self._models_by_ways.get(ways)
        if model is None:
            cache = EquilibriumCache(warm_start=False)
            model = PerformanceModel(
                ways=ways, strategy=self.strategy, cache=cache
            )
            model.register_all(list(self.features.values()))
            self._models_by_ways[ways] = model
            self._caches_by_ways[ways] = cache
        return model

    def _config_for(
        self,
        machine: str,
        sets: int,
        hetero: Optional[HeteroMachineSpec] = None,
    ) -> _MachineConfig:
        key = (machine, sets, hetero)
        config = self._configs.get(key)
        if config is None:
            from repro.machine.topology import STANDARD_MACHINES

            topology = STANDARD_MACHINES[machine](sets=sets)
            combined = CombinedModel(
                topology=topology,
                performance_models=[
                    self._model_for(domain.geometry.ways)
                    for domain in topology.domains
                ],
                power_model=self.power_model,
                profiles=self.profiles,
                corun_cache=EquilibriumCache(warm_start=False),
            )
            pricer = None
            idle_watts = topology.num_cores * self.power_model.p_idle
            if hetero is not None:
                pricer = HeteroPricer(
                    hetero, topology, combined, self.profiles
                )
                # For a unit spec this is the same float expression as
                # the homogeneous branch (parity); otherwise it sums
                # the per-core deepest-P-state idle draws.
                idle_watts = pricer.idle_watts
            config = _MachineConfig(
                machine=machine,
                sets=sets,
                topology=topology,
                combined=combined,
                idle_watts=idle_watts,
                num_cores=topology.num_cores,
                width=max(len(d.core_ids) for d in topology.domains),
                key_id=len(self._configs),
                hetero=hetero,
                pricer=pricer,
            )
            self._configs[key] = config
        return config

    # ------------------------------------------------------------------
    # Closure priming (the ParallelPredictor fan-out)
    # ------------------------------------------------------------------
    def check_processes(self, names: Sequence[str]) -> None:
        unknown = sorted(
            {n for n in names if n not in self.features or n not in self.profiles}
        )
        if unknown:
            raise ConfigurationError(
                f"unknown processes {unknown}; profiled suite knows "
                f"{sorted(self.features)}"
            )

    def closure_mixes(self, names: Sequence[str]) -> List[Tuple[str, ...]]:
        """Every co-run the fleet's machines can force the model to price.

        A cache domain co-runs one process per busy core, so the
        closure is all name multisets up to the widest domain — a few
        hundred mixes for a realistic suite, independent of how many
        *instances* the request packs.
        """
        width = max(config.width for config in self._configs.values())
        distinct = sorted(set(names))
        mixes: List[Tuple[str, ...]] = []
        for size in range(1, width + 1):
            mixes.extend(itertools.combinations_with_replacement(distinct, size))
        return mixes

    def prime(self, names: Sequence[str]) -> int:
        """Solve the co-run closure up front through the batch engine.

        Returns the number of mixes primed.  Optional for correctness
        (cold-start caches make later on-demand solves bit-identical);
        it exists so fleet-scale searches pay the equilibrium solves
        once, through whichever engine (`serial`/`vectorized`/`pool`)
        suits the host.
        """
        self.check_processes(names)
        if not names:
            return 0
        mixes = self.closure_mixes(names)
        observer = get_observer()
        if observer.enabled:
            with observer.span(
                "fleet.prime",
                mixes=len(mixes),
                ways=len(self._models_by_ways),
            ):
                primed = self._prime_impl(mixes)
            observer.counter("fleet.primed_mixes").inc(primed)
            return primed
        return self._prime_impl(mixes)

    def _prime_impl(self, mixes: List[Tuple[str, ...]]) -> int:
        primed = 0
        for ways, cache in sorted(self._caches_by_ways.items()):
            with ParallelPredictor(
                self.features,
                ways=ways,
                strategy=self.strategy,
                workers=self.workers,
                chunk_size=self.chunk_size,
                cache=cache,
                engine=self.engine,
            ) as predictor:
                predictions = predictor.predict_mixes(mixes)
            primed += len(predictions)
            # Seed each combined model's operating-point cache so
            # machine scoring never re-enters the predictor.
            for config in self._configs.values():
                for domain_idx, domain in enumerate(config.topology.domains):
                    if domain.geometry.ways != ways:
                        continue
                    for mix, prediction in zip(mixes, predictions):
                        if len(mix) > len(domain.core_ids):
                            continue
                        config.combined.seed_corun(
                            domain_idx,
                            mix,
                            {
                                p.name: (p.spi, p.l2mpr)
                                for p in prediction.processes
                            },
                        )
        return primed

    # ------------------------------------------------------------------
    # Machine-state pricing
    # ------------------------------------------------------------------
    def idle_watts(self, group_index: int) -> float:
        """Predicted power of an idle machine of one group."""
        return self.group_configs[group_index].idle_watts

    def total_idle_watts(self) -> float:
        """Fleet power with every machine idle (the search's floor)."""
        return sum(
            group.count * config.idle_watts
            for group, config in zip(self.fleet.groups, self.group_configs)
        )

    def machine_metrics(
        self,
        group_index: int,
        assignment: Mapping[int, Sequence[str]],
        pstate_of: Optional[Mapping[int, int]] = None,
    ) -> Tuple[float, float]:
        """Memoised ``(watts, ips)`` of one machine of a group.

        For hetero groups, ``pstate_of`` maps busy cores to P-state
        indices (missing cores default to index 0, the nominal state).
        """
        config = self.group_configs[group_index]
        if config.hetero is not None:
            pstates = dict(pstate_of or {})
            state: Union[MachineState, HeteroState] = canonical_hetero_state(
                assignment,
                {
                    core: pstates.get(core, 0)
                    for core, names in assignment.items()
                    if names
                },
            )
        else:
            state = canonical_state(assignment)
        return self.state_metrics(config, state)

    def state_metrics(
        self,
        config: _MachineConfig,
        state: Union[MachineState, HeteroState],
    ) -> Tuple[float, float]:
        """``(watts, ips)`` of a canonical machine state (memoised).

        Hetero configs take :data:`~repro.hetero.model.HeteroState`
        (``(core, names, pstate_index)`` entries) and price through the
        config's :class:`~repro.hetero.model.HeteroPricer`; homogeneous
        configs keep the two-element entries and the original path.
        """
        self.lookups += 1
        if not state:
            return (config.idle_watts, 0.0)
        key = (config.key_id, state)
        cached = self._state_memo.get(key)
        if cached is not None:
            return cached
        if config.pricer is not None:
            watts, ips = config.pricer.state_metrics(state)
        else:
            scoring = {core: list(names) for core, names in state}
            watts = config.combined.estimate_assignment_power(scoring).watts
            ips = config.combined.estimate_assignment_throughput(scoring)
        self.evaluations += 1
        result = (float(watts), float(ips))
        self._state_memo[key] = result
        return result
