"""Fleet inventory descriptions for cross-machine assignment.

A fleet is a multiset of machines drawn from
:data:`~repro.machine.topology.STANDARD_MACHINES`: heterogeneous
groups, each with a count and optional per-machine power cap.  The
spec is pure data — frozen, hashable-by-value where possible, and
JSON-round-trippable through :mod:`repro.io` — so one document can
describe an inventory to the solver, the HTTP service and the CLI
alike.

Machines *within* a group are interchangeable: the solver exploits
that symmetry both to deduplicate candidate placements and to
memoise per-machine model evaluations across identical states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.hetero.types import HeteroMachineSpec
from repro.machine.topology import MachineTopology, STANDARD_MACHINES

__all__ = ["MachineGroup", "FleetSpec"]


@dataclass(frozen=True)
class MachineGroup:
    """``count`` identical machines of one standard type.

    Args:
        machine: Name in :data:`STANDARD_MACHINES`.
        count: Number of machines of this type in the fleet.
        sets: Cache set scaling applied to every machine of the group.
        power_cap_watts: Optional per-machine power cap; candidate
            placements predicted to exceed it on any machine of this
            group are infeasible.
        hetero: Optional heterogeneous core-type / P-state spec shared
            by every machine of the group; the solver then also picks
            a P-state per busy core.
    """

    machine: str
    count: int = 1
    sets: int = 128
    power_cap_watts: Optional[float] = None
    hetero: Optional[HeteroMachineSpec] = None

    def __post_init__(self) -> None:
        if self.machine not in STANDARD_MACHINES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; "
                f"choose from {sorted(STANDARD_MACHINES)}"
            )
        if int(self.count) < 1:
            raise ConfigurationError("machine group count must be >= 1")
        if int(self.sets) < 1:
            raise ConfigurationError("sets must be >= 1")
        if self.power_cap_watts is not None and not self.power_cap_watts > 0:
            raise ConfigurationError("power_cap_watts must be positive")
        if self.hetero is not None:
            if not isinstance(self.hetero, HeteroMachineSpec):
                raise ConfigurationError(
                    "hetero must be a HeteroMachineSpec, got "
                    f"{type(self.hetero).__name__}"
                )
            if self.hetero.machine != self.machine:
                raise ConfigurationError(
                    f"hetero spec is for machine {self.hetero.machine!r} "
                    f"but the group uses {self.machine!r}"
                )

    def topology(self) -> MachineTopology:
        """Build the group's machine topology."""
        return STANDARD_MACHINES[self.machine](sets=self.sets)


@dataclass(frozen=True)
class FleetSpec:
    """A heterogeneous machine inventory (ordered groups with counts)."""

    groups: Tuple[MachineGroup, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise ConfigurationError("a fleet needs at least one machine group")
        for group in self.groups:
            if not isinstance(group, MachineGroup):
                raise ConfigurationError(
                    f"fleet groups must be MachineGroup instances, got "
                    f"{type(group).__name__}"
                )

    @classmethod
    def single(
        cls,
        machine: str,
        *,
        sets: int = 128,
        power_cap_watts: Optional[float] = None,
    ) -> "FleetSpec":
        """A one-machine fleet (the paper's single-machine problem)."""
        return cls(
            groups=(
                MachineGroup(
                    machine=machine,
                    count=1,
                    sets=sets,
                    power_cap_watts=power_cap_watts,
                ),
            )
        )

    @property
    def total_machines(self) -> int:
        return sum(group.count for group in self.groups)

    @property
    def total_cores(self) -> int:
        return sum(
            group.count * group.topology().num_cores for group in self.groups
        )

    def to_dict(self) -> dict:
        from repro.io import fleet_spec_to_dict

        return fleet_spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        from repro.io import fleet_spec_from_dict

        return fleet_spec_from_dict(data)
