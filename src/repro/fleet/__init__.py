"""repro.fleet — heterogeneous fleet assignment.

Scales the paper's process-to-core assignment search from one machine
to an inventory of them: a :class:`FleetSpec` describes the machines,
a declarative :class:`AssignmentRequest` describes the problem, and
:func:`solve` returns a :class:`FleetAssignment` — via the exhaustive
oracle on small instances and seeded greedy + simulated-annealing
heuristics on large ones.  See :mod:`repro.fleet.solver` for the
determinism and oracle-equality guarantees.

Most callers should use the facade entry point
:func:`repro.api.solve_assignment` instead of this package directly.
"""

from repro.fleet.evaluator import (
    CANONICAL_OBJECTIVES,
    FleetEvaluator,
    canonical_objective,
    fleet_score,
)
from repro.fleet.solver import (
    DEFAULT_ANNEAL_ITERATIONS,
    DEFAULT_SWEEP_LIMIT,
    solve,
)
from repro.fleet.spec import FleetSpec, MachineGroup
from repro.fleet.types import (
    SOLVERS,
    AssignmentRequest,
    FleetAssignment,
    MachineAssignment,
)

__all__ = [
    "CANONICAL_OBJECTIVES",
    "DEFAULT_ANNEAL_ITERATIONS",
    "DEFAULT_SWEEP_LIMIT",
    "SOLVERS",
    "AssignmentRequest",
    "FleetAssignment",
    "FleetEvaluator",
    "FleetSpec",
    "MachineAssignment",
    "MachineGroup",
    "canonical_objective",
    "fleet_score",
    "solve",
]
