"""Declarative request/result types for fleet assignment.

:class:`AssignmentRequest` is the single entry point's input: a frozen,
JSON-round-trippable description of *what* to solve (processes,
objective, fleet, constraints, search budget) with no execution knobs —
engine/worker selection stays a keyword of
:func:`repro.api.solve_assignment`, so the same document gives the same
answer on any host.  :class:`FleetAssignment` is the matching result
bundle.  Both round-trip bit-exactly through :mod:`repro.io`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fleet.evaluator import canonical_objective
from repro.fleet.spec import FleetSpec
from repro.machine.topology import STANDARD_MACHINES

__all__ = ["SOLVERS", "AssignmentRequest", "MachineAssignment", "FleetAssignment"]

#: Recognised solver names.  ``auto`` picks ``exhaustive`` when the
#: instance is small enough to enumerate and ``anneal`` otherwise.
SOLVERS = ("auto", "exhaustive", "greedy", "anneal")


@dataclass(frozen=True)
class AssignmentRequest:
    """A declarative fleet-assignment problem.

    Args:
        processes: Process instances to place (duplicates allowed).
        objective: ``min-power`` / ``max-throughput`` /
            ``min-energy-per-instruction`` /
            ``throughput-under-watts-budget`` (legacy single-machine
            names ``power`` / ``throughput`` / ``energy_per_instruction``
            are accepted as aliases).
        solver: One of :data:`SOLVERS`.
        fleet: Machine inventory; ``None`` means the single machine
            named by ``machine``/``sets`` (the paper's original
            problem).
        machine / sets: Single-machine shorthand used when ``fleet``
            is ``None``.
        max_per_core: Optional cap on processes time-sharing one core.
        power_budget_watts: Global fleet power budget (hard
            constraint; required by ``throughput-under-watts-budget``).
        machine_power_cap_watts: Per-machine cap applied fleet-wide
            (group caps in the fleet spec tighten it further).
        budget_s: Wall-clock budget for the anneal refinement; the
            search stops early and reports its best-so-far.  Leave
            ``None`` for bit-reproducible runs (iteration-bounded).
        max_iterations: Annealing iteration budget (the deterministic
            knob).
        seed: Master seed for the annealing streams
            (:data:`repro.seeding.STREAM_FLEET`).
    """

    processes: Tuple[str, ...]
    objective: str = "min-power"
    solver: str = "auto"
    fleet: Optional[FleetSpec] = None
    machine: str = "4-core-server"
    sets: int = 128
    max_per_core: Optional[int] = None
    power_budget_watts: Optional[float] = None
    machine_power_cap_watts: Optional[float] = None
    budget_s: Optional[float] = None
    max_iterations: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "processes", tuple(str(name) for name in self.processes)
        )
        if not self.processes:
            raise ConfigurationError("need at least one process to assign")
        canonical_objective(self.objective)  # validates
        if self.solver not in SOLVERS:
            raise ConfigurationError(
                f"unknown solver {self.solver!r}; choose from {SOLVERS}"
            )
        if self.fleet is None and self.machine not in STANDARD_MACHINES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; "
                f"choose from {sorted(STANDARD_MACHINES)}"
            )
        if int(self.sets) < 1:
            raise ConfigurationError("sets must be >= 1")
        if self.max_per_core is not None and int(self.max_per_core) < 1:
            raise ConfigurationError("max_per_core must be >= 1")
        for name in ("power_budget_watts", "machine_power_cap_watts"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.budget_s is not None and not self.budget_s > 0:
            raise ConfigurationError("budget_s must be positive")
        if self.max_iterations is not None and int(self.max_iterations) < 0:
            raise ConfigurationError("max_iterations must be non-negative")
        if int(self.seed) < 0:
            raise ConfigurationError("seed must be non-negative")
        if (
            canonical_objective(self.objective)
            == "throughput-under-watts-budget"
            and self.power_budget_watts is None
        ):
            raise ConfigurationError(
                "objective 'throughput-under-watts-budget' needs "
                "power_budget_watts"
            )

    def resolved_fleet(self) -> FleetSpec:
        """The inventory to pack (single-machine shorthand expanded)."""
        if self.fleet is not None:
            return self.fleet
        return FleetSpec.single(self.machine, sets=self.sets)

    def to_dict(self) -> dict:
        from repro.io import assignment_request_to_dict

        return assignment_request_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AssignmentRequest":
        from repro.io import assignment_request_from_dict

        return assignment_request_from_dict(data)


@dataclass(frozen=True)
class MachineAssignment:
    """One machine's share of a fleet assignment.

    ``group``/``index`` locate the machine in the fleet spec;
    ``assignment`` maps core id to the (sorted) names time-sharing it,
    idle cores omitted.  Idle machines appear with an empty assignment
    and their predicted idle power.  For machines of a hetero group,
    ``pstates`` maps each busy core to its chosen P-state index (idle
    cores park at their core type's deepest P-state and carry no
    entry); it is ``None`` for homogeneous machines.
    """

    machine: str
    group: int
    index: int
    assignment: Dict[int, Tuple[str, ...]]
    predicted_watts: float
    predicted_ips: float
    pstates: Optional[Dict[int, int]] = None


@dataclass(frozen=True)
class FleetAssignment:
    """Result bundle of :func:`repro.api.solve_assignment`.

    Deliberately free of wall-clock fields: for a given request (and
    any engine/worker setting) the bundle is bit-identical across
    runs, which the determinism tests pin.  ``improvements`` is the
    anytime best-so-far trace — ``(iteration, score)`` each time the
    incumbent improved, iteration 0 being the construction heuristic's
    solution.
    """

    objective: str
    solver: str
    refinement: str
    fleet: FleetSpec
    processes: Tuple[str, ...]
    machines: Tuple[MachineAssignment, ...]
    predicted_watts: float
    predicted_ips: float
    score: float
    evaluations: int
    iterations: int
    improvements: Tuple[Tuple[int, float], ...] = field(default_factory=tuple)
    seed: int = 0

    @property
    def busy_machines(self) -> Tuple[MachineAssignment, ...]:
        return tuple(m for m in self.machines if m.assignment)

    def to_dict(self) -> dict:
        from repro.io import fleet_assignment_to_dict

        return fleet_assignment_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetAssignment":
        from repro.io import fleet_assignment_from_dict

        return fleet_assignment_from_dict(data)

    def save(self, path) -> None:
        """Write the bundle to JSON (io conventions)."""
        from repro.io import save_json

        save_json(self.to_dict(), path)
