"""Fleet assignment search: exhaustive oracle plus anytime heuristics.

Three solvers share one memoised evaluator (:mod:`repro.fleet.evaluator`)
and one canonical scoring routine, so their scores are directly
comparable bit-for-bit:

- ``exhaustive`` — enumerate every placement of the processes onto the
  fleet's ``(machine, core)`` slots, deduplicated by canonical fleet
  state (machines of a group are interchangeable, as are identical
  process instances).  Guarded by
  :class:`~repro.errors.AssignmentTooLargeError` *before* enumeration.
- ``greedy`` — seeded packing: place processes one at a time on the
  candidate slot minimising the fleet objective, enumerating one
  representative per distinct (group, machine state, core content).
  Scales to 10k+ processes because each step prices only a handful of
  never-seen machine states.
- ``anneal`` — simulated-annealing refinement of the greedy solution
  using :data:`repro.seeding.STREAM_FLEET` streams, with an iteration
  budget (the deterministic knob) and an optional wall-clock budget
  (anytime best-so-far).  On instances small enough to enumerate it
  runs a deterministic exhaustive sweep instead, so it *equals* the
  oracle there by construction; everywhere it is never worse than
  greedy (the incumbent starts as the greedy solution).

Every tie is broken by ``(score, candidate index)`` — the first
candidate in the deterministic enumeration order wins — and all state
pricing goes through cold-start caches, so for a fixed request the
result is bit-identical across runs, engines and worker counts.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import DEFAULT_MAX_CANDIDATES, format_candidate_count
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.power_model import CorePowerModel
from repro.errors import AssignmentTooLargeError, ConfigurationError
from repro.fleet.evaluator import (
    FleetEvaluator,
    MachineState,
    canonical_objective,
    canonical_state,
    fleet_score,
)
from repro.fleet.spec import FleetSpec
from repro.fleet.types import AssignmentRequest, FleetAssignment, MachineAssignment
from repro.hetero.types import HeteroMachineSpec
from repro.obs import get_observer
from repro.seeding import STREAM_FLEET, stream_seed

__all__ = [
    "DEFAULT_ANNEAL_ITERATIONS",
    "DEFAULT_SWEEP_LIMIT",
    "solve",
]

#: Raw enumeration sizes up to this run the deterministic exhaustive
#: sweep inside ``anneal`` (and steer ``auto`` to ``exhaustive``).
DEFAULT_SWEEP_LIMIT = 65_536

#: Default annealing iteration budget when the request sets none.
DEFAULT_ANNEAL_ITERATIONS = 2_000

#: One fleet slot: (group index, machine index within group, core id).
Slot = Tuple[int, int, int]

#: Chosen P-states of the busy hetero cores: ``(group, machine) ->
#: {core: pstate index}``.  Cores absent from a machine's map default
#: to index 0 (the nominal state); homogeneous machines never appear.
PStateMap = Dict[Tuple[int, int], Dict[int, int]]


@dataclass
class _Context:
    """Everything the solver implementations share for one request."""

    request: AssignmentRequest
    evaluator: FleetEvaluator
    fleet: FleetSpec
    processes: Tuple[str, ...]
    objective: str  #: canonical objective name
    caps: List[Optional[float]]  #: effective per-machine cap per group
    budget: Optional[float]
    max_per_core: Optional[int]
    slots: List[Slot]
    sweep_limit: int
    #: Per group: the hetero spec, or ``None`` for homogeneous groups.
    hetero: Tuple[Optional[HeteroMachineSpec], ...] = ()
    #: Per group: per-core P-state counts (``None`` when homogeneous).
    pstate_counts: Tuple[Optional[Tuple[int, ...]], ...] = ()

    @property
    def has_pstate_choice(self) -> bool:
        """True when any core anywhere has more than one P-state."""
        return any(
            counts is not None and any(count > 1 for count in counts)
            for counts in self.pstate_counts
        )

    @property
    def pstate_bound(self) -> int:
        """Upper bound on per-placement P-state combinations.

        At most ``min(processes, hetero cores)`` hetero cores can be
        busy at once, and each busy core multiplies the enumeration by
        its P-state count; the product of the largest such counts is a
        safe (reachable) upper bound.
        """
        counts: List[int] = []
        for group_index, group in enumerate(self.fleet.groups):
            per_core = self.pstate_counts[group_index]
            if per_core is None:
                continue
            counts.extend(per_core for _ in range(group.count))
        flat = sorted(
            (count for per_core in counts for count in per_core),
            reverse=True,
        )
        factor = 1
        for count in flat[: len(self.processes)]:
            factor *= count
        return factor

    @property
    def bound(self) -> int:
        """Raw enumeration size of the fleet exhaustive search."""
        return len(self.slots) ** len(self.processes) * self.pstate_bound


def _machine_state(
    ctx: _Context,
    group_index: int,
    assignment: Mapping[int, Sequence[str]],
    pstate_of: Mapping[int, int],
):
    """Canonical state of one machine — hetero-aware.

    Homogeneous groups keep the original two-element entries (and the
    original float/score behavior, bit for bit); hetero groups append
    the busy core's P-state index, defaulting to 0 where unset.
    """
    if ctx.hetero[group_index] is None:
        return canonical_state(assignment)
    return tuple(
        sorted(
            (int(core), tuple(sorted(names)), int(pstate_of.get(core, 0)))
            for core, names in assignment.items()
            if names
        )
    )


def _effective_caps(
    fleet: FleetSpec, machine_cap: Optional[float]
) -> List[Optional[float]]:
    caps: List[Optional[float]] = []
    for group in fleet.groups:
        cap = group.power_cap_watts
        if machine_cap is not None:
            cap = machine_cap if cap is None else min(cap, machine_cap)
        caps.append(cap)
    return caps


def _score_states(
    ctx: _Context, states: Sequence[Tuple[int, MachineState]]
) -> Tuple[float, float, float]:
    """Canonical ``(score, watts, ips)`` of a busy-machine multiset.

    ``states`` must be sorted; summing in that fixed order is what
    makes reported scores identical no matter which solver (or which
    incremental arithmetic) found the configuration.
    """
    evaluator = ctx.evaluator
    watts = evaluator.total_idle_watts()
    ips = 0.0
    for group_index, state in states:
        config = evaluator.group_configs[group_index]
        machine_watts, machine_ips = evaluator.state_metrics(config, state)
        cap = ctx.caps[group_index]
        if cap is not None and machine_watts > cap:
            return float("inf"), watts, ips
        watts += machine_watts - config.idle_watts
        ips += machine_ips
    return fleet_score(ctx.objective, watts, ips, ctx.budget), watts, ips


# ----------------------------------------------------------------------
# Exhaustive oracle
# ----------------------------------------------------------------------
def _solve_exhaustive(
    ctx: _Context, max_candidates: Optional[int] = None
) -> Tuple[List[Slot], PStateMap, int, List[Tuple[int, float]]]:
    """Globally optimal (placement x P-state) choice (small instances).

    Returns ``(placements, pstates, candidates_scored, improvements)``.
    For each placement, every combination of P-state indices over the
    busy hetero cores is enumerated — the oracle the P-state-aware
    heuristics are pinned against.
    """
    cap = DEFAULT_MAX_CANDIDATES if max_candidates is None else int(max_candidates)
    if cap < 1:
        raise ConfigurationError("max_candidates must be >= 1")
    bound = ctx.bound
    if bound > cap:
        pstate_note = (
            " (including per-core P-state choices)"
            if ctx.has_pstate_choice
            else ""
        )
        raise AssignmentTooLargeError(
            f"exhaustive fleet search over {len(ctx.processes)} processes "
            f"and {len(ctx.slots)} (machine, core) slots enumerates "
            f"{format_candidate_count(bound)} placements{pstate_note}, "
            f"above the cap of "
            f"{cap}; raise max_candidates or "
            f'use solver="greedy" / solver="anneal", which scale to fleets '
            f"this size",
            candidate_count=bound,
            max_candidates=cap,
        )
    processes = ctx.processes
    slots = ctx.slots
    seen = set()
    best: Optional[Tuple[float, int, Tuple[int, ...], PStateMap]] = None
    improvements: List[Tuple[int, float]] = []
    scored = 0
    for placement in itertools.product(range(len(slots)), repeat=len(processes)):
        per_machine: Dict[Tuple[int, int], Dict[int, List[str]]] = {}
        feasible = True
        for name, slot_index in zip(processes, placement):
            group_index, machine_index, core = slots[slot_index]
            assignment = per_machine.setdefault((group_index, machine_index), {})
            names = assignment.setdefault(core, [])
            names.append(name)
            if ctx.max_per_core is not None and len(names) > ctx.max_per_core:
                feasible = False
                break
        if not feasible:
            continue
        # Busy cores of hetero machines each multiply the candidate by
        # their P-state count; homogeneous placements take the single
        # empty combination and skip the machinery entirely.
        hetero_cores: List[Tuple[Tuple[int, int], int]] = []
        for machine_key in sorted(per_machine):
            counts = ctx.pstate_counts[machine_key[0]]
            if counts is None:
                continue
            for core in sorted(per_machine[machine_key]):
                hetero_cores.append((machine_key, core))
        if hetero_cores:
            choice_iter = itertools.product(
                *(
                    range(ctx.pstate_counts[machine_key[0]][core])
                    for machine_key, core in hetero_cores
                )
            )
        else:
            choice_iter = iter(((),))
        for choices in choice_iter:
            pstate_of: PStateMap = {}
            for (machine_key, core), pstate_index in zip(hetero_cores, choices):
                pstate_of.setdefault(machine_key, {})[core] = pstate_index
            states = tuple(
                sorted(
                    (
                        machine_key[0],
                        _machine_state(
                            ctx,
                            machine_key[0],
                            assignment,
                            pstate_of.get(machine_key, {}),
                        ),
                    )
                    for machine_key, assignment in per_machine.items()
                )
            )
            if states in seen:
                continue
            seen.add(states)
            score, _watts, _ips = _score_states(ctx, states)
            index = scored
            scored += 1
            if math.isinf(score):
                continue
            if best is None or (score, index) < (best[0], best[1]):
                best = (score, index, placement, pstate_of)
                improvements.append((index, score))
    if best is None:
        raise ConfigurationError(
            "no feasible fleet assignment under the given power caps / "
            "budget / max_per_core constraints"
        )
    return [slots[i] for i in best[2]], best[3], scored, improvements


# ----------------------------------------------------------------------
# Greedy packing
# ----------------------------------------------------------------------
def _heap_representative(
    heap_map: Dict[MachineState, List[int]],
    state: MachineState,
    states_of: List[MachineState],
) -> Optional[int]:
    """Lowest machine index currently in ``state`` (lazy-invalidating).

    Heap entries go stale when a machine changes state; they are
    dropped on sight, keeping each lookup amortised O(log n).
    """
    heap = heap_map.get(state)
    while heap:
        machine_index = heap[0]
        if states_of[machine_index] == state:
            return machine_index
        heapq.heappop(heap)
    if heap is not None:
        del heap_map[state]
    return None


def _solve_greedy(ctx: _Context) -> Tuple[List[Slot], PStateMap]:
    """One-at-a-time packing over deduplicated candidate slots.

    Machines of a group in identical states are interchangeable, as
    are a machine's cores with identical contents — so each step
    scores one representative per distinct (group, state, content),
    keeping the per-step candidate count small and independent of the
    fleet's machine count.

    On hetero groups, placing onto an *idle* core also chooses its
    P-state (every index is a candidate); placing onto a busy core
    keeps the core's existing P-state.  Core-content deduplication
    then keys on (core type, current P-state, names) so distinct
    operating points are never conflated.
    """
    evaluator = ctx.evaluator
    fleet = ctx.fleet
    machines: List[List[Dict[int, List[str]]]] = [
        [{} for _ in range(group.count)] for group in fleet.groups
    ]
    pstates_of: List[List[Dict[int, int]]] = [
        [{} for _ in range(group.count)] for group in fleet.groups
    ]
    metrics: List[List[Tuple[float, float]]] = [
        [(evaluator.group_configs[g].idle_watts, 0.0)] * group.count
        for g, group in enumerate(fleet.groups)
    ]
    metrics = [list(row) for row in metrics]
    states_of: List[List[MachineState]] = [
        [()] * group.count for group in fleet.groups
    ]
    heaps: List[Dict[MachineState, List[int]]] = [
        {(): list(range(group.count))} for group in fleet.groups
    ]
    total_watts = evaluator.total_idle_watts()
    total_ips = 0.0
    placements: List[Slot] = []
    for name in ctx.processes:
        best: Optional[Tuple[Tuple[float, int], int, int, int, Optional[int],
                             float, float, float, float]] = None
        candidate_index = 0
        for group_index, group in enumerate(fleet.groups):
            config = evaluator.group_configs[group_index]
            cap = ctx.caps[group_index]
            hetero = ctx.hetero[group_index]
            counts = ctx.pstate_counts[group_index]
            for state in sorted(heaps[group_index]):
                rep = _heap_representative(
                    heaps[group_index], state, states_of[group_index]
                )
                if rep is None:
                    continue
                assignment = machines[group_index][rep]
                rep_pstates = pstates_of[group_index][rep]
                seen_contents = set()
                for core in range(config.num_cores):
                    names = tuple(sorted(assignment.get(core, ())))
                    if hetero is None:
                        content = names
                        pstate_options: Tuple[Optional[int], ...] = (None,)
                    else:
                        current = rep_pstates.get(core, 0) if names else None
                        content = (hetero.core_type_of[core], current, names)
                        if names:
                            pstate_options = (current,)
                        else:
                            pstate_options = tuple(range(counts[core]))
                    if content in seen_contents:
                        continue
                    seen_contents.add(content)
                    for pstate_option in pstate_options:
                        index = candidate_index
                        candidate_index += 1
                        if (
                            ctx.max_per_core is not None
                            and len(names) >= ctx.max_per_core
                        ):
                            continue
                        trial = {c: list(v) for c, v in assignment.items()}
                        trial.setdefault(core, []).append(name)
                        if hetero is None:
                            trial_state = canonical_state(trial)
                        else:
                            trial_pstates = dict(rep_pstates)
                            if pstate_option is not None:
                                trial_pstates[core] = pstate_option
                            trial_state = _machine_state(
                                ctx, group_index, trial, trial_pstates
                            )
                        watts, ips = evaluator.state_metrics(config, trial_state)
                        if cap is not None and watts > cap:
                            continue
                        old_watts, old_ips = metrics[group_index][rep]
                        new_total_watts = total_watts - old_watts + watts
                        new_total_ips = total_ips - old_ips + ips
                        score = fleet_score(
                            ctx.objective, new_total_watts, new_total_ips,
                            ctx.budget,
                        )
                        if math.isinf(score):
                            continue
                        key = (score, index)
                        if best is None or key < best[0]:
                            best = (
                                key, group_index, rep, core, pstate_option,
                                watts, ips, new_total_watts, new_total_ips,
                            )
        if best is None:
            raise ConfigurationError(
                f"greedy packing found no feasible slot for {name!r} under "
                "the given power caps / budget / max_per_core constraints"
            )
        (_key, group_index, rep, core, pstate_option,
         watts, ips, total_watts, total_ips) = best
        machines[group_index][rep].setdefault(core, []).append(name)
        if ctx.hetero[group_index] is not None:
            if pstate_option is not None:
                pstates_of[group_index][rep][core] = pstate_option
            new_state = _machine_state(
                ctx,
                group_index,
                machines[group_index][rep],
                pstates_of[group_index][rep],
            )
        else:
            new_state = canonical_state(machines[group_index][rep])
        states_of[group_index][rep] = new_state
        metrics[group_index][rep] = (watts, ips)
        heapq.heappush(heaps[group_index].setdefault(new_state, []), rep)
        placements.append((group_index, rep, core))
    pstate_map: PStateMap = {}
    for group_index, group in enumerate(fleet.groups):
        if ctx.hetero[group_index] is None:
            continue
        for machine_index in range(group.count):
            busy = machines[group_index][machine_index]
            if not busy:
                continue
            chosen = pstates_of[group_index][machine_index]
            pstate_map[(group_index, machine_index)] = {
                core: chosen.get(core, 0) for core in busy
            }
    return placements, pstate_map


# ----------------------------------------------------------------------
# Simulated-annealing refinement
# ----------------------------------------------------------------------
def _solve_anneal(
    ctx: _Context,
) -> Tuple[List[Slot], PStateMap, str, int, List[Tuple[int, float]]]:
    """Greedy construction plus refinement.

    Returns ``(placements, pstates, refinement, iterations,
    improvements)``.  Small instances (raw enumeration — including the
    per-core P-state combinations — within ``sweep_limit``) take the
    deterministic exhaustive sweep — the heuristic then *is* the
    oracle.  Larger ones run seeded simulated annealing from the
    greedy incumbent; the incumbent only ever improves, so the result
    is never worse than greedy.
    """
    greedy, greedy_pstates = _solve_greedy(ctx)
    if ctx.bound <= ctx.sweep_limit:
        placements, pstates, scored, improvements = _solve_exhaustive(
            ctx, max_candidates=ctx.sweep_limit
        )
        return placements, pstates, "sweep", scored, improvements
    return _anneal_from(ctx, greedy, greedy_pstates)


def _states_of_placements(
    ctx: _Context,
    placements: Sequence[Slot],
    pstates: Optional[PStateMap] = None,
) -> Tuple[Tuple[int, MachineState], ...]:
    per_machine: Dict[Tuple[int, int], Dict[int, List[str]]] = {}
    for name, (group_index, machine_index, core) in zip(ctx.processes, placements):
        per_machine.setdefault((group_index, machine_index), {}).setdefault(
            core, []
        ).append(name)
    pstates = pstates or {}
    return tuple(
        sorted(
            (
                machine_key[0],
                _machine_state(
                    ctx,
                    machine_key[0],
                    assignment,
                    pstates.get(machine_key, {}),
                ),
            )
            for machine_key, assignment in per_machine.items()
        )
    )


def _anneal_from(
    ctx: _Context, start: List[Slot], start_pstates: PStateMap
) -> Tuple[List[Slot], PStateMap, str, int, List[Tuple[int, float]]]:
    evaluator = ctx.evaluator
    processes = ctx.processes
    slots = ctx.slots
    k = len(processes)
    # Rebuild mutable state from the greedy placement.
    machines: List[List[Dict[int, List[str]]]] = [
        [{} for _ in range(group.count)] for group in ctx.fleet.groups
    ]
    for name, (group_index, machine_index, core) in zip(processes, start):
        machines[group_index][machine_index].setdefault(core, []).append(name)
    pstates: PStateMap = {
        machine_key: dict(chosen) for machine_key, chosen in start_pstates.items()
    }
    metrics: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for group_index, group in enumerate(ctx.fleet.groups):
        config = evaluator.group_configs[group_index]
        for machine_index in range(group.count):
            state = _machine_state(
                ctx,
                group_index,
                machines[group_index][machine_index],
                pstates.get((group_index, machine_index), {}),
            )
            metrics[(group_index, machine_index)] = evaluator.state_metrics(
                config, state
            )
    start_states = _states_of_placements(ctx, start, pstates)
    current_score, total_watts, total_ips = _score_states(ctx, start_states)
    placement = list(start)
    best_placement = list(start)
    best_pstates: PStateMap = {
        machine_key: dict(chosen) for machine_key, chosen in pstates.items()
    }
    best_score = current_score
    improvements: List[Tuple[int, float]] = [(0, current_score)]
    has_pstate_choice = ctx.has_pstate_choice

    iterations = (
        DEFAULT_ANNEAL_ITERATIONS
        if ctx.request.max_iterations is None
        else int(ctx.request.max_iterations)
    )
    rng = np.random.default_rng(stream_seed(ctx.request.seed, STREAM_FLEET, 0))
    t_start = 0.02 * max(1.0, abs(current_score))
    t_end = 1e-3 * t_start
    deadline = (
        None
        if ctx.request.budget_s is None
        else time.monotonic() + float(ctx.request.budget_s)
    )
    executed = 0
    for iteration in range(1, iterations + 1):
        if deadline is not None and time.monotonic() > deadline:
            break
        executed = iteration
        temperature = t_start * (t_end / t_start) ** (
            (iteration - 1) / max(1, iterations - 1)
        )
        # Move selection.  Without P-state choice anywhere, the draw
        # sequence below is exactly the pre-hetero one — homogeneous
        # requests stay bit-identical seed for seed.  With P-states, a
        # third move kind flips one busy hetero core's P-state.
        flip: Optional[Tuple[Tuple[int, int], int, int]] = None
        if has_pstate_choice:
            roll = rng.random()
            if k >= 2 and roll < 1.0 / 3.0:
                kind = "swap"
            elif roll < 2.0 / 3.0:
                kind = "flip"
            else:
                kind = "move"
        else:
            kind = "swap" if (k >= 2 and rng.random() < 0.5) else "move"
        if kind == "swap":
            p = int(rng.integers(k))
            q = int(rng.integers(k))
            if p == q or processes[p] == processes[q] or placement[p] == placement[q]:
                continue
            moves = [(p, placement[q]), (q, placement[p])]
        elif kind == "flip":
            p = int(rng.integers(k))
            group_index, machine_index, core = placement[p]
            counts = ctx.pstate_counts[group_index]
            if counts is None or counts[core] <= 1:
                continue
            new_pstate = int(rng.integers(counts[core]))
            machine_key = (group_index, machine_index)
            if new_pstate == pstates.get(machine_key, {}).get(core, 0):
                continue
            flip = (machine_key, core, new_pstate)
            moves = []
        else:
            p = int(rng.integers(k))
            target = slots[int(rng.integers(len(slots)))]
            if placement[p] == target:
                continue
            moves = [(p, target)]
        # Trial states of the (at most four) touched machines.
        touched: Dict[Tuple[int, int], Dict[int, List[str]]] = {}
        trial_pstates: Dict[Tuple[int, int], Dict[int, int]] = {}

        def trial_machine(machine_key: Tuple[int, int]) -> Dict[int, List[str]]:
            if machine_key not in touched:
                group_index, machine_index = machine_key
                touched[machine_key] = {
                    c: list(v)
                    for c, v in machines[group_index][machine_index].items()
                }
                if ctx.hetero[group_index] is not None:
                    trial_pstates[machine_key] = dict(
                        pstates.get(machine_key, {})
                    )
            return touched[machine_key]

        feasible = True
        if flip is not None:
            machine_key, core, new_pstate = flip
            trial_machine(machine_key)
            trial_pstates[machine_key][core] = new_pstate
        for proc, _target in moves:
            group_index, machine_index, core = placement[proc]
            trial_machine((group_index, machine_index))[core].remove(
                processes[proc]
            )
        for proc, target in moves:
            group_index, machine_index, core = target
            names = trial_machine((group_index, machine_index)).setdefault(
                core, []
            )
            names.append(processes[proc])
            if ctx.max_per_core is not None and len(names) > ctx.max_per_core:
                feasible = False
        if not feasible:
            continue
        new_total_watts = total_watts
        new_total_ips = total_ips
        new_metrics: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for machine_key in sorted(touched):
            group_index = machine_key[0]
            config = evaluator.group_configs[group_index]
            state = _machine_state(
                ctx,
                group_index,
                touched[machine_key],
                trial_pstates.get(machine_key, {}),
            )
            watts, ips = evaluator.state_metrics(config, state)
            cap = ctx.caps[group_index]
            if cap is not None and watts > cap:
                feasible = False
                break
            old_watts, old_ips = metrics[machine_key]
            new_total_watts += watts - old_watts
            new_total_ips += ips - old_ips
            new_metrics[machine_key] = (watts, ips)
        if not feasible:
            continue
        trial_score = fleet_score(
            ctx.objective, new_total_watts, new_total_ips, ctx.budget
        )
        if math.isinf(trial_score):
            continue
        delta = trial_score - current_score
        if delta > 0 and rng.random() >= math.exp(-delta / temperature):
            continue
        # Accept: fold the trial into the live state.
        for machine_key, assignment in touched.items():
            group_index, machine_index = machine_key
            machines[group_index][machine_index] = {
                c: v for c, v in assignment.items() if v
            }
            if ctx.hetero[group_index] is not None:
                live = machines[group_index][machine_index]
                chosen = trial_pstates.get(machine_key, {})
                pruned = {c: chosen.get(c, 0) for c in live}
                if pruned:
                    pstates[machine_key] = pruned
                else:
                    pstates.pop(machine_key, None)
        metrics.update(new_metrics)
        for proc, target in moves:
            placement[proc] = target
        total_watts, total_ips = new_total_watts, new_total_ips
        current_score = trial_score
        if current_score < best_score:
            best_score = current_score
            best_placement = list(placement)
            best_pstates = {
                machine_key: dict(chosen)
                for machine_key, chosen in pstates.items()
            }
            improvements.append((iteration, current_score))
    # Guard against pathological float drift between the incremental
    # search arithmetic and the canonical report: never return a
    # configuration whose canonical score is worse than the start's.
    final_score, _w, _i = _score_states(
        ctx, _states_of_placements(ctx, best_placement, best_pstates)
    )
    start_score, _w, _i = _score_states(ctx, start_states)
    if final_score > start_score:
        best_placement = list(start)
        best_pstates = {
            machine_key: dict(chosen)
            for machine_key, chosen in start_pstates.items()
        }
        improvements = [(0, start_score)]
    return best_placement, best_pstates, "anneal", executed, improvements


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def _materialize(
    ctx: _Context,
    placements: Sequence[Slot],
    pstates: Optional[PStateMap],
    solver_name: str,
    refinement: str,
    iterations: int,
    improvements: Optional[Sequence[Tuple[int, float]]],
) -> FleetAssignment:
    evaluator = ctx.evaluator
    pstates = pstates or {}
    machines_acc: List[List[Dict[int, List[str]]]] = [
        [{} for _ in range(group.count)] for group in ctx.fleet.groups
    ]
    for name, (group_index, machine_index, core) in zip(ctx.processes, placements):
        machines_acc[group_index][machine_index].setdefault(core, []).append(name)

    def state_of(group_index: int, machine_index: int):
        return _machine_state(
            ctx,
            group_index,
            machines_acc[group_index][machine_index],
            pstates.get((group_index, machine_index), {}),
        )

    states = tuple(
        sorted(
            (group_index, state_of(group_index, machine_index))
            for group_index, group in enumerate(ctx.fleet.groups)
            for machine_index in range(group.count)
            if state_of(group_index, machine_index)
        )
    )
    score, watts, ips = _score_states(ctx, states)
    machine_assignments: List[MachineAssignment] = []
    for group_index, group in enumerate(ctx.fleet.groups):
        config = evaluator.group_configs[group_index]
        for machine_index in range(group.count):
            state = state_of(group_index, machine_index)
            machine_watts, machine_ips = evaluator.state_metrics(config, state)
            if ctx.hetero[group_index] is None:
                assignment = {core: names for core, names in state}
                machine_pstates = None
            else:
                assignment = {core: names for core, names, _p in state}
                machine_pstates = {core: p for core, _names, p in state}
            machine_assignments.append(
                MachineAssignment(
                    machine=group.machine,
                    group=group_index,
                    index=machine_index,
                    assignment=assignment,
                    predicted_watts=machine_watts,
                    predicted_ips=machine_ips,
                    pstates=machine_pstates,
                )
            )
    if improvements is None:
        improvements = [(0, score)]
    return FleetAssignment(
        objective=ctx.request.objective,
        solver=solver_name,
        refinement=refinement,
        fleet=ctx.fleet,
        processes=ctx.processes,
        machines=tuple(machine_assignments),
        predicted_watts=watts,
        predicted_ips=ips,
        score=score,
        evaluations=evaluator.evaluations,
        iterations=iterations,
        improvements=tuple(improvements),
        seed=ctx.request.seed,
    )


def solve(
    request: AssignmentRequest,
    features: Mapping[str, FeatureVector],
    profiles: Mapping[str, ProfileVector],
    power_model: CorePowerModel,
    *,
    strategy: str = "auto",
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    engine: str = "auto",
    max_candidates: Optional[int] = None,
    sweep_limit: Optional[int] = None,
) -> FleetAssignment:
    """Solve a declarative fleet-assignment request.

    The request says *what* to solve; everything here is an execution
    knob (fan-out engine, worker count, enumeration caps) that cannot
    change the returned bits — only how fast they arrive.
    """
    fleet = request.resolved_fleet()
    objective = canonical_objective(request.objective)
    evaluator = FleetEvaluator(
        features,
        profiles,
        power_model,
        fleet,
        strategy=strategy,
        workers=workers,
        chunk_size=chunk_size,
        engine=engine,
    )
    ctx = _Context(
        request=request,
        evaluator=evaluator,
        fleet=fleet,
        processes=request.processes,
        objective=objective,
        caps=_effective_caps(fleet, request.machine_power_cap_watts),
        budget=request.power_budget_watts,
        max_per_core=request.max_per_core,
        slots=[
            (group_index, machine_index, core)
            for group_index, group in enumerate(fleet.groups)
            for machine_index in range(group.count)
            for core in range(evaluator.group_configs[group_index].num_cores)
        ],
        sweep_limit=DEFAULT_SWEEP_LIMIT if sweep_limit is None else int(sweep_limit),
        hetero=tuple(group.hetero for group in fleet.groups),
        pstate_counts=tuple(
            group.hetero.pstate_counts if group.hetero is not None else None
            for group in fleet.groups
        ),
    )
    if ctx.max_per_core is not None and len(ctx.processes) > len(ctx.slots) * ctx.max_per_core:
        raise ConfigurationError(
            f"{len(ctx.processes)} processes cannot fit {len(ctx.slots)} cores "
            f"at max_per_core={ctx.max_per_core}"
        )
    solver_name = request.solver
    if solver_name == "auto":
        solver_name = "exhaustive" if ctx.bound <= ctx.sweep_limit else "anneal"
    observer = get_observer()
    if not observer.enabled:
        return _solve_impl(ctx, solver_name, max_candidates)
    with observer.span(
        "fleet.solve",
        solver=solver_name,
        objective=objective,
        processes=len(ctx.processes),
        machines=fleet.total_machines,
    ) as span:
        result = _solve_impl(ctx, solver_name, max_candidates)
        span.annotate(
            score=result.score,
            evaluations=result.evaluations,
            iterations=result.iterations,
        )
        observer.counter("fleet.solves").inc()
        observer.counter("fleet.machine_evals").inc(result.evaluations)
        observer.counter("fleet.iterations").inc(result.iterations)
        observer.histogram("fleet.score").observe(result.score)
        return result


def _solve_impl(
    ctx: _Context, solver_name: str, max_candidates: Optional[int]
) -> FleetAssignment:
    ctx.evaluator.prime(ctx.processes)
    if solver_name == "exhaustive":
        placements, pstates, scored, improvements = _solve_exhaustive(
            ctx, max_candidates
        )
        return _materialize(
            ctx, placements, pstates, "exhaustive", "none", scored, improvements
        )
    if solver_name == "greedy":
        placements, pstates = _solve_greedy(ctx)
        return _materialize(
            ctx, placements, pstates, "greedy", "none", len(ctx.processes), None
        )
    placements, pstates, refinement, iterations, improvements = _solve_anneal(ctx)
    return _materialize(
        ctx, placements, pstates, "anneal", refinement, iterations, improvements
    )
