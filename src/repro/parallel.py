"""repro.parallel — batched process-pool execution engine.

Batch workloads — pricing many co-run mixes, scoring every candidate
of an assignment search, running fleets of ground-truth simulations —
are embarrassingly parallel, but fanning them out naively breaks the
project's two core guarantees: deterministic results and coherent
telemetry.  This module keeps both:

- **Bit-equality.**  Serial and parallel execution return *exactly*
  the same floats.  Predictions are memoised in
  :class:`~repro.core.solver_cache.EquilibriumCache` instances built
  with ``warm_start=False``, so every cache miss is solved from the
  cold proportional-demand guess and the result depends only on the
  co-run itself, never on which solves happened before (a warm start
  changes Newton's initial guess and therefore the result bits).
  Candidate scoring shares
  :func:`~repro.core.assignment.enumerate_candidates` with the serial
  searcher and reduces by ``(score, candidate index)``, reproducing
  the serial first-strictly-better tie-break.

- **Deterministic seeds.**  Simulation tasks without an explicit seed
  draw per-task seeds from ``numpy.random.SeedSequence`` spawning
  (:func:`repro.seeding.task_seeds`), so streams are provably
  independent across tasks and stable across worker counts, chunk
  sizes and scheduling order.

- **Telemetry merge-back.**  Each worker runs chunks under its own
  private cache and (when the parent observer is live) its own
  :class:`~repro.obs.Observer`; chunk results ship the newly solved
  cache entries, the cache-counter deltas and the worker's exported
  trace/metrics documents back to the parent, which absorbs them into
  its cache and observer — spans nest under the parent's batch span.

Profiles are pickled once per worker (pool initializer), and tasks
travel in chunks to amortise the remaining IPC.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.config import BENCH_SCALE, SimulationScale
from repro.core.assignment import (
    AssignmentDecision,
    OBJECTIVES,
    check_enumeration_size,
    enumerate_candidates,
    score_assignment,
)
from repro.core.combined import CombinedModel
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.performance_model import CoRunPrediction, PerformanceModel
from repro.core.power_model import CorePowerModel
from repro.core.solver_cache import CacheStats, EquilibriumCache
from repro.errors import ConfigurationError
from repro.machine.simulator import (
    MachineSimulation,
    PowerEnvironment,
    SimulationResult,
)
from repro.machine.topology import STANDARD_MACHINES
from repro.obs import Observer, get_observer, use_observer
from repro.seeding import task_seeds
from repro.workloads.spec import BENCHMARKS

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ParallelPredictor",
    "SimulationTask",
    "predict_mixes",
    "simulate_assignments",
    "parallel_exhaustive_assignment",
]

#: Default number of tasks shipped to a worker per round trip.
DEFAULT_CHUNK_SIZE = 8

#: Process-wide predictor ids for idempotent cache-absorb documents.
_ENGINE_IDS = itertools.count(1)


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------
def _pool_context():
    """Prefer ``fork`` (cheap, shares the imported library) when available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count; ``None``/``0``/``1`` mean in-process serial."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ConfigurationError("workers must be non-negative")
    return max(1, workers)


def _chunked(items: Sequence, workers: int, chunk_size: Optional[int]) -> List[List]:
    """Contiguous chunks; sized so every worker gets work by default."""
    if chunk_size is None:
        chunk_size = max(1, min(DEFAULT_CHUNK_SIZE, math.ceil(len(items) / workers)))
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")
    return [list(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]


def _normalize_mix_ratios(
    mixes: Sequence[Tuple[str, ...]],
    frequency_ratios: Optional[Sequence[Optional[Sequence[float]]]],
) -> List[Optional[Tuple[float, ...]]]:
    """Validate and freeze per-mix frequency ratios.

    ``None`` (no ratios anywhere) and per-mix ``None`` entries both
    mean the homogeneous default; non-``None`` entries must match
    their mix's length.
    """
    if frequency_ratios is None:
        return [None] * len(mixes)
    if len(frequency_ratios) != len(mixes):
        raise ConfigurationError(
            f"frequency_ratios must have one entry per mix: got "
            f"{len(frequency_ratios)} for {len(mixes)} mixes"
        )
    normalized: List[Optional[Tuple[float, ...]]] = []
    for index, (mix, mix_ratios) in enumerate(zip(mixes, frequency_ratios)):
        if mix_ratios is None:
            normalized.append(None)
            continue
        ratios = tuple(float(r) for r in mix_ratios)
        if len(ratios) != len(mix):
            raise ConfigurationError(
                f"frequency_ratios[{index}] has {len(ratios)} entries for a "
                f"{len(mix)}-process mix"
            )
        normalized.append(ratios)
    return normalized


#: Per-worker-process state installed by the pool initializers.
_WORKER: Dict[str, Any] = {}


# ----------------------------------------------------------------------
# Batched co-run prediction
# ----------------------------------------------------------------------
def _init_predict_worker(
    features: Sequence[FeatureVector], ways: int, strategy: str
) -> None:
    """Build this worker's model once; chunks then ship only mix names."""
    model = PerformanceModel(
        ways=ways, strategy=strategy, cache=EquilibriumCache(warm_start=False)
    )
    model.register_all(list(features))
    _WORKER.clear()
    _WORKER["model"] = model
    _WORKER["shipped"] = set()


def _predict_chunk(
    chunk: Sequence[Tuple[int, Tuple[str, ...], Optional[Tuple[float, ...]]]],
    observe: bool,
) -> Tuple[
    List[Tuple[int, CoRunPrediction]],
    List[Tuple[Any, Any]],
    CacheStats,
    Optional[Dict],
    Optional[Dict],
]:
    """Predict one chunk of ``(index, names, ratios)`` tasks in a worker.

    ``ratios`` is the mix's per-process frequency-ratio tuple or
    ``None`` for the homogeneous default.  Returns the indexed
    predictions plus everything the parent merges back: cache entries
    this worker has not shipped before, the cache counter increments
    of this chunk, and (when observing) the worker-local trace/metrics
    documents.
    """
    model: PerformanceModel = _WORKER["model"]
    shipped: Set[Any] = _WORKER["shipped"]
    before = model.cache.stats
    observer = Observer() if observe else None
    results: List[Tuple[int, CoRunPrediction]] = []
    if observer is not None:
        with use_observer(observer):
            for index, names, ratios in chunk:
                results.append(
                    (
                        index,
                        model.predict(
                            list(names),
                            frequency_ratios=(
                                list(ratios) if ratios is not None else None
                            ),
                        ),
                    )
                )
    else:
        for index, names, ratios in chunk:
            results.append(
                (
                    index,
                    model.predict(
                        list(names),
                        frequency_ratios=(
                            list(ratios) if ratios is not None else None
                        ),
                    ),
                )
            )
    entries = [
        (key, value)
        for key, value in model.cache.export_entries()
        if key not in shipped
    ]
    shipped.update(key for key, _ in entries)
    delta = model.cache.stats.delta_since(before)
    trace_doc = observer.trace_dict() if observer is not None else None
    metrics_doc = observer.metrics_dict() if observer is not None else None
    return results, entries, delta, trace_doc, metrics_doc


class ParallelPredictor:
    """Reusable batched co-run predictor over a process pool.

    The pool persists across :meth:`predict_mixes` calls, so repeated
    batches pay worker start-up and profile pickling once.  Use as a
    context manager (or call :meth:`close`) to release the workers.

    Args:
        features: Feature vectors of every process mixes may name
            (a sequence, or a ``name -> FeatureVector`` mapping).
        ways: Associativity of the shared cache being modelled.
        strategy: Equilibrium solver strategy.
        workers: Process count; ``None``/``0``/``1`` run serially
            in-process (same results, by construction).
        chunk_size: Tasks per worker round trip (default: adaptive,
            at most :data:`DEFAULT_CHUNK_SIZE`).
        cache: Parent-side :class:`EquilibriumCache` that accumulates
            every worker's solutions and telemetry.  Must have
            ``warm_start=False`` — warm starts would make results
            depend on solve order and break serial/parallel
            bit-equality.
        engine: How batches execute — all four return bit-identical
            predictions, so this is purely a throughput knob:

            - ``"serial"``: one scalar solve per mix, in-process.
            - ``"vectorized"``: in-process stacked-numpy batch solve
              (:meth:`PerformanceModel.predict_batch`) — the fastest
              single-core engine, no pool to start.
            - ``"pool"``: the process-pool fan-out (needs
              ``workers > 1``).
            - ``"auto"`` (default): ``vectorized`` when the predictor
              is effectively single-core (``workers <= 1``, only one
              CPU visible, or a batch too small to amortise chunk
              IPC), otherwise ``pool``.
    """

    _ENGINES = ("auto", "serial", "vectorized", "pool")

    def __init__(
        self,
        features: Union[Sequence[FeatureVector], Mapping[str, FeatureVector]],
        *,
        ways: int,
        strategy: str = "auto",
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        cache: Optional[EquilibriumCache] = None,
        engine: str = "auto",
    ):
        if isinstance(features, Mapping):
            features = [features[name] for name in sorted(features)]
        if engine not in self._ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; choose from {self._ENGINES}"
            )
        self.features = list(features)
        self.ways = ways
        self.strategy = strategy
        self.workers = _resolve_workers(workers)
        if engine == "pool" and self.workers <= 1:
            raise ConfigurationError(
                "engine='pool' needs workers > 1; use 'vectorized' (or "
                "'auto') for single-worker batches"
            )
        self.engine = engine
        if chunk_size is not None and int(chunk_size) < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        if cache is None:
            cache = EquilibriumCache(warm_start=False)
        elif cache.warm_start:
            raise ConfigurationError(
                "the batch engine needs a warm_start=False cache: warm starts "
                "make solutions depend on solve order, breaking the "
                "serial/parallel bit-equality guarantee"
            )
        self.cache = cache
        self._executor: Optional[ProcessPoolExecutor] = None
        self._serial_model: Optional[PerformanceModel] = None
        self._closed = False
        self._batch_seq = 0
        # Distinguishes this predictor's absorb documents from those of
        # other predictors sharing the same parent cache.
        self._engine_id = next(_ENGINE_IDS)

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "ParallelPredictor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        A closed predictor stays closed: later :meth:`predict_mixes` /
        :meth:`warm_up` calls raise :class:`RuntimeError` instead of
        silently restarting the pool (long-lived holders like the
        serving layer rely on these strict reuse semantics).
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "ParallelPredictor is closed; its worker pool was shut "
                "down — create a new predictor instead of reusing this one"
            )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_pool_context(),
                initializer=_init_predict_worker,
                initargs=(self.features, self.ways, self.strategy),
            )
        return self._executor

    def warm_up(self) -> None:
        """Spin up (and initialise) the workers before timing anything.

        Benchmarks call this so pool start-up and profile pickling are
        excluded from the measured batch.
        """
        self._check_open()
        if self.workers <= 1 or self.engine in ("serial", "vectorized"):
            self._serial()
            return
        executor = self._ensure_executor()
        futures = [
            executor.submit(_predict_chunk, [], False) for _ in range(self.workers)
        ]
        for future in futures:
            future.result()

    # -- prediction -----------------------------------------------------
    def _serial(self) -> PerformanceModel:
        if self._serial_model is None:
            model = PerformanceModel(
                ways=self.ways, strategy=self.strategy, cache=self.cache
            )
            model.register_all(self.features)
            self._serial_model = model
        return self._serial_model

    @property
    def cache_stats(self) -> CacheStats:
        """Parent-side cache telemetry (includes absorbed worker work)."""
        return self.cache.stats

    def predict_mixes(
        self,
        mixes: Sequence[Sequence[str]],
        frequency_ratios: Optional[
            Sequence[Optional[Sequence[float]]]
        ] = None,
    ) -> Tuple[CoRunPrediction, ...]:
        """Predict every mix; order and bits match serial execution.

        Args:
            mixes: One name sequence per mix.
            frequency_ratios: Optional per-mix core-clock ratios: one
                entry per mix, each either ``None`` (homogeneous) or a
                per-process ratio sequence.  Every engine — serial,
                vectorized, pool — routes them to the same scalar
                model semantics, so results stay bit-identical across
                engines at any ratio.
        """
        self._check_open()
        normalized = [tuple(mix) for mix in mixes]
        ratios = _normalize_mix_ratios(normalized, frequency_ratios)
        observer = get_observer()
        if not observer.enabled:
            return self._predict_mixes_impl(normalized, ratios, observe=False)
        with observer.span(
            "parallel.predict_mixes", mixes=len(normalized), workers=self.workers
        ) as span:
            results = self._predict_mixes_impl(
                normalized,
                ratios,
                observe=True,
                observer=observer,
                parent_span_id=span.span_id,
            )
            observer.counter("parallel.mixes").inc(len(normalized))
            return results

    def _select_engine(self, n_mixes: int) -> str:
        """Resolve ``"auto"`` to a concrete engine for this batch.

        The pool only wins when there is real hardware parallelism
        *and* enough mixes that every worker gets more than chunk-IPC
        overhead; otherwise the in-process vectorized solver is faster
        (it beats the serial loop by an order of magnitude on one
        core, with nothing to fork).
        """
        if self.engine != "auto":
            return self.engine
        if self.workers <= 1:
            return "vectorized"
        if (os.cpu_count() or 1) < 2 or n_mixes < 2 * self.workers:
            return "vectorized"
        return "pool"

    def _predict_mixes_impl(
        self,
        mixes: List[Tuple[str, ...]],
        ratios: List[Optional[Tuple[float, ...]]],
        observe: bool,
        observer: Optional[Observer] = None,
        parent_span_id: Optional[int] = None,
    ) -> Tuple[CoRunPrediction, ...]:
        if not mixes:
            return ()
        engine = self._select_engine(len(mixes))
        if engine == "serial":
            model = self._serial()
            return tuple(
                model.predict(
                    list(names),
                    frequency_ratios=(
                        list(mix_ratios) if mix_ratios is not None else None
                    ),
                )
                for names, mix_ratios in zip(mixes, ratios)
            )
        if engine == "vectorized":
            return self._serial().predict_batch(
                [list(n) for n in mixes],
                frequency_ratios=[
                    list(r) if r is not None else None for r in ratios
                ],
            )
        self._batch_seq += 1
        batch_seq = self._batch_seq
        chunks = _chunked(
            [
                (index, names, mix_ratios)
                for index, (names, mix_ratios) in enumerate(zip(mixes, ratios))
            ],
            self.workers,
            self.chunk_size,
        )
        executor = self._ensure_executor()
        futures = [
            executor.submit(_predict_chunk, chunk, observe) for chunk in chunks
        ]
        out: List[Optional[CoRunPrediction]] = [None] * len(mixes)
        for chunk_index, future in enumerate(futures):
            results, entries, delta, trace_doc, metrics_doc = future.result()
            for index, prediction in results:
                out[index] = prediction
            self.cache.absorb(
                entries=entries,
                stats=delta,
                document_id=("predict_mixes", self._engine_id, batch_seq, chunk_index),
            )
            if observe and observer is not None:
                observer.absorb(trace_doc, metrics_doc, parent_span_id)
        return tuple(out)  # type: ignore[arg-type]


def predict_mixes(
    features: Union[Sequence[FeatureVector], Mapping[str, FeatureVector]],
    mixes: Sequence[Sequence[str]],
    *,
    ways: int,
    strategy: str = "auto",
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    cache: Optional[EquilibriumCache] = None,
    engine: str = "auto",
    frequency_ratios: Optional[Sequence[Optional[Sequence[float]]]] = None,
) -> Tuple[CoRunPrediction, ...]:
    """One-shot batched prediction (see :class:`ParallelPredictor`)."""
    with ParallelPredictor(
        features,
        ways=ways,
        strategy=strategy,
        workers=workers,
        chunk_size=chunk_size,
        cache=cache,
        engine=engine,
    ) as predictor:
        return predictor.predict_mixes(mixes, frequency_ratios=frequency_ratios)


# ----------------------------------------------------------------------
# Batched ground-truth simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulationTask:
    """One ground-truth machine run, fully described by plain data.

    Workers rebuild the topology from the machine name so the task
    pickles small and never drags simulator state across processes.

    Args:
        machine: Name in :data:`STANDARD_MACHINES`.
        assignment: ``core id -> benchmark names`` time-sharing it.
        sets: Cache set scaling of the machine.
        seed: Explicit master seed; ``None`` derives one from the
            batch seed via :func:`repro.seeding.task_seeds` (provably
            independent per task index).
        scale: Simulation budgets (default :data:`BENCH_SCALE`).
        collect_power: Run in duration mode with a per-task power
            plant and collect a power trace; otherwise run to the
            access budget (performance-only, bit-stable across
            batching).
        policy: Shared-cache replacement policy name.
        prefetch: Optional prefetcher name (ablation experiments).
    """

    machine: str
    assignment: Mapping[int, Tuple[str, ...]]
    sets: int = 128
    seed: Optional[int] = None
    scale: Optional[SimulationScale] = None
    collect_power: bool = False
    policy: str = "lru"
    prefetch: Optional[str] = None


def _run_task(task: SimulationTask, seed: int) -> SimulationResult:
    topology = STANDARD_MACHINES[task.machine](sets=task.sets)
    workloads = {
        core: [BENCHMARKS[name] for name in names]
        for core, names in task.assignment.items()
        if names
    }
    power_env = (
        PowerEnvironment.for_topology(topology, seed=seed)
        if task.collect_power
        else None
    )
    sim = MachineSimulation(
        topology,
        workloads,
        scale=task.scale if task.scale is not None else BENCH_SCALE,
        seed=seed,
        power_env=power_env,
        policy=task.policy,
        prefetch=task.prefetch,
    )
    return sim.run_duration() if task.collect_power else sim.run_accesses()


def _simulate_chunk(
    chunk: Sequence[Tuple[int, SimulationTask, int]], observe: bool
) -> Tuple[List[Tuple[int, SimulationResult]], Optional[Dict], Optional[Dict]]:
    observer = Observer() if observe else None
    results: List[Tuple[int, SimulationResult]] = []
    if observer is not None:
        with use_observer(observer):
            for index, task, seed in chunk:
                results.append((index, _run_task(task, seed)))
    else:
        for index, task, seed in chunk:
            results.append((index, _run_task(task, seed)))
    trace_doc = observer.trace_dict() if observer is not None else None
    metrics_doc = observer.metrics_dict() if observer is not None else None
    return results, trace_doc, metrics_doc


def _validate_task(index: int, task: SimulationTask) -> None:
    if task.machine not in STANDARD_MACHINES:
        raise ConfigurationError(
            f"task {index}: unknown machine {task.machine!r}; "
            f"choose from {sorted(STANDARD_MACHINES)}"
        )
    for names in task.assignment.values():
        for name in names:
            if name not in BENCHMARKS:
                raise ConfigurationError(
                    f"task {index}: unknown benchmark {name!r}"
                )


def simulate_assignments(
    tasks: Sequence[SimulationTask],
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    seed: int = 0,
) -> Tuple[SimulationResult, ...]:
    """Run many ground-truth simulations, optionally across a pool.

    Results come back in task order regardless of worker scheduling.
    Tasks without an explicit seed get independent per-index seeds
    spawned from ``seed``, so the fleet's outputs are identical for
    any worker count or chunking.
    """
    tasks = list(tasks)
    for index, task in enumerate(tasks):
        _validate_task(index, task)
    spawned = task_seeds(seed, len(tasks))
    indexed = [
        (i, task, task.seed if task.seed is not None else spawned[i])
        for i, task in enumerate(tasks)
    ]
    workers = _resolve_workers(workers)
    observer = get_observer()
    if not observer.enabled:
        return _simulate_impl(indexed, workers, chunk_size, observe=False)
    with observer.span(
        "parallel.simulate", tasks=len(tasks), workers=workers
    ) as span:
        results = _simulate_impl(
            indexed,
            workers,
            chunk_size,
            observe=True,
            observer=observer,
            parent_span_id=span.span_id,
        )
        observer.counter("parallel.simulations").inc(len(tasks))
        return results


def _simulate_impl(
    indexed: List[Tuple[int, SimulationTask, int]],
    workers: int,
    chunk_size: Optional[int],
    observe: bool,
    observer: Optional[Observer] = None,
    parent_span_id: Optional[int] = None,
) -> Tuple[SimulationResult, ...]:
    if not indexed:
        return ()
    if workers <= 1:
        # Serial path runs under the parent observer directly.
        return tuple(_run_task(task, seed) for _, task, seed in indexed)
    chunks = _chunked(indexed, workers, chunk_size)
    out: List[Optional[SimulationResult]] = [None] * len(indexed)
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as executor:
        futures = [
            executor.submit(_simulate_chunk, chunk, observe) for chunk in chunks
        ]
        for future in futures:
            results, trace_doc, metrics_doc = future.result()
            for index, result in results:
                out[index] = result
            if observe and observer is not None:
                observer.absorb(trace_doc, metrics_doc, parent_span_id)
    return tuple(out)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Parallel exhaustive assignment search
# ----------------------------------------------------------------------
def _init_assign_worker(
    features: Sequence[FeatureVector],
    profiles: Mapping[str, ProfileVector],
    power_model: CorePowerModel,
    machine: str,
    sets: int,
) -> None:
    topology = STANDARD_MACHINES[machine](sets=sets)
    ways = topology.domains[0].geometry.ways
    perf = PerformanceModel(ways=ways, cache=EquilibriumCache(warm_start=False))
    perf.register_all(list(features))
    combined = CombinedModel(
        topology=topology,
        performance_models=[perf],
        power_model=power_model,
        profiles=profiles,
        corun_cache=EquilibriumCache(warm_start=False),
    )
    _WORKER.clear()
    _WORKER["combined"] = combined


def _score_chunk(
    chunk: Sequence[Tuple[int, Tuple[Tuple[int, Tuple[str, ...]], ...]]],
    objective: str,
    observe: bool,
) -> Tuple[List[Tuple[int, float, float, float]], Optional[Dict], Optional[Dict]]:
    combined: CombinedModel = _WORKER["combined"]
    observer = Observer() if observe else None
    scored: List[Tuple[int, float, float, float]] = []

    def _run() -> None:
        for index, items in chunk:
            assignment = {core: tuple(names) for core, names in items}
            score, watts, ips = score_assignment(combined, assignment, objective)
            scored.append((index, score, watts, ips))

    if observer is not None:
        with use_observer(observer):
            _run()
    else:
        _run()
    trace_doc = observer.trace_dict() if observer is not None else None
    metrics_doc = observer.metrics_dict() if observer is not None else None
    return scored, trace_doc, metrics_doc


def parallel_exhaustive_assignment(
    features: Union[Sequence[FeatureVector], Mapping[str, FeatureVector]],
    profiles: Mapping[str, ProfileVector],
    power_model: CorePowerModel,
    *,
    machine: str,
    sets: int,
    process_names: Sequence[str],
    objective: str = "power",
    max_per_core: Optional[int] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    max_candidates: Optional[int] = None,
) -> AssignmentDecision:
    """Exhaustive search with candidates scored across a worker pool.

    The parent enumerates the canonical candidate stream (shared with
    the serial searcher), workers price chunks of it against their own
    cold-start :class:`CombinedModel`, and the parent reduces by
    ``(score, candidate index)`` — the same decision, score and
    tie-break the serial searcher produces over cold-start caches.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
        )
    if not process_names:
        raise ConfigurationError("need at least one process to assign")
    if machine not in STANDARD_MACHINES:
        raise ConfigurationError(
            f"unknown machine {machine!r}; choose from {sorted(STANDARD_MACHINES)}"
        )
    if isinstance(features, Mapping):
        features = [features[name] for name in sorted(features)]
    features = list(features)
    topology = STANDARD_MACHINES[machine](sets=sets)
    check_enumeration_size(topology.num_cores, len(process_names), max_candidates)
    candidates = list(
        enumerate_candidates(topology.num_cores, process_names, max_per_core)
    )
    if not candidates:
        raise ConfigurationError("no feasible assignment under the given constraints")
    workers = _resolve_workers(workers)
    observer = get_observer()
    if not observer.enabled:
        return _assign_impl(
            features, profiles, power_model, machine, sets, candidates,
            objective, workers, chunk_size, observe=False,
        )
    with observer.span(
        "parallel.assign",
        candidates=len(candidates),
        workers=workers,
        objective=objective,
    ) as span:
        decision = _assign_impl(
            features, profiles, power_model, machine, sets, candidates,
            objective, workers, chunk_size,
            observe=True, observer=observer, parent_span_id=span.span_id,
        )
        span.annotate(score=decision.score)
        observer.counter("assign.searches").inc()
        observer.counter("assign.candidates").inc(decision.candidates_evaluated)
        return decision


def _assign_impl(
    features: List[FeatureVector],
    profiles: Mapping[str, ProfileVector],
    power_model: CorePowerModel,
    machine: str,
    sets: int,
    candidates: List[Dict[int, Tuple[str, ...]]],
    objective: str,
    workers: int,
    chunk_size: Optional[int],
    observe: bool,
    observer: Optional[Observer] = None,
    parent_span_id: Optional[int] = None,
) -> AssignmentDecision:
    scored: List[Tuple[int, float, float, float]] = []
    if workers <= 1:
        _init_assign_worker(features, profiles, power_model, machine, sets)
        combined: CombinedModel = _WORKER.pop("combined")
        for index, candidate in enumerate(candidates):
            score, watts, ips = score_assignment(combined, candidate, objective)
            scored.append((index, score, watts, ips))
    else:
        indexed = [
            (index, tuple(sorted(candidate.items())))
            for index, candidate in enumerate(candidates)
        ]
        chunks = _chunked(indexed, workers, chunk_size)
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_init_assign_worker,
            initargs=(features, profiles, power_model, machine, sets),
        ) as executor:
            futures = [
                executor.submit(_score_chunk, chunk, objective, observe)
                for chunk in chunks
            ]
            for future in futures:
                chunk_scores, trace_doc, metrics_doc = future.result()
                scored.extend(chunk_scores)
                if observe and observer is not None:
                    observer.absorb(trace_doc, metrics_doc, parent_span_id)
    # Serial tie-break: the first strictly better candidate wins, i.e.
    # the minimum by (score, enumeration index).
    best_index, best_score, best_watts, best_ips = min(
        scored, key=lambda item: (item[1], item[0])
    )
    return AssignmentDecision(
        assignment=candidates[best_index],
        predicted_watts=best_watts,
        predicted_ips=best_ips,
        objective=objective,
        score=best_score,
        candidates_evaluated=len(scored),
    )
