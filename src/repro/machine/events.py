"""Re-export of :mod:`repro.events` under its historical location.

The event definitions live at the package top level so that leaf
modules (e.g. :mod:`repro.power.reference`) can import them without
triggering the :mod:`repro.machine` package initialiser, which imports
the simulator and would create an import cycle.
"""

from repro.events import Event, PAPER_NAMES, RATE_EVENTS

__all__ = ["Event", "RATE_EVENTS", "PAPER_NAMES"]
