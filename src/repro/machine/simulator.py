"""Closed-loop trace-driven multicore machine simulation.

This is the "real machine" of the reproduction.  Processes generate L2
access streams from their intrinsic reuse-distance profiles; the
streams interleave in the shared per-domain caches; each process's
pace depends on its *emergent* miss rate (a miss stalls it for the
miss penalty), which in turn shifts the interleaving ratio — exactly
the feedback loop whose fixed point the paper's equilibrium model
(Section 3.3) predicts analytically.

The simulator also emulates the measurement infrastructure: per-core
HPC counters sampled on a fixed period and, optionally, the power
chain (hidden reference model + noisy meter).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cache.prefetch import NextLinePrefetcher, Prefetcher, StridePrefetcher
from repro.cache.replacement import make_policy
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.shared import ContentionMonitor
from repro.config import SimulationScale, BENCH_SCALE
from repro.errors import ConfigurationError, SimulationError
from repro.machine.hpc import (
    CounterBank,
    HpcSample,
    HpcSampler,
    IDX_BRANCHES,
    IDX_CYCLES,
    IDX_FP_OPS,
    IDX_INSTRUCTIONS,
    IDX_L1_REFS,
    IDX_L2_MISSES,
    IDX_L2_REFS,
)
from repro.machine.process import Process
from repro.machine.scheduler import CoreSchedule
from repro.machine.topology import MachineTopology
from repro.obs import get_observer
from repro.power.meter import PowerMeter
from repro.power.reference import ReferencePowerModel, reference_for
from repro.power.sampling import PowerTrace
from repro.seeding import (
    STREAM_METER,
    STREAM_POLICY,
    STREAM_PROCESS,
    STREAM_SCHEDULER,
    stream_seed,
)
from repro.workloads.spec import SyntheticBenchmark

#: Per-access observer signature: ``hook(time_s, pid, hit)``.
AccessHook = Callable[[float, int, bool], None]


@dataclass(frozen=True)
class PowerEnvironment:
    """The physical power plant of one machine: truth + instrument."""

    reference: ReferencePowerModel
    meter: PowerMeter

    @classmethod
    def for_topology(cls, topology: MachineTopology, seed: int = 0) -> "PowerEnvironment":
        """Standard environment for a machine (deterministic in seed)."""
        reference = reference_for(
            topology.nominal_power_watts, topology.num_cores, topology.frequency_hz
        )
        # The meter draws from its own SeedSequence stream so its noise
        # is independent of the simulator streams sharing the master
        # seed (see repro.seeding).
        return cls(
            reference=reference,
            meter=PowerMeter(seed=stream_seed(seed, STREAM_METER)),
        )


@dataclass(frozen=True)
class ProcessResult:
    """Steady-state measurements of one process over the window."""

    pid: int
    name: str
    core: int
    instructions: float
    l2_refs: int
    l2_misses: int
    time_running: float
    mpa: float
    spi: float
    occupancy_ways: float

    @property
    def aps(self) -> float:
        """L2 accesses per second while scheduled."""
        if self.time_running <= 0:
            return 0.0
        return self.l2_refs / self.time_running


@dataclass
class SimulationResult:
    """Everything one simulated run produced."""

    topology_name: str
    measure_start_s: float
    measure_end_s: float
    processes: List[ProcessResult]
    hpc_by_core: Dict[int, List[HpcSample]] = field(default_factory=dict)
    power: Optional[PowerTrace] = None
    context_switches: int = 0

    @property
    def duration_s(self) -> float:
        return self.measure_end_s - self.measure_start_s

    def process_by_pid(self, pid: int) -> ProcessResult:
        for result in self.processes:
            if result.pid == pid:
                return result
        raise KeyError(f"no process with pid {pid}")


_PREFETCHERS = {
    "nextline": NextLinePrefetcher,
    "stride": StridePrefetcher,
}


class MachineSimulation:
    """One assignment of workloads to cores, ready to run.

    Args:
        topology: The machine.
        assignment: ``core id -> workloads on that core`` (several
            workloads on one core time-share it round-robin).  Cores
            absent from the mapping stay idle.
        scale: Fidelity/runtime knobs.
        seed: Master seed (traces, scheduler jitter).
        power_env: Attach the power plant to collect power traces in
            duration mode.
        policy: Replacement-policy name for the shared caches
            (default LRU, the paper's assumption).
        prefetch: Optional prefetcher name (``nextline``/``stride``)
            for the prefetching ablation.
        prefetch_cost_fraction: Extra stall, as a fraction of the miss
            penalty, charged per issued prefetch — the constrained
            memory bandwidth the paper argues limits prefetching.
    """

    def __init__(
        self,
        topology: MachineTopology,
        assignment: Mapping[int, Sequence[SyntheticBenchmark]],
        scale: SimulationScale = BENCH_SCALE,
        seed: int = 0,
        power_env: Optional[PowerEnvironment] = None,
        policy: str = "lru",
        prefetch: Optional[str] = None,
        prefetch_cost_fraction: float = 0.35,
        access_hook: Optional["AccessHook"] = None,
    ):
        self.topology = topology
        self.scale = scale
        self.power_env = power_env
        for core in assignment:
            if not 0 <= core < topology.num_cores:
                raise ConfigurationError(
                    f"core {core} out of range for {topology.name}"
                )
        if prefetch_cost_fraction < 0:
            raise ConfigurationError("prefetch_cost_fraction must be non-negative")
        self._prefetch_cost_fraction = prefetch_cost_fraction
        #: Optional per-access observer ``hook(time_s, pid, hit)`` for
        #: instrumentation experiments (e.g. context-switch refill).
        self.access_hook = access_hook

        self.caches: List[SetAssociativeCache] = []
        self.monitors: List[ContentionMonitor] = []
        self.prefetchers: Optional[List[Prefetcher]] = None
        if prefetch is not None:
            if prefetch not in _PREFETCHERS:
                raise ConfigurationError(
                    f"unknown prefetcher {prefetch!r}; choose from {sorted(_PREFETCHERS)}"
                )
            self.prefetchers = []
        for idx, domain in enumerate(topology.domains):
            cache = SetAssociativeCache(
                domain.geometry,
                make_policy(policy, stream_seed(seed, STREAM_POLICY, idx)),
            )
            self.caches.append(cache)
            self.monitors.append(ContentionMonitor(cache))
            if self.prefetchers is not None:
                self.prefetchers.append(_PREFETCHERS[prefetch]())

        self._domain_of_core: Dict[int, int] = {}
        for idx, domain in enumerate(topology.domains):
            for core in domain.core_ids:
                self._domain_of_core[core] = idx

        self.processes: List[Process] = []
        per_core: Dict[int, List[Process]] = {c: [] for c in range(topology.num_cores)}
        pid = 0
        for core in sorted(assignment):
            for workload in assignment[core]:
                sets = topology.domain_of(core).geometry.sets
                process = Process(
                    pid=pid,
                    workload=workload,
                    core=core,
                    frequency_hz=topology.core_frequency(core),
                    seed=stream_seed(seed, STREAM_PROCESS, pid),
                    sets=sets,
                )
                self.processes.append(process)
                per_core[core].append(process)
                pid += 1

        self.schedules: Dict[int, CoreSchedule] = {
            core: CoreSchedule(
                core,
                per_core[core],
                timeslice_s=scale.timeslice_s,
                seed=stream_seed(seed, STREAM_SCHEDULER, core),
            )
            for core in range(topology.num_cores)
        }
        self.banks: List[CounterBank] = [CounterBank() for _ in range(topology.num_cores)]

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run_accesses(
        self,
        warmup_accesses: Optional[int] = None,
        measure_accesses: Optional[int] = None,
    ) -> SimulationResult:
        """Run until every process retires a per-process access budget.

        Used by the performance experiments, which care about converged
        per-process statistics rather than wall-clock alignment.
        """
        warmup = warmup_accesses if warmup_accesses is not None else self.scale.warmup_accesses
        measure = (
            measure_accesses if measure_accesses is not None else self.scale.measure_accesses
        )
        if not self.processes:
            raise SimulationError("access-budget mode needs at least one process")
        observer = get_observer()
        if not observer.enabled:
            return self._run(
                duration_mode=False, warmup_budget=warmup, measure_budget=measure
            )
        with observer.span(
            "simulate",
            mode="accesses",
            topology=self.topology.name,
            processes=len(self.processes),
        ) as span:
            result = self._run(
                duration_mode=False, warmup_budget=warmup, measure_budget=measure
            )
            self._record_run_obs(observer, span, result)
            return result

    def run_duration(
        self,
        warmup_s: Optional[float] = None,
        measure_s: Optional[float] = None,
        collect_power: bool = True,
    ) -> SimulationResult:
        """Run for fixed simulated time with HPC (and power) sampling.

        Used by the power experiments; also works with an empty
        assignment to measure idle power.
        """
        warmup = warmup_s if warmup_s is not None else self.scale.warmup_s
        measure = measure_s if measure_s is not None else self.scale.measure_s
        if collect_power and self.power_env is None:
            raise ConfigurationError("collect_power requires a power_env")
        observer = get_observer()
        if not observer.enabled:
            return self._run(
                duration_mode=True,
                warmup_s=warmup,
                measure_s=measure,
                collect_power=collect_power,
            )
        with observer.span(
            "simulate",
            mode="duration",
            topology=self.topology.name,
            processes=len(self.processes),
        ) as span:
            result = self._run(
                duration_mode=True,
                warmup_s=warmup,
                measure_s=measure,
                collect_power=collect_power,
            )
            self._record_run_obs(observer, span, result)
            return result

    def _record_run_obs(self, observer, span, result: SimulationResult) -> None:
        """Roll end-of-run totals into the active observer (enabled only)."""
        accesses = sum(bank.values[IDX_L2_REFS] for bank in self.banks)
        instructions = sum(bank.values[IDX_INSTRUCTIONS] for bank in self.banks)
        span.annotate(
            duration_s=result.duration_s,
            context_switches=result.context_switches,
        )
        observer.counter("sim.accesses").inc(accesses)
        observer.counter("sim.instructions").inc(instructions)
        observer.counter("sim.context_switches").inc(result.context_switches)
        if result.power is not None:
            observer.counter("sim.power_windows").inc(len(result.power.true_watts))

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _begin_measurement(self) -> None:
        for process in self.processes:
            process.mark_measurement_start()
        for monitor in self.monitors:
            monitor.start_measurement()

    def _drain_power(
        self,
        sampler: HpcSampler,
        trace: PowerTrace,
        now: float,
    ) -> None:
        assert self.power_env is not None
        for window in sampler.advance(now):
            per_core_rates = [sample.rates for sample in window]
            true_w = self.power_env.reference.processor_power(per_core_rates)
            measured_w = self.power_env.meter.measure_window(true_w, sampler.period_s)
            trace.append(true_w, measured_w)
            # Only consulted when a window actually closes, so the
            # per-access loop pays nothing extra here.
            observer = get_observer()
            if observer.enabled:
                observer.counter("sim.hpc.windows").inc()
                observer.histogram("sim.hpc.window_true_watts").observe(true_w)

    def _run(
        self,
        duration_mode: bool,
        warmup_budget: int = 0,
        measure_budget: int = 0,
        warmup_s: float = 0.0,
        measure_s: float = 0.0,
        collect_power: bool = False,
    ) -> SimulationResult:
        heap: List[Tuple[float, int, int]] = []
        seq = 0
        for core, sched in self.schedules.items():
            if not sched.idle:
                heapq.heappush(heap, (seq * 1e-9, seq, core))
                seq += 1

        measuring = False
        t_measure_start = 0.0
        t_end = warmup_s + measure_s if duration_mode else float("inf")
        sampler: Optional[HpcSampler] = None
        trace: Optional[PowerTrace] = None
        check_countdown = 128
        t_now = 0.0
        core_frequencies = [
            self.topology.core_frequency(core)
            for core in range(self.topology.num_cores)
        ]
        hook = self.access_hook

        while heap:
            t, s, core = heapq.heappop(heap)
            if duration_mode and t >= t_end:
                break
            t_now = t
            sched = self.schedules[core]
            sched.maybe_switch(t)
            process = sched.current()
            if process is None:  # pragma: no cover - idle cores never enqueue
                continue
            domain_idx = self._domain_of_core[core]
            line = process.generator.next_line()
            hit = self.monitors[domain_idx].access(line, process.pid)
            dt = process.execute_access(hit)
            if self.prefetchers is not None:
                issued = self.prefetchers[domain_idx].on_access(
                    self.caches[domain_idx], process.pid, line, hit
                )
                if issued:
                    extra = issued * self._prefetch_cost_fraction * process.miss_stall_seconds
                    process.charge_stall(extra)
                    dt += extra
            values = self.banks[core].values
            values[IDX_INSTRUCTIONS] += process.inv_api
            values[IDX_L1_REFS] += process.l1_incr
            values[IDX_BRANCHES] += process.br_incr
            values[IDX_FP_OPS] += process.fp_incr
            values[IDX_L2_REFS] += 1.0
            if not hit:
                values[IDX_L2_MISSES] += 1.0
            values[IDX_CYCLES] += dt * core_frequencies[core]
            if hook is not None:
                hook(t, process.pid, hit)
            t_next = t + dt

            if not measuring:
                if duration_mode:
                    if t_next >= warmup_s:
                        measuring = True
                        t_measure_start = warmup_s
                        self._begin_measurement()
                        if collect_power:
                            sampler = HpcSampler(
                                self.banks, self.scale.hpc_period_s, start_s=warmup_s
                            )
                            trace = PowerTrace(
                                window_s=self.scale.hpc_period_s, start_s=warmup_s
                            )
                else:
                    check_countdown -= 1
                    if check_countdown <= 0:
                        check_countdown = 128
                        if all(
                            p.counters.l2_refs >= warmup_budget for p in self.processes
                        ):
                            measuring = True
                            t_measure_start = t_next
                            self._begin_measurement()
            else:
                if duration_mode:
                    if sampler is not None and trace is not None:
                        self._drain_power(sampler, trace, min(t_next, t_end))
                else:
                    check_countdown -= 1
                    if check_countdown <= 0:
                        check_countdown = 128
                        if all(
                            p.measured().l2_refs >= measure_budget for p in self.processes
                        ):
                            t_now = t_next
                            break

            heapq.heappush(heap, (t_next, seq, core))
            seq += 1

        if duration_mode:
            if not measuring:
                # No process ever ran (idle machine): open the window now.
                measuring = True
                t_measure_start = warmup_s
                self._begin_measurement()
                if collect_power:
                    sampler = HpcSampler(
                        self.banks, self.scale.hpc_period_s, start_s=warmup_s
                    )
                    trace = PowerTrace(window_s=self.scale.hpc_period_s, start_s=warmup_s)
            if sampler is not None and trace is not None:
                self._drain_power(sampler, trace, t_end)
            t_measure_end = t_end
        else:
            if not measuring:
                raise SimulationError(
                    "run ended before the warm-up budget was met; "
                    "increase the access budget"
                )
            t_measure_end = t_now

        return self._assemble(t_measure_start, t_measure_end, sampler, trace)

    def _assemble(
        self,
        t_start: float,
        t_end: float,
        sampler: Optional[HpcSampler],
        trace: Optional[PowerTrace],
    ) -> SimulationResult:
        process_results = []
        for process in self.processes:
            measured = process.measured()
            domain_idx = self._domain_of_core[process.core]
            process_results.append(
                ProcessResult(
                    pid=process.pid,
                    name=process.name,
                    core=process.core,
                    instructions=measured.instructions,
                    l2_refs=measured.l2_refs,
                    l2_misses=measured.l2_misses,
                    time_running=measured.time_running,
                    mpa=measured.mpa,
                    spi=measured.spi,
                    occupancy_ways=self.monitors[domain_idx].mean_occupancy_ways(
                        process.pid
                    ),
                )
            )
        hpc_by_core: Dict[int, List[HpcSample]] = {}
        if sampler is not None:
            for core in range(self.topology.num_cores):
                hpc_by_core[core] = sampler.samples_for_core(core)
        return SimulationResult(
            topology_name=self.topology.name,
            measure_start_s=t_start,
            measure_end_s=t_end,
            processes=process_results,
            hpc_by_core=hpc_by_core,
            power=trace,
            context_switches=sum(s.context_switches for s in self.schedules.values()),
        )
