"""Multicore machine simulator substrate.

:class:`~repro.machine.simulator.MachineSimulation` is the "real
machine" of the reproduction: given a process-to-core assignment it
produces the measured ground truth (per-process MPA/SPI/occupancy, HPC
samples, power traces) that the paper's models are validated against.
"""

from repro.machine.events import Event, PAPER_NAMES, RATE_EVENTS
from repro.machine.hpc import CounterBank, HpcSample, HpcSampler
from repro.machine.process import Process, ProcessCounters
from repro.machine.scheduler import CoreSchedule
from repro.machine.simulator import (
    MachineSimulation,
    PowerEnvironment,
    ProcessResult,
    SimulationResult,
)
from repro.machine.topology import (
    CacheDomain,
    MachineTopology,
    STANDARD_MACHINES,
    four_core_server,
    two_core_laptop,
    two_core_workstation,
)

__all__ = [
    "Event",
    "RATE_EVENTS",
    "PAPER_NAMES",
    "CounterBank",
    "HpcSample",
    "HpcSampler",
    "Process",
    "ProcessCounters",
    "CoreSchedule",
    "MachineSimulation",
    "PowerEnvironment",
    "ProcessResult",
    "SimulationResult",
    "MachineTopology",
    "CacheDomain",
    "four_core_server",
    "two_core_workstation",
    "two_core_laptop",
    "STANDARD_MACHINES",
]
