"""Hardware-performance-counter emulation (the PAPI substitute).

Each core owns a :class:`CounterBank`; the simulator increments it as
instructions retire.  An :class:`HpcSampler` closes fixed-period
windows over simulated time and converts counter deltas into the
per-second event rates the paper's power model consumes.

Counters are stored in a plain list indexed by :data:`EVENT_INDEX`
rather than an ``Event``-keyed dict: the simulator updates them on
every simulated L2 access, and enum hashing would dominate the inner
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.machine.events import RATE_EVENTS, Event

#: Fixed storage index of each event inside a CounterBank.
EVENT_INDEX: Dict[Event, int] = {event: i for i, event in enumerate(Event)}

IDX_INSTRUCTIONS = EVENT_INDEX[Event.INSTRUCTIONS]
IDX_CYCLES = EVENT_INDEX[Event.CYCLES]
IDX_L1_REFS = EVENT_INDEX[Event.L1_REFS]
IDX_L2_REFS = EVENT_INDEX[Event.L2_REFS]
IDX_L2_MISSES = EVENT_INDEX[Event.L2_MISSES]
IDX_BRANCHES = EVENT_INDEX[Event.BRANCHES]
IDX_FP_OPS = EVENT_INDEX[Event.FP_OPS]


class CounterBank:
    """Free-running event counters for one core.

    Counts are floats: the simulator retires ``1/API`` instructions
    per L2 access, so non-L2 event increments are fractional.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        #: Raw storage, indexed by :data:`EVENT_INDEX`.  The simulator
        #: inner loop writes this directly.
        self.values: List[float] = [0.0] * len(EVENT_INDEX)

    def add(self, event: Event, amount: float) -> None:
        self.values[EVENT_INDEX[event]] += amount

    def read(self, event: Event) -> float:
        return self.values[EVENT_INDEX[event]]

    @property
    def counts(self) -> Dict[Event, float]:
        """Counter values keyed by event (a copy)."""
        return {event: self.values[i] for event, i in EVENT_INDEX.items()}

    def snapshot(self) -> List[float]:
        """Copy of the raw counter values."""
        return list(self.values)

    def delta_since(self, earlier: List[float]) -> Dict[Event, float]:
        """Counter increments since an earlier :meth:`snapshot`."""
        return {
            event: self.values[i] - earlier[i] for event, i in EVENT_INDEX.items()
        }


@dataclass(frozen=True)
class HpcSample:
    """Event rates of one core over one sampling window."""

    core: int
    t_start: float
    t_end: float
    rates: Dict[Event, float]

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def rate_vector(self) -> Tuple[float, ...]:
        """The five Eq. 9 regressors (L1RPS, L2RPS, L2MPS, BRPS, FPPS)."""
        return tuple(self.rates[event] for event in RATE_EVENTS)


class HpcSampler:
    """Fixed-period sampler over a set of per-core counter banks.

    Args:
        banks: One bank per core, indexed by core id.
        period_s: Sampling period in simulated seconds.
        start_s: Time of the first window's start.
    """

    def __init__(self, banks: List[CounterBank], period_s: float, start_s: float = 0.0):
        if period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        if not banks:
            raise ConfigurationError("need at least one counter bank")
        self._banks = banks
        self.period_s = period_s
        self._window_start = start_s
        self._last = [bank.snapshot() for bank in banks]
        self.samples: List[HpcSample] = []

    @property
    def next_boundary(self) -> float:
        return self._window_start + self.period_s

    def advance(self, now: float) -> List[List[HpcSample]]:
        """Close every window whose end is <= ``now``.

        Returns the newly closed windows, one list of per-core samples
        per window, so the caller can attach power measurements.
        """
        closed: List[List[HpcSample]] = []
        # The boundary accumulates additively; tolerate float error so a
        # window ending exactly at `now` is not lost to epsilon drift.
        while self.next_boundary <= now + self.period_s * 1e-9:
            t_start = self._window_start
            t_end = self.next_boundary
            window: List[HpcSample] = []
            for core, bank in enumerate(self._banks):
                delta = bank.delta_since(self._last[core])
                rates = {event: delta[event] / self.period_s for event in Event}
                window.append(
                    HpcSample(core=core, t_start=t_start, t_end=t_end, rates=rates)
                )
                self._last[core] = bank.snapshot()
            self.samples.extend(window)
            closed.append(window)
            self._window_start = t_end
        return closed

    def samples_for_core(self, core: int) -> List[HpcSample]:
        """All closed samples belonging to one core, in time order."""
        return [s for s in self.samples if s.core == core]
