"""Machine topologies: which cores share which last-level cache.

The paper validates on three Intel machines.  We model each as a
frequency- and capacity-scaled configuration (see DESIGN.md §2): the
associativity and cache-sharing topology — the quantities the model
actually reasons about — match the real parts, while set counts and
the clock are scaled so pure-Python simulation is tractable.  All
time constants used elsewhere (timeslice, HPC period) are scaled by
the same frequency ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.config import CacheGeometry
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheDomain:
    """A group of cores sharing one last-level cache."""

    core_ids: Tuple[int, ...]
    geometry: CacheGeometry

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ConfigurationError("a cache domain needs at least one core")
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ConfigurationError("duplicate core ids in a cache domain")


@dataclass(frozen=True)
class MachineTopology:
    """A multi-core machine description.

    Attributes:
        name: Human-readable machine name.
        frequency_hz: Nominal core clock (scaled; see module docstring).
        domains: Cache-sharing domains partitioning the cores.
        nominal_power_watts: Rough full-load processor power, used to
            parameterise the hidden reference power model.
        core_frequency_scales: Optional per-core clock multipliers for
            heterogeneous (big.LITTLE-style) machines; empty means all
            cores run at ``frequency_hz``.  The paper claims its models
            "accommodate heterogeneous tasks and processors" — this is
            the knob that exercises that claim.
    """

    name: str
    frequency_hz: float
    domains: Tuple[CacheDomain, ...]
    nominal_power_watts: float
    core_frequency_scales: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        if self.nominal_power_watts <= 0:
            raise ConfigurationError("nominal_power_watts must be positive")
        if not self.domains:
            raise ConfigurationError("a machine needs at least one cache domain")
        seen = set()
        for domain in self.domains:
            overlap = seen.intersection(domain.core_ids)
            if overlap:
                raise ConfigurationError(f"cores {sorted(overlap)} appear in two domains")
            seen.update(domain.core_ids)
        expected = set(range(len(seen)))
        if seen != expected:
            raise ConfigurationError("core ids must be exactly 0..N-1")
        if self.core_frequency_scales:
            if len(self.core_frequency_scales) != len(seen):
                raise ConfigurationError(
                    "core_frequency_scales must have one entry per core"
                )
            if any(scale <= 0 for scale in self.core_frequency_scales):
                raise ConfigurationError("core frequency scales must be positive")

    @property
    def num_cores(self) -> int:
        return sum(len(d.core_ids) for d in self.domains)

    @property
    def heterogeneous(self) -> bool:
        """True if cores run at different clock rates."""
        return bool(self.core_frequency_scales) and len(
            set(self.core_frequency_scales)
        ) > 1

    def core_frequency(self, core: int) -> float:
        """Clock rate of one core (Hz)."""
        if not 0 <= core < self.num_cores:
            raise ConfigurationError(f"core {core} out of range")
        if not self.core_frequency_scales:
            return self.frequency_hz
        return self.frequency_hz * self.core_frequency_scales[core]

    def domain_of(self, core: int) -> CacheDomain:
        """The cache domain containing ``core``."""
        for domain in self.domains:
            if core in domain.core_ids:
                return domain
        raise ConfigurationError(f"core {core} not in any domain")

    def domain_index_of(self, core: int) -> int:
        """Index into :attr:`domains` of the domain containing ``core``."""
        for idx, domain in enumerate(self.domains):
            if core in domain.core_ids:
                return idx
        raise ConfigurationError(f"core {core} not in any domain")

    def partners_of(self, core: int) -> Tuple[int, ...]:
        """Cores sharing the last-level cache with ``core`` (paper: PS_C)."""
        domain = self.domain_of(core)
        return tuple(c for c in domain.core_ids if c != core)


#: Frequency scale factor applied to the real machines (2.4 GHz-class
#: parts modeled at 200 MHz); time constants elsewhere scale alike.
FREQUENCY_SCALE = 1.0 / 12.0


def four_core_server(sets: int = 256) -> MachineTopology:
    """The paper's "4-core server": Intel Core 2 Quad Q6600.

    Two dies, two cores per die, each die pair sharing a 16-way L2
    (8 MB total on the real part; set-scaled here).
    """
    geometry = CacheGeometry(sets=sets, ways=16)
    return MachineTopology(
        name="4-core-server",
        frequency_hz=2.4e9 * FREQUENCY_SCALE,
        domains=(
            CacheDomain(core_ids=(0, 1), geometry=geometry),
            CacheDomain(core_ids=(2, 3), geometry=geometry),
        ),
        nominal_power_watts=105.0,
    )


def two_core_workstation(sets: int = 256) -> MachineTopology:
    """The paper's "2-core workstation": Pentium Dual Core E2220.

    Two cores sharing a 4-way 1 MB L2 (set-scaled here).
    """
    geometry = CacheGeometry(sets=sets, ways=4)
    return MachineTopology(
        name="2-core-workstation",
        frequency_hz=2.4e9 * FREQUENCY_SCALE,
        domains=(CacheDomain(core_ids=(0, 1), geometry=geometry),),
        nominal_power_watts=65.0,
    )


def two_core_laptop(sets: int = 256) -> MachineTopology:
    """The paper's second performance machine: Core 2 Duo "P6800".

    Two cores sharing a 12-way 3 MB L2 (set-scaled here).
    """
    geometry = CacheGeometry(sets=sets, ways=12)
    return MachineTopology(
        name="2-core-laptop",
        frequency_hz=2.13e9 * FREQUENCY_SCALE,
        domains=(CacheDomain(core_ids=(0, 1), geometry=geometry),),
        nominal_power_watts=44.0,
    )


def heterogeneous_server(sets: int = 256, slow_scale: float = 0.5) -> MachineTopology:
    """A big.LITTLE-style variant of the 4-core server.

    Die 0 keeps the nominal clock; die 1 runs at ``slow_scale`` of it.
    Used by the heterogeneity extension experiment.
    """
    base = four_core_server(sets=sets)
    return MachineTopology(
        name="hetero-server",
        frequency_hz=base.frequency_hz,
        domains=base.domains,
        nominal_power_watts=base.nominal_power_watts,
        core_frequency_scales=(1.0, slow_scale, 1.0, slow_scale),
    )


STANDARD_MACHINES = {
    "4-core-server": four_core_server,
    "2-core-workstation": two_core_workstation,
    "2-core-laptop": two_core_laptop,
    "hetero-server": heterogeneous_server,
}
