"""A running process: a workload instance bound to a core.

The execution model realises the paper's Eq. 3 mechanistically: every
instruction takes ``base_cpi`` cycles plus, per L2 miss,
``penalty_cycles`` stall cycles.  Simulated at L2-access granularity,
one access quantum retires ``1/API`` instructions in

    dt = base_cpi / (API * f)  +  penalty_cycles / f   (on a miss)

so the process's average SPI is exactly ``alpha * MPA + beta`` with
``alpha = API * penalty / f`` and ``beta = base_cpi / f`` — the linear
relation the paper verified empirically on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.workloads.generator import AccessGenerator, build_generator
from repro.workloads.spec import SyntheticBenchmark


@dataclass
class ProcessCounters:
    """Architectural totals of one process."""

    instructions: float = 0.0
    l2_refs: int = 0
    l2_misses: int = 0
    time_running: float = 0.0

    def snapshot(self) -> "ProcessCounters":
        return ProcessCounters(
            instructions=self.instructions,
            l2_refs=self.l2_refs,
            l2_misses=self.l2_misses,
            time_running=self.time_running,
        )

    def delta_since(self, earlier: "ProcessCounters") -> "ProcessCounters":
        return ProcessCounters(
            instructions=self.instructions - earlier.instructions,
            l2_refs=self.l2_refs - earlier.l2_refs,
            l2_misses=self.l2_misses - earlier.l2_misses,
            time_running=self.time_running - earlier.time_running,
        )

    @property
    def mpa(self) -> float:
        """Measured misses per L2 access."""
        if self.l2_refs == 0:
            return 0.0
        return self.l2_misses / self.l2_refs

    @property
    def spi(self) -> float:
        """Measured seconds per instruction (while scheduled)."""
        if self.instructions <= 0:
            return float("inf")
        return self.time_running / self.instructions


class Process:
    """A workload instance assigned to a core.

    Args:
        pid: Globally unique process id (also the cache-owner id).
        workload: The synthetic benchmark being run.
        core: Core the process is assigned to.
        frequency_hz: Machine clock; fixes the Eq. 3 constants.
        seed: Trace-generator seed.
        sets: Set count of the core's last-level cache (the generator
            needs it to lay out per-set reuse).
    """

    def __init__(
        self,
        pid: int,
        workload: SyntheticBenchmark,
        core: int,
        frequency_hz: float,
        seed: int,
        sets: int,
    ):
        if frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        self.pid = pid
        self.workload = workload
        self.core = core
        self.generator: AccessGenerator = build_generator(
            workload, sets=sets, seed=seed, owner_index=pid
        )
        api = workload.api
        self.inv_api = 1.0 / api
        self.hit_seconds_per_access = workload.base_cpi / (api * frequency_hz)
        self.miss_stall_seconds = workload.penalty_cycles / frequency_hz
        # Per-access HPC increments, precomputed for the simulator's
        # inner loop.
        self.l1_incr = workload.mix.l1rpi * self.inv_api
        self.br_incr = workload.mix.brpi * self.inv_api
        self.fp_incr = workload.mix.fppi * self.inv_api
        self.counters = ProcessCounters()
        self._mark: Optional[ProcessCounters] = None

    def execute_access(self, hit: bool) -> float:
        """Account one L2-access quantum; return its duration (s)."""
        dt = self.hit_seconds_per_access
        if not hit:
            dt += self.miss_stall_seconds
        counters = self.counters
        counters.instructions += self.inv_api
        counters.l2_refs += 1
        if not hit:
            counters.l2_misses += 1
        counters.time_running += dt
        return dt

    def charge_stall(self, seconds: float) -> None:
        """Charge extra stall time (e.g. prefetch bandwidth) to the process."""
        if seconds < 0:
            raise ConfigurationError("stall seconds must be non-negative")
        self.counters.time_running += seconds

    def mark_measurement_start(self) -> None:
        """Snapshot counters at the warm-up/measure boundary."""
        self._mark = self.counters.snapshot()

    def measured(self) -> ProcessCounters:
        """Counters accumulated since the measurement mark."""
        if self._mark is None:
            return self.counters.snapshot()
        return self.counters.delta_since(self._mark)

    @property
    def name(self) -> str:
        return self.workload.name

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, core={self.core})"
