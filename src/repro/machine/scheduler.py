"""Round-robin timeslice scheduling of processes on one core.

Section 4.2 of the paper assumes equal-weight round-robin sharing with
a 20 ms timeslice.  Slice lengths here are jittered by ±15 % and each
core starts at a random phase so that, on multi-core machines, every
cross-core *process combination* gets airtime — the uniform-mixing
assumption behind the paper's Eq. 10 averaging.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.machine.process import Process


class CoreSchedule:
    """Run queue and slice bookkeeping for one core."""

    def __init__(
        self,
        core: int,
        processes: List[Process],
        timeslice_s: float,
        seed: int = 0,
        jitter: float = 0.15,
    ):
        if timeslice_s <= 0:
            raise ConfigurationError("timeslice_s must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be within [0, 1)")
        self.core = core
        self.runqueue = list(processes)
        self.timeslice_s = timeslice_s
        self.context_switches = 0
        self._jitter = jitter
        self._rng = random.Random(seed)
        self._index = 0
        # Random initial phase staggers slice boundaries across cores.
        self.slice_end = self._rng.uniform(0.3, 1.0) * self._slice_length()

    def _slice_length(self) -> float:
        if self._jitter == 0.0:
            return self.timeslice_s
        return self.timeslice_s * self._rng.uniform(1.0 - self._jitter, 1.0 + self._jitter)

    @property
    def idle(self) -> bool:
        return not self.runqueue

    def current(self) -> Optional[Process]:
        """The process currently holding the core (None if idle)."""
        if not self.runqueue:
            return None
        return self.runqueue[self._index]

    def maybe_switch(self, now: float) -> bool:
        """Rotate the run queue if the timeslice has expired.

        Returns True if a context switch to a *different* process
        happened.  With a single runnable process the slice clock still
        advances but no switch is counted.
        """
        switched = False
        while now >= self.slice_end:
            self.slice_end += self._slice_length()
            if len(self.runqueue) > 1:
                self._index = (self._index + 1) % len(self.runqueue)
                self.context_switches += 1
                switched = True
        return switched
