"""Command-line interface: ``python -m repro <command>``.

Wraps the :mod:`repro.api` facade so the paper's methodology can be
driven without writing Python:

- ``machines`` / ``benchmarks`` — list what is available.
- ``profile`` — stressmark-profile a suite, save the vectors to JSON.
- ``predict`` — price a co-run combination from saved profiles.
- ``train-power`` — train the Eq. 9 model, save it to JSON.
- ``run`` — simulate an assignment and report measured ground truth.
- ``assign`` — pick the best process-to-core mapping from profiles;
  ``--solver``/``--power-budget``/``--budget-s``/``--fleet`` switch to
  the declarative fleet pipeline (:func:`repro.api.solve_assignment`);
  ``--fleet FILE`` loads a fleet spec whose groups may carry
  heterogeneous core-type/P-state specs (:mod:`repro.hetero`).
- ``serve`` — run the asyncio HTTP prediction service
  (:mod:`repro.serve`) until SIGTERM/SIGINT, then drain and exit.
- ``experiment`` — regenerate one paper table/figure.

``profile``, ``predict``, ``run`` and ``assign`` accept ``--trace
FILE`` and ``--metrics FILE``: the command then runs under a live
:class:`repro.obs.Observer` and its spans / metric registry are
written as JSON when the command finishes (even on failure).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.config import BENCH_SCALE, PROFILE_SCALE, SimulationScale, TEST_SCALE
from repro.errors import ReproError
from repro.machine.topology import STANDARD_MACHINES
from repro.workloads.spec import BENCHMARKS


def _scales(args: argparse.Namespace) -> Tuple[SimulationScale, SimulationScale]:
    """(profile_scale, run_scale) honouring the global --quick flag."""
    if getattr(args, "quick", False):
        return TEST_SCALE, TEST_SCALE
    return PROFILE_SCALE, BENCH_SCALE


def _parse_assignment(specs: Sequence[str]) -> Dict[int, Tuple[str, ...]]:
    """Parse ``core=name[,name...]`` fragments into an assignment."""
    assignment: Dict[int, Tuple[str, ...]] = {}
    for spec in specs:
        core_text, _, names_text = spec.partition("=")
        if not names_text:
            raise ValueError(f"bad assignment fragment {spec!r}; use core=name[,name]")
        core = int(core_text)
        names = tuple(n.strip() for n in names_text.split(",") if n.strip())
        for name in names:
            if name not in BENCHMARKS:
                raise ValueError(f"unknown benchmark {name!r}")
        if core in assignment:
            # Silently keeping the last fragment would drop workloads
            # the user asked for; make the conflict loud instead.
            raise ValueError(
                f"core {core} assigned twice ({'+'.join(assignment[core])} "
                f"and {'+'.join(names)}); merge into one "
                f"{core}=name[,name] fragment"
            )
        assignment[core] = names
    return assignment


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_machines(args: argparse.Namespace) -> int:
    if getattr(args, "as_json", False):
        machines = {}
        for name, factory in sorted(STANDARD_MACHINES.items()):
            topo = factory(sets=args.sets)
            machines[name] = {
                "cores": topo.num_cores,
                "frequency_hz": topo.frequency_hz,
                "core_frequency_scales": [
                    float(scale) for scale in topo.core_frequency_scales
                ],
                "heterogeneous": topo.heterogeneous,
                "domains": [
                    {
                        "cores": list(d.core_ids),
                        "ways": d.geometry.ways,
                        "sets": d.geometry.sets,
                    }
                    for d in topo.domains
                ],
            }
        print(json.dumps({"machines": machines}, indent=2, sort_keys=True))
        return 0
    rows = []
    for name, factory in sorted(STANDARD_MACHINES.items()):
        topo = factory(sets=args.sets)
        domains = ", ".join(
            f"cores {list(d.core_ids)} share {d.geometry.ways}w x {d.geometry.sets}s"
            for d in topo.domains
        )
        rows.append((name, topo.num_cores, f"{topo.frequency_hz / 1e6:.0f} MHz", domains))
    print(render_table(["Machine", "Cores", "Clock (scaled)", "Cache domains"], rows))
    return 0


def cmd_benchmarks(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(BENCHMARKS):
        benchmark = BENCHMARKS[name]
        rows.append(
            (
                name,
                benchmark.api,
                benchmark.mix.fppi,
                benchmark.footprint_ways,
                dict(benchmark.rd_profile).get(float("inf"), 0.0),
            )
        )
    print(
        render_table(
            ["Benchmark", "API (L2/instr)", "FPPI", "Footprint (ways)", "Streaming"],
            rows,
            float_format="{:.3f}",
        )
    )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.api import profile_suite

    names = args.names or sorted(BENCHMARKS)
    print(f"Profiling {len(names)} benchmarks on {args.machine} "
          f"({'with' if args.power else 'without'} P_alone)...", file=sys.stderr)
    profile_scale, _ = _scales(args)
    result = profile_suite(
        names,
        machine=args.machine,
        sets=args.sets,
        seed=args.seed,
        power=args.power,
        scale=profile_scale,
    )
    result.save(args.out)
    print(f"Wrote {len(result.features)} profiles to {args.out}")
    return 0


def _load_batch_mixes(path: str) -> Tuple[Tuple[str, ...], ...]:
    """Read a batch file: a bare JSON list of mixes or {"mixes": [...]}."""
    with open(path, "r") as handle:
        document = json.load(handle)
    if isinstance(document, dict):
        document = document.get("mixes")
    if not isinstance(document, list) or not document:
        raise ValueError(
            f"{path}: expected a non-empty JSON list of mixes "
            '(or {"mixes": [...]})'
        )
    mixes = []
    for entry in document:
        if not isinstance(entry, list) or not all(
            isinstance(name, str) for name in entry
        ):
            raise ValueError(
                f"{path}: each mix must be a list of process names, got {entry!r}"
            )
        mixes.append(tuple(entry))
    return tuple(mixes)


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.api import predict_mix, predict_mixes

    if args.batch and args.names:
        raise ValueError("give either process names or --batch FILE, not both")
    if not args.batch and not args.names:
        raise ValueError("give process names to predict, or --batch FILE")
    if args.batch:
        mixes = _load_batch_mixes(args.batch)
        results = predict_mixes(
            mixes, args.suite, ways=args.ways, workers=args.workers,
            engine=args.engine,
        )
        if getattr(args, "as_json", False):
            document = {
                "kind": "mix_prediction_batch",
                "version": 1,
                "predictions": [result.to_dict() for result in results],
            }
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0
        rows = [
            (index, p.name, p.effective_size, p.mpa, p.spi, p.ips)
            for index, result in enumerate(results)
            for p in result.prediction.processes
        ]
        print(
            render_table(
                ["Mix", "Process", "Eff. size (ways)", "MPA", "SPI (s)", "IPS"],
                rows,
                title=f"{len(results)} co-run predictions on a "
                f"{args.ways}-way shared cache",
                float_format="{:.4g}",
            )
        )
        return 0
    mix = predict_mix(args.names, args.suite, ways=args.ways)
    if getattr(args, "as_json", False):
        print(json.dumps(mix.to_dict(), indent=2, sort_keys=True))
        return 0
    rows = [
        (p.name, p.effective_size, p.mpa, p.spi, p.ips)
        for p in mix.prediction.processes
    ]
    print(
        render_table(
            ["Process", "Eff. size (ways)", "MPA", "SPI (s)", "IPS"],
            rows,
            title=f"Co-run prediction on a {args.ways}-way shared cache "
            f"(solver: {mix.prediction.solver})",
            float_format="{:.4g}",
        )
    )
    return 0


def cmd_train_power(args: argparse.Namespace) -> int:
    from repro.api import train_power

    print(f"Training Eq. 9 power model for {args.machine}...", file=sys.stderr)
    result = train_power(
        args.machine,
        sets=args.sets,
        seed=args.seed,
        quick=getattr(args, "quick", False),
    )
    result.save(args.out)
    print(f"R^2 = {result.r_squared:.4f}, "
          f"P_idle/core = {result.model.p_idle:.2f} W")
    print(f"Wrote model to {args.out}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.machine.simulator import MachineSimulation, PowerEnvironment

    topology = STANDARD_MACHINES[args.machine](sets=args.sets)
    assignment = _parse_assignment(args.assign)
    workloads = {
        core: [BENCHMARKS[name] for name in names]
        for core, names in assignment.items()
    }
    power_env = (
        PowerEnvironment.for_topology(topology, seed=args.seed) if args.power else None
    )
    _, run_scale = _scales(args)
    sim = MachineSimulation(
        topology, workloads, scale=run_scale, seed=args.seed, power_env=power_env
    )
    result = sim.run_duration() if args.power else sim.run_accesses()
    rows = [
        (p.name, p.core, p.occupancy_ways, p.mpa, p.spi, p.l2_refs)
        for p in result.processes
    ]
    print(
        render_table(
            ["Process", "Core", "Occupancy (ways)", "MPA", "SPI (s)", "L2 refs"],
            rows,
            title=f"Measured steady state on {topology.name}",
            float_format="{:.4g}",
        )
    )
    if result.power is not None:
        print(f"\nMeasured processor power: {result.power.mean_measured:.2f} W "
              f"over {len(result.power)} windows")
    return 0


#: ``repro assign --objective`` values served by the legacy exhaustive
#: pick; anything else (or any fleet-only flag) routes through the
#: declarative :func:`repro.api.solve_assignment` pipeline.
_LEGACY_OBJECTIVES = ("power", "throughput", "energy_per_instruction")


def cmd_assign(args: argparse.Namespace) -> int:
    wants_fleet = (
        args.solver is not None
        or args.power_budget is not None
        or args.budget_s is not None
        or args.iterations is not None
        or getattr(args, "fleet", None) is not None
        or args.objective not in _LEGACY_OBJECTIVES
    )
    if not wants_fleet:
        # Historical output (kind "assignment_pick") stays pinned; the
        # impl function avoids the shim's DeprecationWarning.
        from repro.api import _pick_assignment_impl

        pick = _pick_assignment_impl(
            args.names,
            args.suite,
            args.power_model,
            machine=args.machine,
            sets=args.sets,
            objective=args.objective,
            greedy=args.greedy,
            workers=args.workers,
        )
        print(json.dumps(pick.to_dict(), indent=2, sort_keys=True))
        return 0
    if args.greedy:
        raise ValueError(
            "--greedy belongs to the legacy exhaustive pick; "
            "use --solver greedy instead"
        )
    from repro.api import AssignmentRequest, solve_assignment
    from repro.io import fleet_assignment_to_dict, fleet_spec_from_dict, load_json

    fleet = None
    if getattr(args, "fleet", None) is not None:
        fleet = fleet_spec_from_dict(load_json(args.fleet))
    request = AssignmentRequest(
        processes=tuple(args.names),
        objective=args.objective,
        solver=args.solver or "auto",
        fleet=fleet,
        machine=args.machine,
        sets=args.sets,
        power_budget_watts=args.power_budget,
        budget_s=args.budget_s,
        max_iterations=args.iterations,
        seed=args.seed,
    )
    result = solve_assignment(
        request, args.suite, args.power_model, workers=args.workers
    )
    print(json.dumps(fleet_assignment_to_dict(result), indent=2, sort_keys=True))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio prediction service until SIGTERM/SIGINT.

    Both signals trigger the same graceful shutdown ``stop()``
    performs: stop listening, drain queued prediction batches, then
    exit 0.  With ``--http-workers N > 1`` the same address is served
    by N shared-nothing worker processes behind ``SO_REUSEPORT``.
    """
    import signal
    import threading

    from repro.api import serve

    models = {}
    if args.suite:
        models["default"] = args.suite
    if args.power_model:
        models["power"] = args.power_model
    for spec in args.model or []:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ValueError(
                f"bad --model fragment {spec!r}; use NAME=FILE"
            )
        models[name] = path
    if not models:
        raise ValueError(
            "nothing to serve: give --suite FILE, --power-model FILE "
            "and/or --model NAME=FILE"
        )
    if args.http_workers < 1:
        raise ValueError("--http-workers must be >= 1")
    common = dict(
        workers=args.workers,
        strategy=args.strategy,
        max_batch_size=args.max_batch,
        max_linger_ms=args.linger_ms,
        max_queue=args.max_queue,
        engine=args.engine,
        result_cache_size=args.cache_size,
        target_p95_ms=args.target_p95_ms,
        max_body_bytes=args.max_body_bytes,
    )
    if args.http_workers > 1:
        from repro.serve import start_worker_pool

        handle = start_worker_pool(
            models,
            host=args.host,
            port=args.port,
            http_workers=args.http_workers,
            **common,
        )
        print(
            f"serving {', '.join(sorted(models))} on "
            f"{handle.workers} workers (pids {handle.pids})",
            file=sys.stderr,
        )
    else:
        handle = serve(models, host=args.host, port=args.port, **common)
        published = ", ".join(
            f"{entry['name']}@{entry['version']} ({entry['kind']})"
            for entry in handle.registry.list()
        )
        print(f"serving {published}", file=sys.stderr)
    print(f"listening on http://{handle.host}:{handle.port}", flush=True)
    stop_event = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal interface
        print(f"received signal {signum}; draining...", file=sys.stderr)
        stop_event.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    stop_event.wait()
    handle.stop()
    print("drained and stopped", file=sys.stderr)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.context import get_context

    profile_scale, run_scale = _scales(args)
    context = get_context(
        machine="4-core-server",
        sets=args.sets,
        seed=args.seed,
        profile_scale=profile_scale,
        run_scale=run_scale,
    )
    if args.which == "table1":
        from repro.experiments.table1 import run_pairwise_validation

        result = run_pairwise_validation(context)
        print(result.render())
    elif args.which == "table4":
        from repro.experiments.table4 import render_table4, run_table4

        print(render_table4(run_table4(context)))
    elif args.which == "prefetch":
        from repro.experiments.prefetch_ablation import run_prefetch_ablation

        print(run_prefetch_ablation(context).render())
    elif args.which == "model-choice":
        from repro.experiments.power_training import run_model_choice

        choice = run_model_choice(context)
        print(f"MVLR {choice.mvlr_accuracy_pct:.1f} % vs "
              f"NN {choice.nn_accuracy_pct:.1f} %")
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.which)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSON span trace of the command to FILE",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write the command's JSON metrics registry to FILE",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAC 2010 multicore performance/power modeling reproduction",
    )
    parser.add_argument("--sets", type=int, default=128, help="cache set scaling")
    parser.add_argument(
        "--quick", action="store_true",
        help="use tiny simulation budgets (fast, less accurate)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master RNG seed")
    commands = parser.add_subparsers(dest="command", required=True)

    machines = commands.add_parser("machines", help="list machine topologies")
    machines.add_argument(
        "--json", dest="as_json", action="store_true",
        help="emit machine descriptions as JSON",
    )
    machines.set_defaults(func=cmd_machines)
    commands.add_parser("benchmarks", help="list synthetic benchmarks").set_defaults(
        func=cmd_benchmarks
    )

    profile = commands.add_parser("profile", help="stressmark-profile a suite")
    profile.add_argument("--machine", choices=sorted(STANDARD_MACHINES), required=True)
    profile.add_argument("--out", required=True, help="output JSON path")
    profile.add_argument("--power", action="store_true", help="also measure P_alone")
    _add_obs_flags(profile)
    profile.add_argument("names", nargs="*", help="benchmarks (default: all)")
    profile.set_defaults(func=cmd_profile)

    predict = commands.add_parser("predict", help="predict a co-run from profiles")
    predict.add_argument("--suite", required=True, help="profile-suite JSON")
    predict.add_argument("--ways", type=int, required=True)
    predict.add_argument(
        "--batch", metavar="FILE", default=None,
        help="predict every mix in FILE (JSON list of name lists, "
        'or {"mixes": [...]}) instead of a single co-run',
    )
    predict.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --batch (results are bit-identical "
        "to serial)",
    )
    predict.add_argument(
        "--engine", choices=("auto", "serial", "vectorized", "pool"),
        default="auto",
        help="batch execution engine for --batch (bit-identical "
        "results; 'vectorized' is the fastest single-core choice)",
    )
    predict.add_argument(
        "--json", dest="as_json", action="store_true",
        help="emit the prediction as JSON instead of a table",
    )
    _add_obs_flags(predict)
    predict.add_argument("names", nargs="*")
    predict.set_defaults(func=cmd_predict)

    train = commands.add_parser("train-power", help="train and save the Eq. 9 model")
    train.add_argument("--machine", choices=sorted(STANDARD_MACHINES), required=True)
    train.add_argument("--out", required=True)
    train.set_defaults(func=cmd_train_power)

    run = commands.add_parser("run", help="simulate an assignment")
    run.add_argument("--machine", choices=sorted(STANDARD_MACHINES), required=True)
    run.add_argument("--power", action="store_true")
    _add_obs_flags(run)
    run.add_argument("assign", nargs="+", help="core=name[,name] fragments")
    run.set_defaults(func=cmd_run)

    assign = commands.add_parser("assign", help="pick the best mapping from profiles")
    assign.add_argument("--machine", choices=sorted(STANDARD_MACHINES), required=True)
    assign.add_argument("--suite", required=True)
    assign.add_argument("--power-model", required=True)
    assign.add_argument(
        "--objective",
        choices=_LEGACY_OBJECTIVES + (
            "min-power",
            "max-throughput",
            "min-energy-per-instruction",
            "throughput-under-watts-budget",
        ),
        default="power",
        help="legacy names keep the historical exhaustive pick output; "
        "canonical (dashed) names route through the fleet solver",
    )
    assign.add_argument("--greedy", action="store_true")
    assign.add_argument(
        "--solver", choices=("auto", "exhaustive", "greedy", "anneal"),
        default=None,
        help="fleet solver (implies the declarative pipeline; "
        "default: legacy exhaustive pick)",
    )
    assign.add_argument(
        "--power-budget", type=float, default=None, metavar="WATTS",
        help="global power budget; placements over it are infeasible",
    )
    assign.add_argument(
        "--fleet", default=None, metavar="FILE",
        help="fleet spec JSON (kind fleet_spec; groups may carry hetero "
        "core-type/P-state specs); implies the declarative pipeline "
        "and overrides --machine/--sets",
    )
    assign.add_argument(
        "--budget-s", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the annealing refinement",
    )
    assign.add_argument(
        "--iterations", type=int, default=None,
        help="deterministic iteration cap for the annealing refinement",
    )
    assign.add_argument(
        "--seed", type=int, default=0,
        help="seed for the greedy/anneal heuristic streams",
    )
    assign.add_argument(
        "--workers", type=int, default=None,
        help="score exhaustive candidates across this many worker "
        "processes (same decision as serial)",
    )
    _add_obs_flags(assign)
    assign.add_argument("names", nargs="+")
    assign.set_defaults(func=cmd_assign)

    serve = commands.add_parser(
        "serve", help="run the asyncio HTTP prediction service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = ephemeral; the real port is printed)",
    )
    serve.add_argument(
        "--suite", metavar="FILE", default=None,
        help="profile-suite JSON published as model 'default'",
    )
    serve.add_argument(
        "--power-model", metavar="FILE", default=None,
        help="fitted power-model JSON published as model 'power'",
    )
    serve.add_argument(
        "--model", metavar="NAME=FILE", action="append", default=None,
        help="publish an extra artifact under NAME (repeatable)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker processes per prediction engine (default: in-process)",
    )
    serve.add_argument(
        "--strategy", default="auto", help="equilibrium solver strategy"
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="dispatch a batch once this many requests wait",
    )
    serve.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="dispatch a partial batch after this linger time",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256,
        help="admission bound; excess requests are shed with HTTP 429",
    )
    serve.add_argument(
        "--engine", choices=("auto", "serial", "vectorized", "pool"),
        default="auto",
        help="batch execution engine per served predictor "
        "(bit-identical responses)",
    )
    serve.add_argument(
        "--http-workers", type=int, default=1,
        help="server worker processes sharing the port via SO_REUSEPORT "
        "(default 1 = single in-process server)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="canonical-mix result-cache capacity per worker "
        "(0 disables; hits skip the solver, bit-identical)",
    )
    serve.add_argument(
        "--target-p95-ms", type=float, default=None,
        help="p95 latency SLO in ms; when set, batch size and linger "
        "adapt to hold it",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=8 * 1024 * 1024,
        help="reject request bodies declared larger than this with 413",
    )
    serve.set_defaults(func=cmd_serve)

    experiment = commands.add_parser("experiment", help="regenerate a paper artefact")
    experiment.add_argument(
        "which", choices=("table1", "table4", "prefetch", "model-choice")
    )
    experiment.set_defaults(func=cmd_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    observer = None
    if trace_path or metrics_path:
        from repro import obs

        observer = obs.Observer()
    try:
        if observer is None:
            return args.func(args)
        from repro.obs import use_observer

        try:
            with use_observer(observer):
                return args.func(args)
        finally:
            # Export even when the command failed: a trace of the
            # failing run is exactly what one wants to look at.
            if trace_path:
                observer.write_trace(trace_path)
            if metrics_path:
                observer.write_metrics(metrics_path)
    except (ReproError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
