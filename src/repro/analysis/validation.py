"""Enumeration of validation scenarios (pairings and assignments).

The paper validates on all unordered benchmark pairs (36 pairs of 8
programs including self-pairs, 55 of 10) and on randomly drawn
assignments for each power-table scenario.  These helpers generate
those scenario lists deterministically.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

Assignment = Dict[int, Tuple[str, ...]]


def pairs_with_replacement(names: Sequence[str]) -> List[Tuple[str, str]]:
    """All unordered pairs including self-pairs: C(n,2) + n of them.

    For 8 benchmarks this yields the paper's 36 pairwise combinations;
    for 10, the 55 used on the second machine.
    """
    if not names:
        raise ConfigurationError("need at least one name")
    return list(itertools.combinations_with_replacement(names, 2))


def random_assignment(
    names: Sequence[str],
    cores: Sequence[int],
    processes_per_core: int,
    rng: random.Random,
) -> Assignment:
    """One random assignment with a fixed shape.

    Processes are drawn with replacement from ``names`` (the paper
    picks SPEC programs randomly per assignment, repeats allowed).
    """
    if processes_per_core < 1:
        raise ConfigurationError("processes_per_core must be >= 1")
    if not cores:
        raise ConfigurationError("need at least one core")
    return {
        core: tuple(rng.choice(list(names)) for _ in range(processes_per_core))
        for core in cores
    }


def random_assignments(
    names: Sequence[str],
    cores: Sequence[int],
    processes_per_core: int,
    count: int,
    seed: int,
) -> List[Assignment]:
    """``count`` distinct random assignments of a fixed shape."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    rng = random.Random(seed)
    seen = set()
    assignments: List[Assignment] = []
    attempts = 0
    while len(assignments) < count:
        attempts += 1
        if attempts > 1000 * count:
            raise ConfigurationError(
                "could not draw enough distinct assignments; "
                "scenario space too small"
            )
        assignment = random_assignment(names, cores, processes_per_core, rng)
        key = tuple(sorted((c, tuple(sorted(p))) for c, p in assignment.items()))
        if key in seen:
            continue
        seen.add(key)
        assignments.append(assignment)
    return assignments


def spread_assignments(
    names: Sequence[str],
    total_processes: int,
    cores_used: Sequence[int],
    count: int,
    seed: int,
) -> List[Assignment]:
    """Assignments of ``total_processes`` onto a subset of cores.

    Used for the paper's "4 processes with unused cores" scenarios:
    processes are dealt round-robin onto ``cores_used``.
    """
    if total_processes < len(cores_used):
        raise ConfigurationError("need at least one process per used core")
    rng = random.Random(seed)
    seen = set()
    assignments: List[Assignment] = []
    attempts = 0
    while len(assignments) < count:
        attempts += 1
        if attempts > 1000 * count:
            raise ConfigurationError("scenario space too small for distinct draws")
        chosen = [rng.choice(list(names)) for _ in range(total_processes)]
        assignment: Dict[int, List[str]] = {core: [] for core in cores_used}
        for index, name in enumerate(chosen):
            assignment[cores_used[index % len(cores_used)]].append(name)
        frozen = {core: tuple(procs) for core, procs in assignment.items()}
        key = tuple(sorted((c, tuple(sorted(p))) for c, p in frozen.items()))
        if key in seen:
            continue
        seen.add(key)
        assignments.append(frozen)
    return assignments
