"""Paper-style ASCII table rendering for the benchmark harness."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a fixed-width table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    if not headers:
        raise ConfigurationError("need at least one column")
    formatted: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        formatted.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted)) if formatted
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(fmt_row(r) for r in formatted)
    return "\n".join(lines)


def render_series(
    times: Sequence[float],
    series: Sequence[Sequence[float]],
    labels: Sequence[str],
    title: Optional[str] = None,
    max_rows: int = 30,
) -> str:
    """Render aligned time series (e.g. Figure 2's traces) as text.

    Long series are decimated to at most ``max_rows`` rows.
    """
    if len(series) != len(labels):
        raise ConfigurationError("one label per series required")
    n = len(times)
    for s in series:
        if len(s) != n:
            raise ConfigurationError("all series must match the time axis")
    step = max(1, n // max_rows)
    headers = ["t(s)"] + list(labels)
    rows = []
    for i in range(0, n, step):
        rows.append([f"{times[i]:.4f}"] + [float(s[i]) for s in series])
    return render_table(headers, rows, title=title)
