"""Error metrics used by the paper's validation tables.

The paper reports, per scenario: average and maximum *relative* error
(for SPI and power), average *absolute* error (for MPA, which is
already a ratio), and the fraction of test cases whose error exceeds
5 %.  All figures are in percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def relative_error_pct(estimate: float, truth: float) -> float:
    """|estimate - truth| / |truth| in percent."""
    if truth == 0:
        raise ConfigurationError("relative error undefined for zero truth")
    return abs(estimate - truth) / abs(truth) * 100.0


def absolute_error_pct(estimate: float, truth: float) -> float:
    """|estimate - truth| in percentage points (for ratio quantities)."""
    return abs(estimate - truth) * 100.0


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate statistics over a set of per-case errors (percent)."""

    count: int
    mean: float
    maximum: float
    over_5pct: float  # fraction of cases above 5 %, in percent

    @classmethod
    def from_errors(cls, errors: Sequence[float]) -> "ErrorSummary":
        arr = np.asarray(errors, dtype=float)
        if arr.size == 0:
            raise ConfigurationError("cannot summarise zero errors")
        if np.any(arr < 0):
            raise ConfigurationError("errors must be non-negative")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            maximum=float(arr.max()),
            over_5pct=float((arr > 5.0).mean() * 100.0),
        )

    def merged_with(self, other: "ErrorSummary") -> "ErrorSummary":
        """Pooled summary of two disjoint error sets."""
        total = self.count + other.count
        return ErrorSummary(
            count=total,
            mean=(self.mean * self.count + other.mean * other.count) / total,
            maximum=max(self.maximum, other.maximum),
            over_5pct=(self.over_5pct * self.count + other.over_5pct * other.count)
            / total,
        )


def summarize(errors: Sequence[float]) -> ErrorSummary:
    """Convenience wrapper for :meth:`ErrorSummary.from_errors`."""
    return ErrorSummary.from_errors(errors)
