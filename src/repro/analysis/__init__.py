"""Error metrics, table rendering and scenario enumeration."""

from repro.analysis.errors import (
    ErrorSummary,
    absolute_error_pct,
    relative_error_pct,
    summarize,
)
from repro.analysis.tables import render_series, render_table
from repro.analysis.validation import (
    pairs_with_replacement,
    random_assignment,
    random_assignments,
    spread_assignments,
)

__all__ = [
    "ErrorSummary",
    "relative_error_pct",
    "absolute_error_pct",
    "summarize",
    "render_table",
    "render_series",
    "pairs_with_replacement",
    "random_assignment",
    "random_assignments",
    "spread_assignments",
]
