"""Hardware-performance-counter event definitions.

The paper's power model (Eq. 9) regresses processor power on five
event *rates*: L1 data-cache references, L2 references, L2 misses,
branches and floating-point operations, all per second.  The machine
simulator additionally maintains instruction and cycle counts so SPI
and IPC can be measured.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple


class Event(Enum):
    """A countable hardware event."""

    INSTRUCTIONS = "instructions"
    CYCLES = "cycles"
    L1_REFS = "l1_refs"
    L2_REFS = "l2_refs"
    L2_MISSES = "l2_misses"
    BRANCHES = "branches"
    FP_OPS = "fp_ops"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The five regressors of the paper's power model (Eq. 9), in the
#: paper's order: L1RPS, L2RPS, L2MPS, BRPS, FPPS.
RATE_EVENTS: Tuple[Event, ...] = (
    Event.L1_REFS,
    Event.L2_REFS,
    Event.L2_MISSES,
    Event.BRANCHES,
    Event.FP_OPS,
)

#: Human-readable names matching the paper's notation.
PAPER_NAMES = {
    Event.L1_REFS: "L1RPS",
    Event.L2_REFS: "L2RPS",
    Event.L2_MISSES: "L2MPS",
    Event.BRANCHES: "BRPS",
    Event.FP_OPS: "FPPS",
}
