"""Extension experiment: model-driven cache partitioning.

The paper's machinery descends from a cache-partitioning predictor
(Xu et al. [11]).  This experiment closes that loop: use the profiled
histograms to pick the best static way partition, then verify on the
way-partitioned cache substrate that each process's miss rate lands
where Eq. 2 predicted, and compare the resulting throughput against an
even split and against free-for-all LRU sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.cache.partitioned import WayPartitionedCache
from repro.core.feature import FeatureVector
from repro.core.partitioning import PartitionPlan, even_partition, optimal_partition
from repro.errors import ConfigurationError
from repro.machine.simulator import MachineSimulation
from repro.workloads.generator import build_generator
from repro.workloads.spec import BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class PartitionValidation:
    """Predicted vs measured behaviour under one partition plan."""

    plan: PartitionPlan
    measured_mpas: Tuple[float, ...]
    measured_spis: Tuple[float, ...]

    @property
    def max_mpa_error_pts(self) -> float:
        return max(
            abs(p - m) * 100.0
            for p, m in zip(self.plan.predicted_mpas, self.measured_mpas)
        )

    @property
    def measured_total_ips(self) -> float:
        return sum(1.0 / spi for spi in self.measured_spis)

    @property
    def predicted_total_ips(self) -> float:
        return sum(1.0 / spi for spi in self.plan.predicted_spis)


@dataclass(frozen=True)
class PartitioningResult:
    """Full extension-experiment outcome."""

    optimal: PartitionValidation
    even: PartitionValidation
    shared_lru_total_ips: float
    names: Tuple[str, ...]


def simulate_partition(
    context: "ExperimentContext",
    names: Sequence[str],
    plan: PartitionPlan,
    accesses: int = 40_000,
) -> PartitionValidation:
    """Run each process through its private partition and measure.

    Partitions isolate processes completely, so interleaving is
    irrelevant and each process can be driven independently.
    """
    geometry = context.topology.domains[0].geometry
    cache = WayPartitionedCache(
        geometry, {i: s for i, s in enumerate(plan.allocation)}
    )
    frequency = context.topology.frequency_hz
    measured_mpas: List[float] = []
    measured_spis: List[float] = []
    for owner, name in enumerate(names):
        benchmark = BENCHMARKS[name]
        generator = build_generator(
            benchmark, sets=geometry.sets, seed=context.seed + owner, owner_index=owner
        )
        warmup = accesses // 4
        for _ in range(warmup):
            cache.access(generator.next_line(), owner)
        baseline = cache.stats.owner(owner).snapshot()
        for _ in range(accesses):
            cache.access(generator.next_line(), owner)
        window = cache.stats.owner(owner).delta_since(baseline)
        mpa = window.miss_rate
        measured_mpas.append(mpa)
        measured_spis.append(benchmark.spi(mpa, frequency))
    return PartitionValidation(
        plan=plan,
        measured_mpas=tuple(measured_mpas),
        measured_spis=tuple(measured_spis),
    )


def run_partitioning_extension(
    context: "ExperimentContext",
    names: Sequence[str] = ("mcf", "twolf"),
    objective: str = "throughput",
) -> PartitioningResult:
    """Optimal vs even partition vs shared LRU for one co-schedule."""
    if len(names) < 2:
        raise ConfigurationError("need at least two processes to partition")
    ways = context.topology.domains[0].geometry.ways
    features: List[FeatureVector] = [
        context.profiles()[name].feature for name in names
    ]

    optimal_plan = optimal_partition(features, ways, objective=objective)
    even_plan = even_partition(features, ways)
    optimal_validated = simulate_partition(context, names, optimal_plan)
    even_validated = simulate_partition(context, names, even_plan)

    # Shared-LRU ground truth: the ordinary contention simulation.
    shared = MachineSimulation(
        context.topology,
        {core: [BENCHMARKS[name]] for core, name in enumerate(names)},
        scale=context.run_scale,
        seed=context.seed + 909,
    ).run_accesses()
    shared_ips = sum(1.0 / p.spi for p in shared.processes)

    return PartitioningResult(
        optimal=optimal_validated,
        even=even_validated,
        shared_lru_total_ips=shared_ips,
        names=tuple(names),
    )
