"""End-to-end assignment-quality experiment (the paper's motivation).

Section 5's purpose is power-aware assignment: if the combined model
prices every tentative mapping accurately, picking the cheapest one
should pick the mapping that *measures* cheapest.  This experiment
closes that loop:

1. enumerate every distinct one-process-per-core mapping of a process
   set onto the machine,
2. price each from profiles alone (combined model),
3. run each for measured ground truth,
4. report the rank correlation and the *regret* — how many measured
   watts the model's choice gives away versus the true optimum.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext

Assignment = Dict[int, Tuple[str, ...]]


def distinct_one_per_core_assignments(
    names: Sequence[str], cores: Sequence[int]
) -> List[Assignment]:
    """All distinct mappings of ``names`` onto ``cores`` (one each)."""
    assignments = []
    seen = set()
    for permutation in itertools.permutations(names):
        assignment = {
            core: (name,) for core, name in zip(cores, permutation)
        }
        key = tuple(sorted(assignment.items()))
        if key not in seen:
            seen.add(key)
            assignments.append(assignment)
    return assignments


@dataclass(frozen=True)
class RankedAssignment:
    assignment: Assignment
    predicted_watts: float
    measured_watts: float


@dataclass(frozen=True)
class AssignmentQualityResult:
    """How well profile-only pricing ranks real assignments."""

    ranked: Tuple[RankedAssignment, ...]
    rank_correlation: float

    @property
    def chosen(self) -> RankedAssignment:
        """The assignment the model would pick (min predicted power)."""
        return min(self.ranked, key=lambda r: r.predicted_watts)

    @property
    def true_best(self) -> RankedAssignment:
        return min(self.ranked, key=lambda r: r.measured_watts)

    @property
    def regret_watts(self) -> float:
        """Measured power given away by trusting the model's choice."""
        return self.chosen.measured_watts - self.true_best.measured_watts

    @property
    def regret_pct(self) -> float:
        return self.regret_watts / self.true_best.measured_watts * 100.0

    @property
    def measured_spread_watts(self) -> float:
        """Range of measured powers across the assignment space."""
        values = [r.measured_watts for r in self.ranked]
        return max(values) - min(values)


def _spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation (no scipy dependency)."""
    ranks_a = np.argsort(np.argsort(a)).astype(float)
    ranks_b = np.argsort(np.argsort(b)).astype(float)
    if np.std(ranks_a) == 0 or np.std(ranks_b) == 0:
        return 1.0
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


def run_assignment_quality(
    context: "ExperimentContext",
    names: Sequence[str] = ("mcf", "art", "gzip", "twolf"),
) -> AssignmentQualityResult:
    """Price and then run every distinct mapping of ``names``."""
    model = context.combined_model()
    cores = list(range(context.topology.num_cores))
    assignments = distinct_one_per_core_assignments(names, cores)
    ranked: List[RankedAssignment] = []
    for index, assignment in enumerate(assignments):
        predicted = model.estimate_assignment_power(assignment).watts
        result = context.run_assignment(assignment, seed_offset=3_000 + index)
        ranked.append(
            RankedAssignment(
                assignment=assignment,
                predicted_watts=predicted,
                measured_watts=result.power.mean_measured,
            )
        )
    correlation = _spearman(
        [r.predicted_watts for r in ranked],
        [r.measured_watts for r in ranked],
    )
    return AssignmentQualityResult(
        ranked=tuple(ranked), rank_correlation=correlation
    )
