"""Ablation experiments for the design choices DESIGN.md calls out.

- Solver: Newton–Raphson (the paper's choice) vs the robust nested
  bisection scheme — agreement and runtime.
- Histogram resolution: profiling accuracy vs number of stressmark
  sweep points.
- Sampling period: power-model validation error vs HPC window length.
- Replacement policy: model error when the ground-truth cache violates
  the LRU assumption.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.errors import relative_error_pct
from repro.core.equilibrium import BisectionSolver, NewtonSolver, SolverTelemetry
from repro.core.performance_model import PerformanceModel
from repro.core.solver_cache import EquilibriumCache
from repro.errors import ConvergenceError
from repro.machine.simulator import MachineSimulation
from repro.profiling.profiler import profile_process
from repro.workloads.spec import BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


# ----------------------------------------------------------------------
# Solver ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolverCase:
    pair: Tuple[str, str]
    newton_sizes: Optional[Tuple[float, ...]]
    bisection_sizes: Tuple[float, ...]
    newton_seconds: float
    bisection_seconds: float
    newton_converged: bool
    newton_telemetry: Optional[SolverTelemetry] = None
    bisection_telemetry: Optional[SolverTelemetry] = None
    newton_failure: Optional[str] = None

    @property
    def max_size_disagreement(self) -> float:
        if self.newton_sizes is None:
            return float("nan")
        return max(
            abs(a - b) for a, b in zip(self.newton_sizes, self.bisection_sizes)
        )


@dataclass(frozen=True)
class SolverAblationResult:
    cases: Tuple[SolverCase, ...]

    @property
    def convergence_rate(self) -> float:
        return float(np.mean([c.newton_converged for c in self.cases]))

    @property
    def mean_disagreement(self) -> float:
        values = [
            c.max_size_disagreement for c in self.cases if c.newton_converged
        ]
        return float(np.mean(values)) if values else float("nan")

    @property
    def newton_speedup(self) -> float:
        newton = sum(c.newton_seconds for c in self.cases if c.newton_converged)
        bisect = sum(c.bisection_seconds for c in self.cases if c.newton_converged)
        return bisect / newton if newton > 0 else float("nan")

    @property
    def mean_newton_iterations(self) -> float:
        values = [
            c.newton_telemetry.iterations
            for c in self.cases
            if c.newton_telemetry is not None
        ]
        return float(np.mean(values)) if values else float("nan")

    @property
    def max_residual_norm(self) -> float:
        values = [
            c.newton_telemetry.residual_norm
            for c in self.cases
            if c.newton_telemetry is not None
        ]
        return float(np.max(values)) if values else float("nan")


def run_solver_ablation(
    context: "ExperimentContext",
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> SolverAblationResult:
    """Compare both equilibrium solvers over co-run pairs."""
    model = context.performance_model()
    ways = model.ways
    if pairs is None:
        names = list(context.benchmark_names)
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i:]]
    cases: List[SolverCase] = []
    for pair in pairs:
        inputs = model._equilibrium_inputs(list(pair))
        start = time.perf_counter()
        newton_telemetry: Optional[SolverTelemetry] = None
        newton_failure: Optional[str] = None
        try:
            newton = NewtonSolver().solve(inputs, ways)
            newton_sizes: Optional[Tuple[float, ...]] = newton.sizes
            newton_telemetry = newton.telemetry
            converged = True
        except ConvergenceError as err:
            newton_sizes = None
            newton_failure = f"{err} (iterations={err.iterations})"
            converged = False
        newton_seconds = time.perf_counter() - start
        start = time.perf_counter()
        bisection = BisectionSolver().solve(inputs, ways)
        bisection_seconds = time.perf_counter() - start
        cases.append(
            SolverCase(
                pair=pair,
                newton_sizes=newton_sizes,
                bisection_sizes=bisection.sizes,
                newton_seconds=newton_seconds,
                bisection_seconds=bisection_seconds,
                newton_converged=converged,
                newton_telemetry=newton_telemetry,
                bisection_telemetry=bisection.telemetry,
                newton_failure=newton_failure,
            )
        )
    return SolverAblationResult(cases=tuple(cases))


# ----------------------------------------------------------------------
# Predict hot-path ablation (analytic vs finite-difference Jacobian)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictHotPathResult:
    """Timing and agreement of the predict hot path on one co-run mix.

    ``analytic_ms``/``fd_ms`` time the Newton solve itself with each
    Jacobian mode; ``predict_ms`` times the full uncached
    ``PerformanceModel.predict`` call; ``warm_predict_ms`` the same
    call answered from a hot :class:`EquilibriumCache`.
    """

    mix: Tuple[str, ...]
    contended: bool
    analytic_ms: float
    fd_ms: float
    predict_ms: float
    warm_predict_ms: float
    max_abs_diff: float
    cache_hit_rate: float
    telemetry: Optional[SolverTelemetry]

    @property
    def jacobian_speedup(self) -> float:
        return self.fd_ms / self.analytic_ms if self.analytic_ms > 0 else float("nan")

    @property
    def cached_speedup(self) -> float:
        return (
            self.predict_ms / self.warm_predict_ms
            if self.warm_predict_ms > 0
            else float("nan")
        )


def _median_ms(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples)) * 1e3


def run_predict_hot_path(
    context: "ExperimentContext",
    mix: Optional[Sequence[str]] = None,
    repeats: int = 30,
) -> PredictHotPathResult:
    """Time the equilibrium hot path on a contended multi-process mix.

    Compares the analytic-Jacobian Newton solve against the
    finite-difference debug path (the pre-optimisation algorithm) and
    verifies both land on the same partition; also times the full
    ``predict`` call cold (cache disabled) and warm (cache hit).
    """
    if mix is None:
        names = list(context.benchmark_names)
        mix = tuple(names[:4]) if len(names) >= 4 else tuple(names)
    mix = tuple(mix)
    base = context.performance_model()
    ways = base.ways
    inputs = base._equilibrium_inputs(list(mix))

    analytic_solver = NewtonSolver(jacobian="analytic")
    fd_solver = NewtonSolver(jacobian="fd")
    analytic = analytic_solver.solve(inputs, ways)
    fd = fd_solver.solve(inputs, ways)
    max_abs_diff = max(
        max(abs(a - b) for a, b in zip(analytic.sizes, fd.sizes)),
        max(abs(a - b) for a, b in zip(analytic.spis, fd.spis)),
    )

    analytic_ms = _median_ms(lambda: analytic_solver.solve(inputs, ways), repeats)
    fd_ms = _median_ms(lambda: fd_solver.solve(inputs, ways), repeats)

    # Full predict() timings: cold path with caching disabled, then
    # the cache-hit path of a default model.
    cold = PerformanceModel(
        ways=ways, cache=EquilibriumCache(max_entries=0)
    )
    cold.register_all(list(context.feature_vectors().values()))
    predict_ms = _median_ms(lambda: cold.predict(list(mix)), repeats)

    warm = PerformanceModel(ways=ways)
    warm.register_all(list(context.feature_vectors().values()))
    warm.predict(list(mix))  # populate
    warm_predict_ms = _median_ms(lambda: warm.predict(list(mix)), repeats)

    return PredictHotPathResult(
        mix=mix,
        contended=analytic.contended,
        analytic_ms=analytic_ms,
        fd_ms=fd_ms,
        predict_ms=predict_ms,
        warm_predict_ms=warm_predict_ms,
        max_abs_diff=float(max_abs_diff),
        cache_hit_rate=warm.cache_stats.hit_rate,
        telemetry=analytic.telemetry,
    )


# ----------------------------------------------------------------------
# Histogram (sweep) resolution ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResolutionCase:
    stride: int
    sweep_points: int
    mean_spi_error_pct: float


def run_histogram_resolution(
    context: "ExperimentContext",
    name: str = "mcf",
    partners: Sequence[str] = ("art", "twolf", "gzip"),
    strides: Sequence[int] = (1, 2, 4),
) -> List[ResolutionCase]:
    """Profiling sweep density vs downstream SPI prediction error.

    ``name`` is re-profiled with every ``stride``-th stressmark point;
    its co-run SPI against each partner is predicted and compared to
    the simulated truth (partners use the full-resolution profiles).
    """
    ways = context.topology.domains[0].geometry.ways
    base_model = context.performance_model()
    # Ground-truth co-runs (shared across strides).
    truths: Dict[str, float] = {}
    for index, partner in enumerate(partners):
        result = context.run_assignment(
            {0: (name,), 1: (partner,)}, seed_offset=9_000 + index, collect_power=False
        )
        truths[partner] = result.processes[0].spi

    cases: List[ResolutionCase] = []
    for stride in strides:
        sweep = list(range(ways - 1, 0, -stride))
        profile = profile_process(
            BENCHMARKS[name],
            context.topology,
            scale=context.profile_scale,
            seed=context.seed + 555 + stride,
            sweep_ways=sweep,
        )
        model = PerformanceModel(ways=ways)
        model.register_all(list(context.feature_vectors().values()))
        model.register(profile.feature)  # replace with the coarse profile
        errors = []
        for partner in partners:
            predicted = model.predict([name, partner])[0].spi
            errors.append(relative_error_pct(predicted, truths[partner]))
        cases.append(
            ResolutionCase(
                stride=stride,
                sweep_points=len(sweep),
                mean_spi_error_pct=float(np.mean(errors)),
            )
        )
    return cases


# ----------------------------------------------------------------------
# HPC sampling-period ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SamplingPeriodCase:
    period_s: float
    windows: int
    mean_sample_error_pct: float
    avg_power_error_pct: float


def run_sampling_period(
    context: "ExperimentContext",
    assignment: Optional[Dict[int, Tuple[str, ...]]] = None,
    periods_s: Sequence[float] = (0.00125, 0.0025, 0.005),
) -> List[SamplingPeriodCase]:
    """Power-model error vs HPC sampling period on one assignment."""
    from repro.experiments.power_validation import estimate_power_series

    if assignment is None:
        assignment = {0: ("mcf",), 1: ("gzip",), 2: ("art",), 3: ("twolf",)}
    cases: List[SamplingPeriodCase] = []
    for index, period in enumerate(periods_s):
        scale = replace(context.run_scale, hpc_period_s=period)
        result = context.run_assignment(
            assignment, seed_offset=9_500 + index, scale=scale
        )
        estimated, measured = estimate_power_series(context, result)
        sample_errors = np.abs(estimated - measured) / measured * 100.0
        cases.append(
            SamplingPeriodCase(
                period_s=period,
                windows=int(measured.size),
                mean_sample_error_pct=float(sample_errors.mean()),
                avg_power_error_pct=relative_error_pct(
                    float(estimated.mean()), float(measured.mean())
                ),
            )
        )
    return cases


# ----------------------------------------------------------------------
# Replacement-policy ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyCase:
    policy: str
    mean_spi_error_pct: float
    mean_mpa_error_pts: float


def run_replacement_policy(
    context: "ExperimentContext",
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    policies: Sequence[str] = ("lru", "tree-plru", "fifo", "random"),
) -> List[PolicyCase]:
    """LRU-assuming model vs ground truth under other policies."""
    model = context.performance_model()
    if pairs is None:
        pairs = [("mcf", "art"), ("mcf", "twolf"), ("vpr", "ammp"), ("gzip", "mcf")]
    cases: List[PolicyCase] = []
    for policy in policies:
        spi_errors = []
        mpa_errors = []
        for index, (left, right) in enumerate(pairs):
            sim = MachineSimulation(
                context.topology,
                {0: [BENCHMARKS[left]], 1: [BENCHMARKS[right]]},
                scale=context.run_scale,
                seed=context.seed + 17 * (index + 1),
                policy=policy,
            )
            result = sim.run_accesses()
            prediction = model.predict([left, right])
            for slot in range(2):
                measured = result.processes[slot]
                predicted = prediction[slot]
                spi_errors.append(relative_error_pct(predicted.spi, measured.spi))
                mpa_errors.append(abs(predicted.mpa - measured.mpa) * 100.0)
        cases.append(
            PolicyCase(
                policy=policy,
                mean_spi_error_pct=float(np.mean(spi_errors)),
                mean_mpa_error_pts=float(np.mean(mpa_errors)),
            )
        )
    return cases
