"""Table 2: power-model validation on the 2-core workstation.

Two scenarios, as in the paper: 36 assignments with one process per
core (all unordered pairs of the 8 benchmarks) and 24 random
assignments with two processes time-sharing each core.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.validation import pairs_with_replacement, random_assignments
from repro.experiments.power_validation import (
    ScenarioResult,
    render_power_table,
    validate_scenario,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


def run_table2(
    context: "ExperimentContext",
    limit_1pc: Optional[int] = None,
    limit_2pc: Optional[int] = None,
) -> List[ScenarioResult]:
    """Both Table 2 rows; ``limit_*`` trims assignment counts for CI."""
    pairs = pairs_with_replacement(context.benchmark_names)
    one_per_core = [{0: (a,), 1: (b,)} for a, b in pairs]
    if limit_1pc is not None:
        one_per_core = one_per_core[:limit_1pc]
    two_per_core = random_assignments(
        context.benchmark_names,
        cores=[0, 1],
        processes_per_core=2,
        count=limit_2pc if limit_2pc is not None else 24,
        seed=context.seed + 2,
    )
    return [
        validate_scenario(context, "1 proc./core", one_per_core, seed_base=0),
        validate_scenario(
            context, "2 proc./core", two_per_core, seed_base=len(one_per_core)
        ),
    ]


def render_table2(scenarios: List[ScenarioResult]) -> str:
    return render_power_table(
        "Table 2: Power Model Validation on a 2-Core Workstation", scenarios
    )
