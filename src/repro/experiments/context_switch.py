"""The §4.2 context-switch refill experiment.

The paper's time-sharing power rule rests on one measurement: after a
context switch, the returning process refills its evicted working set
in a small fraction (~1 %) of a 20 ms timeslice, so the transient can
be ignored and a core's power is the plain mean of its processes'
powers.  This driver time-shares two processes on one core, records
every access via the simulator hook, and measures per slice:

- the *excess misses* above the slice's steady-state miss rate (the
  refill work caused by the switch), and
- the stall time those misses cost, as a fraction of the slice.

Note on scale: our caches are set-scaled much harder than the clock,
so processes whose hot set spans many ways of the scaled cache (mcf,
art) show a structurally larger refill fraction than real SPEC did on
an 8 MB L2.  The default pair therefore uses the small-hot-set
benchmarks, which land in the paper's regime; the bench also reports a
large-footprint pair for contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.machine.simulator import MachineSimulation
from repro.workloads.spec import BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class SliceRefill:
    """Refill measurement of one timeslice."""

    pid: int
    slice_length_s: float
    excess_misses: float
    refill_stall_s: float

    @property
    def refill_fraction(self) -> float:
        """Slice fraction spent stalled on refill misses."""
        if self.slice_length_s <= 0:
            return 0.0
        return self.refill_stall_s / self.slice_length_s


@dataclass(frozen=True)
class ContextSwitchResult:
    """Aggregate refill statistics for one time-shared pair."""

    pair: Tuple[str, str]
    timeslice_s: float
    slices_measured: int
    mean_refill_fraction: float
    mean_refill_stall_s: float
    mean_excess_misses: float


def _excess_misses(hits: np.ndarray) -> float:
    """Peak cumulative misses above the slice's steady rate."""
    n = hits.size
    misses = 1.0 - hits
    steady = misses[n // 2:].mean()
    excess = np.cumsum(misses) - steady * np.arange(1, n + 1)
    return float(max(0.0, excess.max()))


def run_context_switch(
    context: "ExperimentContext",
    pair: Tuple[str, str] = ("gzip", "bzip2"),
    timeslice_s: float = 0.020,
    min_slices: int = 10,
) -> ContextSwitchResult:
    """Measure the refill transient for one time-shared pair.

    Args:
        context: Experiment context providing machine and scales.
        pair: Two benchmarks time-sharing core 0.
        timeslice_s: Scheduler timeslice (default: the paper's 20 ms).
        min_slices: Measured slices required (run length adapts).
    """
    records: List[Tuple[float, int, bool]] = []

    def hook(t: float, pid: int, hit: bool) -> None:
        records.append((t, pid, hit))

    benchmarks = [BENCHMARKS[pair[0]], BENCHMARKS[pair[1]]]
    scale = replace(
        context.run_scale,
        timeslice_s=timeslice_s,
        warmup_s=2.0 * timeslice_s,
        measure_s=(min_slices + 2) * timeslice_s,
    )
    sim = MachineSimulation(
        context.topology,
        {0: benchmarks},
        scale=scale,
        seed=context.seed + 4242,
        access_hook=hook,
    )
    sim.run_duration(collect_power=False)
    stall_by_pid = {
        process.pid: process.miss_stall_seconds for process in sim.processes
    }

    refills: List[SliceRefill] = []
    start = 0
    for i in range(1, len(records)):
        if records[i][1] != records[start][1]:
            pid = records[start][1]
            segment = records[start:i]
            if len(segment) >= 50:
                hits = np.array([1.0 if r[2] else 0.0 for r in segment])
                excess = _excess_misses(hits)
                refills.append(
                    SliceRefill(
                        pid=pid,
                        slice_length_s=records[i][0] - segment[0][0],
                        excess_misses=excess,
                        refill_stall_s=excess * stall_by_pid[pid],
                    )
                )
            start = i
    # Drop the first two slices of each process: cold-cache warm-up,
    # not steady-state switching.
    refills = refills[4:]
    if not refills:
        raise RuntimeError("no complete slices recorded; increase min_slices")
    return ContextSwitchResult(
        pair=pair,
        timeslice_s=timeslice_s,
        slices_measured=len(refills),
        mean_refill_fraction=float(np.mean([r.refill_fraction for r in refills])),
        mean_refill_stall_s=float(np.mean([r.refill_stall_s for r in refills])),
        mean_excess_misses=float(np.mean([r.excess_misses for r in refills])),
    )
