"""Table 4: combined-model validation on the 4-core server.

The combined model estimates each assignment's average processor power
from *profiling data only* (Figure 1 algorithm) — no runtime HPC
values — and is compared against the measured average power of the
actually-run assignment.  Five scenarios, as in the paper:
32 × one process per core, 10 × two per core, and 16/16/9 assignments
of four processes onto 3/2/1 cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.errors import ErrorSummary, relative_error_pct
from repro.analysis.tables import render_table
from repro.analysis.validation import random_assignments, spread_assignments

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext

Assignment = Mapping[int, Tuple[str, ...]]


@dataclass(frozen=True)
class CombinedCase:
    """One assignment's profiles-only estimate vs measured power."""

    assignment: Dict[int, Tuple[str, ...]]
    estimated_watts: float
    measured_watts: float

    @property
    def error_pct(self) -> float:
        return relative_error_pct(self.estimated_watts, self.measured_watts)


@dataclass(frozen=True)
class CombinedScenario:
    """One row of Table 4."""

    label: str
    assignments: int
    avg_error: ErrorSummary
    cases: Tuple[CombinedCase, ...]


def validate_combined_scenario(
    context: "ExperimentContext",
    label: str,
    assignments: Sequence[Assignment],
    seed_base: int,
) -> CombinedScenario:
    """Estimate-then-run every assignment of one scenario."""
    model = context.combined_model()
    cases: List[CombinedCase] = []
    for index, assignment in enumerate(assignments):
        estimate = model.estimate_assignment_power(assignment)
        result = context.run_assignment(assignment, seed_offset=seed_base + index)
        cases.append(
            CombinedCase(
                assignment={c: tuple(n) for c, n in assignment.items()},
                estimated_watts=estimate.watts,
                measured_watts=result.power.mean_measured,
            )
        )
    return CombinedScenario(
        label=label,
        assignments=len(cases),
        avg_error=ErrorSummary.from_errors([c.error_pct for c in cases]),
        cases=tuple(cases),
    )


#: (label, total processes, cores used) for the paper's five scenarios.
_SCENARIO_SHAPES = (
    ("1 proc./core", 32, None, 1),
    ("2 proc./core", 10, None, 2),
    ("4 proc., 1 core unused", 16, (0, 1, 2), None),
    ("4 proc., 2 core unused", 16, (0, 2), None),
    ("4 proc., 3 core unused", 9, (0,), None),
)


def run_table4(
    context: "ExperimentContext", limits: Optional[Sequence[int]] = None
) -> List[CombinedScenario]:
    """All five Table 4 rows; ``limits`` trims counts per row for CI."""
    cores = list(range(context.topology.num_cores))
    scenarios: List[CombinedScenario] = []
    seed_base = 1000
    for row, shape in enumerate(_SCENARIO_SHAPES):
        label, count, cores_used, per_core = shape
        if limits is not None:
            count = min(count, limits[row])
        if per_core is not None:
            assignments: List[Assignment] = random_assignments(
                context.benchmark_names,
                cores=cores,
                processes_per_core=per_core,
                count=count,
                seed=context.seed + 800 + row,
            )
        else:
            assignments = spread_assignments(
                context.benchmark_names,
                total_processes=4,
                cores_used=list(cores_used),
                count=count,
                seed=context.seed + 800 + row,
            )
        scenarios.append(
            validate_combined_scenario(context, label, assignments, seed_base)
        )
        seed_base += len(assignments)
    return scenarios


def render_table4(scenarios: Sequence[CombinedScenario]) -> str:
    rows = [
        (
            s.label,
            s.assignments,
            f"{s.avg_error.mean:.2f} / {s.avg_error.maximum:.2f}",
        )
        for s in scenarios
    ]
    return render_table(
        headers=["Scenario", "Assignments", "Avg/max err avg power (%)"],
        rows=rows,
        title="Table 4: Validating the Combined Model on a 4-Core Server",
    )
