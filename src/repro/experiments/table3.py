"""Table 3: power-model validation on the 4-core server.

Three scenarios, as in the paper: 24 random assignments with one
process per core, 3 with two processes per core, and 10 assignments
of four processes that leave one or two cores unused.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.validation import random_assignments, spread_assignments
from repro.experiments.power_validation import (
    ScenarioResult,
    render_power_table,
    validate_scenario,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


def unused_core_assignments(
    context: "ExperimentContext", count: int
) -> List[Dict[int, Tuple[str, ...]]]:
    """Four processes on 2 or 3 of the 4 cores (alternating shapes)."""
    three_cores = spread_assignments(
        context.benchmark_names,
        total_processes=4,
        cores_used=[0, 1, 2],
        count=(count + 1) // 2,
        seed=context.seed + 31,
    )
    two_cores = spread_assignments(
        context.benchmark_names,
        total_processes=4,
        cores_used=[0, 2],
        count=count // 2,
        seed=context.seed + 32,
    )
    mixed: List[Dict[int, Tuple[str, ...]]] = []
    for pair in zip(three_cores, two_cores):
        mixed.extend(pair)
    mixed.extend(three_cores[len(two_cores):])
    return mixed[:count]


def run_table3(
    context: "ExperimentContext",
    limit_1pc: Optional[int] = None,
    limit_2pc: Optional[int] = None,
    limit_unused: Optional[int] = None,
) -> List[ScenarioResult]:
    """All three Table 3 rows (limits trim counts for CI)."""
    cores = list(range(context.topology.num_cores))
    one_per_core = random_assignments(
        context.benchmark_names,
        cores=cores,
        processes_per_core=1,
        count=limit_1pc if limit_1pc is not None else 24,
        seed=context.seed + 11,
    )
    two_per_core = random_assignments(
        context.benchmark_names,
        cores=cores,
        processes_per_core=2,
        count=limit_2pc if limit_2pc is not None else 3,
        seed=context.seed + 12,
    )
    unused = unused_core_assignments(
        context, count=limit_unused if limit_unused is not None else 10
    )
    return [
        validate_scenario(context, "1 proc./core", one_per_core, seed_base=100),
        validate_scenario(
            context, "2 proc./core", two_per_core, seed_base=100 + len(one_per_core)
        ),
        validate_scenario(
            context,
            "4 proc. with unused cores",
            unused,
            seed_base=100 + len(one_per_core) + len(two_per_core),
        ),
    ]


def render_table3(scenarios: List[ScenarioResult]) -> str:
    return render_power_table(
        "Table 3: Power Model Validation on a 4-Core Server", scenarios
    )
