"""Figure 2: estimated vs measured power traces on the 4-core server.

The paper plots the per-sample power of the assignments with the
highest and lowest average power among its test cases, estimated power
overlaid on the meter trace, and quotes ~2.5 % average estimation
error for both.  This driver runs a candidate pool of one-process-per-
core assignments, picks the max/min-average-power ones, and returns
both traces with their error figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_series
from repro.analysis.validation import random_assignments
from repro.experiments.power_validation import (
    AssignmentValidation,
    estimate_power_series,
    validate_assignment,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class PowerTraceComparison:
    """One panel of Figure 2."""

    label: str
    assignment: Dict[int, Tuple[str, ...]]
    times_s: Tuple[float, ...]
    measured_watts: Tuple[float, ...]
    estimated_watts: Tuple[float, ...]

    @property
    def avg_error_pct(self) -> float:
        measured = np.asarray(self.measured_watts)
        estimated = np.asarray(self.estimated_watts)
        return float(np.mean(np.abs(estimated - measured) / measured) * 100.0)

    @property
    def mean_measured_watts(self) -> float:
        return float(np.mean(self.measured_watts))

    def render(self) -> str:
        return render_series(
            list(self.times_s),
            [list(self.estimated_watts), list(self.measured_watts)],
            labels=["estimated(W)", "measured(W)"],
            title=f"Figure 2 ({self.label}): {self.assignment}",
        )


@dataclass(frozen=True)
class Figure2Result:
    maximum: PowerTraceComparison
    minimum: PowerTraceComparison
    pool_size: int


def _trace_for(
    context: "ExperimentContext",
    assignment: Dict[int, Tuple[str, ...]],
    label: str,
    seed_offset: int,
) -> PowerTraceComparison:
    result = context.run_assignment(assignment, seed_offset=seed_offset)
    estimated, measured = estimate_power_series(context, result)
    times = result.power.times[: len(measured)]
    return PowerTraceComparison(
        label=label,
        assignment={c: tuple(n) for c, n in assignment.items()},
        times_s=tuple(float(t) for t in times),
        measured_watts=tuple(float(w) for w in measured),
        estimated_watts=tuple(float(w) for w in estimated),
    )


def run_figure2(
    context: "ExperimentContext", pool: Optional[int] = None
) -> Figure2Result:
    """Pick max/min-power assignments from a pool and trace them."""
    cores = list(range(context.topology.num_cores))
    candidates = random_assignments(
        context.benchmark_names,
        cores=cores,
        processes_per_core=1,
        count=pool if pool is not None else 12,
        seed=context.seed + 77,
    )
    validations: List[Tuple[AssignmentValidation, int]] = []
    for index, assignment in enumerate(candidates):
        validations.append(
            (validate_assignment(context, assignment, seed_offset=500 + index), index)
        )
    by_power = sorted(validations, key=lambda vi: vi[0].measured_avg_watts)
    low, low_idx = by_power[0]
    high, high_idx = by_power[-1]
    return Figure2Result(
        maximum=_trace_for(
            context, dict(high.assignment), "maximum power", 600 + high_idx
        ),
        minimum=_trace_for(
            context, dict(low.assignment), "minimum power", 600 + low_idx
        ),
        pool_size=len(candidates),
    )
