"""Shared experiment setup with caching.

Profiling a benchmark suite costs O(suite × associativity) simulator
runs and the power model costs another batch of training runs; several
tables need the same artefacts.  :class:`ExperimentContext` builds each
artefact once per (machine, seed) and caches it for every experiment
driver and benchmark file in the process.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import BENCH_SCALE, PROFILE_SCALE, SimulationScale
from repro.core.combined import CombinedModel
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.neural import NeuralPowerModel
from repro.core.performance_model import PerformanceModel
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import ConfigurationError
from repro.machine.simulator import (
    MachineSimulation,
    PowerEnvironment,
    SimulationResult,
)
from repro.machine.topology import MachineTopology, STANDARD_MACHINES
from repro.profiling.profiler import ProcessProfile, profile_suite
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT, SyntheticBenchmark


class ExperimentContext:
    """Lazily built, cached artefacts for one machine configuration.

    Args:
        machine: Name in :data:`repro.machine.topology.STANDARD_MACHINES`.
        sets: Set-count scaling of the machine's caches.
        seed: Master seed for every stochastic artefact.
        benchmark_names: Suite used for profiling and training.
        profile_scale: Simulation budgets for profiling runs.
        run_scale: Simulation budgets for validation runs.
    """

    def __init__(
        self,
        machine: str = "4-core-server",
        sets: int = 128,
        seed: int = 42,
        benchmark_names: Sequence[str] = PAPER_EIGHT,
        profile_scale: SimulationScale = PROFILE_SCALE,
        run_scale: SimulationScale = BENCH_SCALE,
    ):
        if machine not in STANDARD_MACHINES:
            raise ConfigurationError(
                f"unknown machine {machine!r}; choose from {sorted(STANDARD_MACHINES)}"
            )
        self.machine = machine
        self.sets = sets
        self.seed = seed
        self.benchmark_names = tuple(benchmark_names)
        self.profile_scale = profile_scale
        self.run_scale = run_scale
        self.topology: MachineTopology = STANDARD_MACHINES[machine](sets=sets)
        self.power_env = PowerEnvironment.for_topology(self.topology, seed=seed)
        self._profiles: Optional[Dict[str, ProcessProfile]] = None
        self._profiles_have_power = False
        self._performance_model: Optional[PerformanceModel] = None
        self._power_model: Optional[CorePowerModel] = None
        self._neural_model: Optional[NeuralPowerModel] = None
        self._training_set: Optional[PowerTrainingSet] = None
        self._combined: Optional[CombinedModel] = None
        self._idle_core_watts: Optional[float] = None

    # ------------------------------------------------------------------
    # Benchmarks
    # ------------------------------------------------------------------
    def benchmark(self, name: str) -> SyntheticBenchmark:
        return BENCHMARKS[name]

    def benchmarks(self) -> List[SyntheticBenchmark]:
        return [BENCHMARKS[name] for name in self.benchmark_names]

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def profiles(self, with_power: bool = False) -> Dict[str, ProcessProfile]:
        """Profile the whole suite once (with P_alone if requested)."""
        if self._profiles is None or (with_power and not self._profiles_have_power):
            results = profile_suite(
                self.benchmarks(),
                self.topology,
                scale=self.profile_scale,
                seed=self.seed,
                power_env=self.power_env if with_power else None,
            )
            self._profiles = {p.feature.name: p for p in results}
            self._profiles_have_power = with_power
            self._performance_model = None
            self._combined = None
        return self._profiles

    def feature_vectors(self) -> Dict[str, FeatureVector]:
        return {name: p.feature for name, p in self.profiles().items()}

    def profile_vectors(self) -> Dict[str, ProfileVector]:
        return {name: p.profile for name, p in self.profiles(with_power=True).items()}

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def performance_model(self, strategy: str = "auto") -> PerformanceModel:
        """Fitted performance model over the profiled suite."""
        if self._performance_model is None or self._performance_model.strategy != strategy:
            ways = self.topology.domains[0].geometry.ways
            model = PerformanceModel(ways=ways, strategy=strategy)
            model.register_all(list(self.feature_vectors().values()))
            self._performance_model = model
        return self._performance_model

    def training_set(self) -> PowerTrainingSet:
        """Paper-style power training rows (SPEC + micro-benchmark)."""
        if self._training_set is None:
            from repro.experiments.power_training import build_training_set

            self._training_set = build_training_set(self)
        return self._training_set

    def measured_idle_core_watts(self) -> float:
        """Directly measured per-core idle power (micro phase 0)."""
        if self._idle_core_watts is None:
            idle = MachineSimulation(
                self.topology,
                {},
                scale=self.run_scale,
                seed=self.seed + 999,
                power_env=self.power_env,
            ).run_duration()
            self._idle_core_watts = idle.power.mean_measured / self.topology.num_cores
        return self._idle_core_watts

    def power_model(self) -> CorePowerModel:
        if self._power_model is None:
            self._power_model = CorePowerModel().fit(
                self.training_set(),
                idle_core_watts=self.measured_idle_core_watts(),
            )
        return self._power_model

    def neural_model(self) -> NeuralPowerModel:
        if self._neural_model is None:
            self._neural_model = NeuralPowerModel(seed=self.seed).fit(self.training_set())
        return self._neural_model

    def combined_model(self) -> CombinedModel:
        if self._combined is None:
            self._combined = CombinedModel(
                topology=self.topology,
                performance_models=[self.performance_model()],
                power_model=self.power_model(),
                profiles=self.profile_vectors(),
            )
        return self._combined

    # ------------------------------------------------------------------
    # Ground-truth runs
    # ------------------------------------------------------------------
    def run_assignment(
        self,
        assignment: Mapping[int, Sequence[str]],
        seed_offset: int = 0,
        collect_power: bool = True,
        scale: Optional[SimulationScale] = None,
        **sim_kwargs,
    ) -> SimulationResult:
        """Run one named assignment on the machine for ground truth."""
        workloads = {
            core: [BENCHMARKS[name] for name in names]
            for core, names in assignment.items()
            if names
        }
        sim = MachineSimulation(
            self.topology,
            workloads,
            scale=scale if scale is not None else self.run_scale,
            seed=self.seed + 7_771 * (seed_offset + 1),
            power_env=self.power_env if collect_power else None,
            **sim_kwargs,
        )
        if collect_power:
            return sim.run_duration()
        return sim.run_accesses()


_CONTEXTS: Dict[Tuple, ExperimentContext] = {}


def get_context(
    machine: str = "4-core-server",
    sets: int = 128,
    seed: int = 42,
    benchmark_names: Sequence[str] = PAPER_EIGHT,
    profile_scale: SimulationScale = PROFILE_SCALE,
    run_scale: SimulationScale = BENCH_SCALE,
) -> ExperimentContext:
    """Process-wide cached :class:`ExperimentContext` factory."""
    key = (machine, sets, seed, tuple(benchmark_names), profile_scale, run_scale)
    context = _CONTEXTS.get(key)
    if context is None:
        context = ExperimentContext(
            machine=machine,
            sets=sets,
            seed=seed,
            benchmark_names=benchmark_names,
            profile_scale=profile_scale,
            run_scale=run_scale,
        )
        _CONTEXTS[key] = context
    return context
