"""Extension experiment: multi-phase processes (paper §3.1 assumption).

The paper assumes single-phase processes and prescribes modeling
non-repeating phases separately, using the longest phase for art and
mcf.  This experiment makes that concrete on a two-phase workload with
a dominant memory-heavy phase and a minority medium phase:

1. detect the phases from the solo HPC miss-rate series
   (:mod:`repro.workloads.phases`, the Tam-et-al. step);
2. profile the workload two ways — naively over the whole run (the
   stressmark sweep sees the phase *mixture*) and phase-aware
   (profile the longest phase only);
3. predict a co-run against a partner with both feature vectors and
   compare against the simulated truth of the dominant phase.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Tuple

from repro.analysis.errors import relative_error_pct
from repro.core.performance_model import PerformanceModel
from repro.errors import SimulationError
from repro.events import Event
from repro.machine.simulator import MachineSimulation
from repro.profiling.profiler import profile_process
from repro.workloads.phased import (
    PhaseSegment,
    PhasedBenchmark,
    make_phased_benchmark,
    phase_benchmark,
)
from repro.workloads.phases import detect_phases
from repro.workloads.spec import BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


def make_two_phase_workload(
    dominant_accesses: int = 9_000, minority_accesses: int = 4_500
) -> PhasedBenchmark:
    """An mcf-like dominant phase alternating with a vpr-like one.

    Default phase lengths are short relative to a profiling run so a
    phase-oblivious sweep genuinely measures the mixture; the
    phase-detection step uses a long-phase variant (same profiles) so
    phases span several HPC windows.
    """
    dominant = BENCHMARKS["mcf"]
    minority = BENCHMARKS["vpr"]
    return make_phased_benchmark(
        name="phased-mcf",
        mix=dominant.mix,
        phases=(
            PhaseSegment(profile=dominant.rd_profile, accesses=dominant_accesses),
            PhaseSegment(profile=minority.rd_profile, accesses=minority_accesses),
        ),
        base_cpi=dominant.base_cpi,
        penalty_cycles=dominant.penalty_cycles,
    )


@dataclass(frozen=True)
class PhasesExtensionResult:
    """Outcome of the multi-phase profiling comparison."""

    detected_phases: int
    longest_phase_share: float
    naive_spi_error_pct: float
    phase_aware_spi_error_pct: float
    partner: str

    @property
    def phase_aware_wins(self) -> bool:
        return self.phase_aware_spi_error_pct < self.naive_spi_error_pct


def detect_workload_phases(
    context: "ExperimentContext", workload: PhasedBenchmark
) -> Tuple[int, float]:
    """Solo-run phase detection on the HPC L2-miss-rate series."""
    sim = MachineSimulation(
        context.topology,
        {0: [workload]},
        scale=context.run_scale,
        seed=context.seed + 60,
        power_env=context.power_env,
    )
    result = sim.run_duration(measure_s=context.run_scale.measure_s * 3)
    series = [s.rates[Event.L2_MISSES] for s in result.hpc_by_core[0]]
    if len(series) < 8:
        raise SimulationError("too few HPC windows for phase detection")
    phases = detect_phases(series, window=2, threshold=0.3)
    longest = max(phases, key=lambda p: p.length)
    return len(phases), longest.length / len(series)


def run_phases_extension(
    context: "ExperimentContext", partner: str = "twolf"
) -> PhasesExtensionResult:
    """Compare naive vs longest-phase profiling on a phased workload."""
    workload = make_two_phase_workload()
    ways = context.topology.domains[0].geometry.ways

    # Phase detection needs phases spanning several HPC windows: use a
    # long-phase variant of the same program.
    detection_workload = make_two_phase_workload(
        dominant_accesses=60_000, minority_accesses=30_000
    )
    detected, longest_share = detect_workload_phases(context, detection_workload)

    # Ground truth for the dominant regime: the dominant phase co-run.
    dominant = phase_benchmark(workload, workload.longest_phase_index)
    truth_sim = MachineSimulation(
        context.topology,
        {0: [dominant], 1: [BENCHMARKS[partner]]},
        scale=context.run_scale,
        seed=context.seed + 61,
    )
    truth = truth_sim.run_accesses().processes[0]

    partner_feature = context.profiles()[partner].feature

    # Naive profiling must integrate over whole phase cycles.
    naive_scale = replace(
        context.profile_scale,
        warmup_accesses=max(
            context.profile_scale.warmup_accesses, workload.cycle_accesses
        ),
        measure_accesses=max(
            context.profile_scale.measure_accesses, 3 * workload.cycle_accesses
        ),
    )
    naive_profile = profile_process(
        workload, context.topology, scale=naive_scale, seed=context.seed + 62
    )
    aware_profile = profile_process(
        dominant, context.topology, scale=context.profile_scale,
        seed=context.seed + 63,
    )

    errors: List[float] = []
    for feature in (naive_profile.feature, aware_profile.feature):
        model = PerformanceModel(ways=ways)
        model.register(partner_feature)
        model.register(feature)
        prediction = model.predict([feature.name, partner])
        errors.append(relative_error_pct(prediction[0].spi, truth.spi))

    return PhasesExtensionResult(
        detected_phases=detected,
        longest_phase_share=longest_share,
        naive_spi_error_pct=errors[0],
        phase_aware_spi_error_pct=errors[1],
        partner=partner,
    )
