"""Experiment drivers — one per paper table/figure plus ablations.

Mapping to the paper (see DESIGN.md §4 for the full index):

- :mod:`~repro.experiments.table1` — Table 1 + the §6.2 second-machine
  result.
- :mod:`~repro.experiments.power_training` — Section 4.1 model
  construction and the MVLR-vs-NN comparison.
- :mod:`~repro.experiments.table2` / :mod:`~repro.experiments.table3`
  — power-model validation tables.
- :mod:`~repro.experiments.figure2` — power trace overlays.
- :mod:`~repro.experiments.table4` — combined-model validation.
- :mod:`~repro.experiments.prefetch_ablation` — §3.1 prefetching study.
- :mod:`~repro.experiments.context_switch` — §4.2 refill transient.
- :mod:`~repro.experiments.ablations` — solver / resolution / sampling
  / replacement-policy ablations.
"""

from repro.experiments.context import ExperimentContext, get_context

__all__ = ["ExperimentContext", "get_context"]
