"""Table 1: performance-model validation on the 4-core server.

All 36 unordered pairs of the 8 SPEC benchmarks (self-pairs included)
are run on two cache-sharing cores; the model predicts each process's
MPA and SPI from its profiled feature vector, and errors are
aggregated per benchmark as in the paper: average absolute MPA error
(percentage points), average relative SPI error, and the fraction of a
benchmark's 8 test cases exceeding 5 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.errors import absolute_error_pct, relative_error_pct
from repro.analysis.tables import render_table
from repro.analysis.validation import pairs_with_replacement

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class PairCase:
    """Model-vs-measurement for one process inside one pair."""

    pair: Tuple[str, str]
    name: str
    measured_mpa: float
    predicted_mpa: float
    measured_spi: float
    predicted_spi: float
    measured_occupancy: float
    predicted_occupancy: float

    @property
    def mpa_error_pct(self) -> float:
        return absolute_error_pct(self.predicted_mpa, self.measured_mpa)

    @property
    def spi_error_pct(self) -> float:
        return relative_error_pct(self.predicted_spi, self.measured_spi)


@dataclass(frozen=True)
class BenchmarkRow:
    """One column of the paper's Table 1."""

    name: str
    mpa_error_pct: float
    mpa_over_5pct: float
    spi_error_pct: float
    spi_over_5pct: float
    cases: int


@dataclass
class Table1Result:
    """Full Table 1 reproduction output."""

    rows: List[BenchmarkRow]
    cases: List[PairCase]

    @property
    def average(self) -> BenchmarkRow:
        return BenchmarkRow(
            name="Avg.",
            mpa_error_pct=float(np.mean([r.mpa_error_pct for r in self.rows])),
            mpa_over_5pct=float(np.mean([r.mpa_over_5pct for r in self.rows])),
            spi_error_pct=float(np.mean([r.spi_error_pct for r in self.rows])),
            spi_over_5pct=float(np.mean([r.spi_over_5pct for r in self.rows])),
            cases=sum(r.cases for r in self.rows),
        )

    def render(self) -> str:
        rows = [
            (r.name, r.mpa_error_pct, r.mpa_over_5pct, r.spi_error_pct, r.spi_over_5pct)
            for r in self.rows + [self.average]
        ]
        return render_table(
            headers=["Benchmark", "MPA E(%)", "MPA >5%(%)", "SPI E(%)", "SPI >5%(%)"],
            rows=rows,
            title="Table 1: Performance Model Validation",
        )


def run_pairwise_validation(
    context: "ExperimentContext",
    cores: Tuple[int, int] = (0, 1),
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    workers: Optional[int] = None,
) -> Table1Result:
    """Run the pairwise co-run validation on cache-sharing cores.

    Args:
        context: Experiment context (machine, suite, scales).
        cores: Two cores sharing a last-level cache.
        pairs: Pairs to evaluate; defaults to all unordered pairs of
            the context's suite.
        workers: Fan the ground-truth simulations out over this many
            worker processes.  Each pair keeps the exact seed the
            serial path derives from its index, so the measurements
            are bit-identical to serial execution (the pairs collect
            no power, so no meter state is shared between runs).
    """
    model = context.performance_model()
    if pairs is None:
        pairs = pairs_with_replacement(context.benchmark_names)
    pairs = list(pairs)
    measurements = _ground_truth_runs(context, cores, pairs, workers)
    cases: List[PairCase] = []
    for index, (left, right) in enumerate(pairs):
        result = measurements[index]
        prediction = model.predict([left, right])
        instances = []
        for slot, name in enumerate((left, right)):
            measured = result.processes[slot]
            predicted = prediction[slot]
            instances.append(
                PairCase(
                    pair=(left, right),
                    name=name,
                    measured_mpa=measured.mpa,
                    predicted_mpa=predicted.mpa,
                    measured_spi=measured.spi,
                    predicted_spi=predicted.spi,
                    measured_occupancy=measured.occupancy_ways,
                    predicted_occupancy=predicted.effective_size,
                )
            )
        if left == right:
            # A self-pair is one test case for the benchmark: average
            # its two (statistically identical) instances.
            a, b = instances
            instances = [
                PairCase(
                    pair=(left, right),
                    name=left,
                    measured_mpa=(a.measured_mpa + b.measured_mpa) / 2,
                    predicted_mpa=(a.predicted_mpa + b.predicted_mpa) / 2,
                    measured_spi=(a.measured_spi + b.measured_spi) / 2,
                    predicted_spi=(a.predicted_spi + b.predicted_spi) / 2,
                    measured_occupancy=(a.measured_occupancy + b.measured_occupancy) / 2,
                    predicted_occupancy=(a.predicted_occupancy + b.predicted_occupancy) / 2,
                )
            ]
        cases.extend(instances)

    rows = []
    for name in context.benchmark_names:
        mine = [c for c in cases if c.name == name]
        if not mine:
            continue
        mpa_errors = np.array([c.mpa_error_pct for c in mine])
        spi_errors = np.array([c.spi_error_pct for c in mine])
        rows.append(
            BenchmarkRow(
                name=name,
                mpa_error_pct=float(mpa_errors.mean()),
                mpa_over_5pct=float((mpa_errors > 5.0).mean() * 100.0),
                spi_error_pct=float(spi_errors.mean()),
                spi_over_5pct=float((spi_errors > 5.0).mean() * 100.0),
                cases=len(mine),
            )
        )
    return Table1Result(rows=rows, cases=cases)


def _ground_truth_runs(
    context: "ExperimentContext",
    cores: Tuple[int, int],
    pairs: Sequence[Tuple[str, str]],
    workers: Optional[int],
):
    """Measured results for every pair, serial or fanned out.

    The parallel path reproduces the serial seeds exactly —
    ``context.seed + 7_771 * (index + 1)`` is what
    ``ExperimentContext.run_assignment(seed_offset=index)`` uses — so
    both paths return bit-identical measurements.
    """
    if workers is not None and workers > 1 and len(pairs) > 1:
        from repro.parallel import SimulationTask, simulate_assignments

        tasks = [
            SimulationTask(
                machine=context.machine,
                assignment={cores[0]: (left,), cores[1]: (right,)},
                sets=context.sets,
                seed=context.seed + 7_771 * (index + 1),
                scale=context.run_scale,
                collect_power=False,
            )
            for index, (left, right) in enumerate(pairs)
        ]
        return list(simulate_assignments(tasks, workers=workers))
    return [
        context.run_assignment(
            {cores[0]: [left], cores[1]: [right]},
            seed_offset=index,
            collect_power=False,
        )
        for index, (left, right) in enumerate(pairs)
    ]


@dataclass(frozen=True)
class SecondMachineResult:
    """The §6.2 text result: average SPI error on the second machine."""

    machine: str
    pairs: int
    avg_spi_error_pct: float
    avg_mpa_error_pct: float


def run_second_machine(context: "ExperimentContext") -> SecondMachineResult:
    """Validate on the 2-core laptop with the 10-benchmark suite."""
    table = run_pairwise_validation(context)
    spi_errors = [c.spi_error_pct for c in table.cases]
    mpa_errors = [c.mpa_error_pct for c in table.cases]
    return SecondMachineResult(
        machine=context.machine,
        pairs=len(set(c.pair for c in table.cases)),
        avg_spi_error_pct=float(np.mean(spi_errors)),
        avg_mpa_error_pct=float(np.mean(mpa_errors)),
    )
