"""Extension experiment: heterogeneous cores (paper contribution #4).

The paper claims its models are "general enough to accommodate
heterogeneous tasks and processors".  This experiment checks the
performance side of that claim: on a big.LITTLE-style machine whose
dies pair a fast core with a half-clock core, predict the cache
partition and SPIs of a pair running on a fast+slow core couple from
profiles taken at the nominal clock, and compare to the simulated
truth.  The clock enters the model purely through the Eq. 3 rescale
(:meth:`~repro.core.feature.FeatureVector.with_frequency_ratio`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.analysis.errors import relative_error_pct
from repro.core.performance_model import PerformanceModel
from repro.machine.simulator import MachineSimulation
from repro.machine.topology import heterogeneous_server
from repro.workloads.spec import BENCHMARKS

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class HeterogeneityCase:
    """One fast+slow co-run: prediction vs simulation."""

    pair: Tuple[str, str]  # (fast-core process, slow-core process)
    measured_occupancies: Tuple[float, float]
    predicted_occupancies: Tuple[float, float]
    measured_spis: Tuple[float, float]
    predicted_spis: Tuple[float, float]

    @property
    def max_spi_error_pct(self) -> float:
        return max(
            relative_error_pct(p, m)
            for p, m in zip(self.predicted_spis, self.measured_spis)
        )

    @property
    def max_occupancy_error_ways(self) -> float:
        return max(
            abs(p - m)
            for p, m in zip(self.predicted_occupancies, self.measured_occupancies)
        )


@dataclass(frozen=True)
class HeterogeneityResult:
    cases: Tuple[HeterogeneityCase, ...]
    naive_spi_error_pct: float  # ignoring the clock difference
    slow_scale: float


def run_heterogeneity_extension(
    context: "ExperimentContext",
    pairs: Tuple[Tuple[str, str], ...] = (("mcf", "art"), ("twolf", "mcf")),
    slow_scale: float = 0.5,
) -> HeterogeneityResult:
    """Fast+slow co-runs: clock-aware vs clock-oblivious prediction."""
    topology = heterogeneous_server(sets=context.sets, slow_scale=slow_scale)
    ways = topology.domains[0].geometry.ways
    model = PerformanceModel(ways=ways)
    # Profiles were taken on the homogeneous machine at nominal clock.
    for profile in context.profiles().values():
        model.register(profile.feature)

    cases: List[HeterogeneityCase] = []
    naive_errors: List[float] = []
    for index, (fast_name, slow_name) in enumerate(pairs):
        sim = MachineSimulation(
            topology,
            # Cores 0 (fast) and 1 (slow) share die 0's cache.
            {0: [BENCHMARKS[fast_name]], 1: [BENCHMARKS[slow_name]]},
            scale=context.run_scale,
            seed=context.seed + 70 + index,
        )
        result = sim.run_accesses()
        aware = model.predict(
            [fast_name, slow_name], frequency_ratios=[1.0, slow_scale]
        )
        naive = model.predict([fast_name, slow_name])
        cases.append(
            HeterogeneityCase(
                pair=(fast_name, slow_name),
                measured_occupancies=(
                    result.processes[0].occupancy_ways,
                    result.processes[1].occupancy_ways,
                ),
                predicted_occupancies=(
                    aware[0].effective_size,
                    aware[1].effective_size,
                ),
                measured_spis=(result.processes[0].spi, result.processes[1].spi),
                predicted_spis=(aware[0].spi, aware[1].spi),
            )
        )
        for slot in range(2):
            naive_errors.append(
                relative_error_pct(naive[slot].spi, result.processes[slot].spi)
            )
    return HeterogeneityResult(
        cases=tuple(cases),
        naive_spi_error_pct=sum(naive_errors) / len(naive_errors),
        slow_scale=slow_scale,
    )
