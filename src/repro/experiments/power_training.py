"""Power-model training, following paper Section 4.1.

Training data comes from two sources, exactly as in the paper:

1. **Uniform SPEC runs** — N instances of one benchmark, one per core;
   every HPC window yields one row per core with target power equal to
   the measured processor power divided by N.
2. **The 6-phase micro-benchmark** — per-component rate sweeps fed
   through the hidden reference and the meter.

The same rows train both the MVLR model and the neural-network
comparator, so their accuracy figures are directly comparable (the
paper's 96.2 % vs 96.8 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.power_model import PowerTrainingSet
from repro.errors import SimulationError
from repro.machine.simulator import MachineSimulation
from repro.workloads.microbenchmark import Microbenchmark

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


def add_uniform_spec_runs(context: "ExperimentContext", training: PowerTrainingSet) -> None:
    """Run N instances of each suite benchmark and harvest windows."""
    topology = context.topology
    cores = list(range(topology.num_cores))
    for index, benchmark in enumerate(context.benchmarks()):
        sim = MachineSimulation(
            topology,
            {core: [benchmark] for core in cores},
            scale=context.run_scale,
            seed=context.seed + 31 * (index + 1),
            power_env=context.power_env,
        )
        result = sim.run_duration()
        if result.power is None or not result.hpc_by_core:
            raise SimulationError("training run produced no power/HPC data")
        windows = min(
            len(result.power), *(len(result.hpc_by_core[c]) for c in cores)
        )
        for w in range(windows):
            per_core = [result.hpc_by_core[core][w].rates for core in cores]
            training.add_uniform_run(per_core, result.power.measured_watts[w])


def add_microbenchmark(context: "ExperimentContext", training: PowerTrainingSet) -> None:
    """Feed the 6-phase schedule through the reference + meter chain."""
    topology = context.topology
    micro = Microbenchmark(frequency_hz=topology.frequency_hz)
    n = topology.num_cores
    reference = context.power_env.reference
    meter = context.power_env.meter
    window_s = context.run_scale.hpc_period_s
    for window in micro.all_windows():
        per_core = [window.rates] * n
        true_w = reference.processor_power(per_core)
        measured_w = meter.measure_window(true_w, window_s)
        training.add_uniform_run(per_core, measured_w)


def build_training_set(context: "ExperimentContext") -> PowerTrainingSet:
    """The paper's full training corpus for one machine."""
    training = PowerTrainingSet()
    add_uniform_spec_runs(context, training)
    add_microbenchmark(context, training)
    return training


@dataclass(frozen=True)
class ModelChoiceResult:
    """Section 4.1's MVLR-vs-NN comparison."""

    mvlr_accuracy_pct: float
    nn_accuracy_pct: float
    mvlr_r_squared: float
    training_rows: int
    coefficients: dict

    @property
    def nn_advantage_pct(self) -> float:
        return self.nn_accuracy_pct - self.mvlr_accuracy_pct


def run_model_choice(context: "ExperimentContext") -> ModelChoiceResult:
    """Train both model families and report the paper's metrics."""
    training = context.training_set()
    mvlr = context.power_model()
    nn = context.neural_model()
    return ModelChoiceResult(
        mvlr_accuracy_pct=mvlr.accuracy(training) * 100.0,
        nn_accuracy_pct=nn.accuracy(training) * 100.0,
        mvlr_r_squared=mvlr.r_squared,
        training_rows=len(training),
        coefficients=dict(mvlr.coefficients, P_idle=mvlr.p_idle),
    )
