"""Power-model validation scenarios (paper Tables 2 and 3).

For each random assignment, the machine runs it and the model
estimates every HPC window's processor power from the *measured* event
rates.  Two error figures are recorded per assignment, as in the
paper: per-sample error (window by window) and the error of the
run-average power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.analysis.errors import ErrorSummary, relative_error_pct
from repro.analysis.tables import render_table
from repro.errors import SimulationError
from repro.machine.simulator import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext

Assignment = Mapping[int, Tuple[str, ...]]


@dataclass(frozen=True)
class AssignmentValidation:
    """Model-vs-meter comparison for one assignment run."""

    assignment: Dict[int, Tuple[str, ...]]
    sample_errors_pct: Tuple[float, ...]
    measured_avg_watts: float
    estimated_avg_watts: float

    @property
    def avg_error_pct(self) -> float:
        return relative_error_pct(self.estimated_avg_watts, self.measured_avg_watts)


@dataclass(frozen=True)
class ScenarioResult:
    """One row of Table 2 / Table 3."""

    label: str
    assignments: int
    sample_error: ErrorSummary
    avg_error: ErrorSummary
    details: Tuple[AssignmentValidation, ...]


def estimate_power_series(
    context: "ExperimentContext", result: SimulationResult
) -> Tuple[np.ndarray, np.ndarray]:
    """(estimated, measured) per-window processor power of one run.

    Estimates apply Eq. 9 per core to the measured HPC rates and sum
    over all cores (idle cores have zero rates and contribute the
    fitted per-core idle power).
    """
    if result.power is None or not result.hpc_by_core:
        raise SimulationError("run has no power/HPC trace to validate against")
    model = context.power_model()
    cores = sorted(result.hpc_by_core)
    windows = min(len(result.power), *(len(result.hpc_by_core[c]) for c in cores))
    estimated = np.empty(windows)
    for w in range(windows):
        per_core = [result.hpc_by_core[core][w].rates for core in cores]
        estimated[w] = model.processor_power(per_core)
    measured = np.asarray(result.power.measured_watts[:windows])
    return estimated, measured


def validate_assignment(
    context: "ExperimentContext", assignment: Assignment, seed_offset: int
) -> AssignmentValidation:
    """Run one assignment and compare estimates to meter readings."""
    result = context.run_assignment(assignment, seed_offset=seed_offset)
    estimated, measured = estimate_power_series(context, result)
    sample_errors = tuple(
        relative_error_pct(float(e), float(m)) for e, m in zip(estimated, measured)
    )
    return AssignmentValidation(
        assignment={c: tuple(n) for c, n in assignment.items()},
        sample_errors_pct=sample_errors,
        measured_avg_watts=float(measured.mean()),
        estimated_avg_watts=float(estimated.mean()),
    )


def validate_scenario(
    context: "ExperimentContext",
    label: str,
    assignments: Sequence[Assignment],
    seed_base: int = 0,
) -> ScenarioResult:
    """Validate the power model over one table row's assignments."""
    details: List[AssignmentValidation] = []
    for index, assignment in enumerate(assignments):
        details.append(
            validate_assignment(context, assignment, seed_offset=seed_base + index)
        )
    all_samples = [e for d in details for e in d.sample_errors_pct]
    avg_errors = [d.avg_error_pct for d in details]
    return ScenarioResult(
        label=label,
        assignments=len(details),
        sample_error=ErrorSummary.from_errors(all_samples),
        avg_error=ErrorSummary.from_errors(avg_errors),
        details=tuple(details),
    )


def render_power_table(title: str, scenarios: Sequence[ScenarioResult]) -> str:
    """Render rows in the layout of the paper's Tables 2/3."""
    rows = []
    for scenario in scenarios:
        rows.append(
            (
                scenario.label,
                scenario.assignments,
                f"{scenario.sample_error.mean:.2f} / {scenario.sample_error.maximum:.2f}",
                f"{scenario.avg_error.mean:.2f} / {scenario.avg_error.maximum:.2f}",
            )
        )
    return render_table(
        headers=[
            "Scenario",
            "Assignments",
            "Avg/max err samples (%)",
            "Avg/max err avg power (%)",
        ],
        rows=rows,
        title=title,
    )
