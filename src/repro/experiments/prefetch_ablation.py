"""The §3.1 prefetching ablation.

The paper justifies its no-prefetching assumption by measuring SPEC
CPU2000 under hardware prefetching: average speed-up only ~3.25 %,
with only *equake* benefiting significantly (its streaming access
pattern is stride-predictable).  This driver runs each benchmark solo
with and without a prefetcher attached to the shared cache and reports
the per-benchmark speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.machine.simulator import MachineSimulation
from repro.workloads.spec import BENCHMARKS, PAPER_TEN

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class PrefetchCase:
    """Speed-up of one benchmark under prefetching."""

    name: str
    spi_off: float
    spi_on: float
    prefetch_accuracy: float

    @property
    def improvement_pct(self) -> float:
        """Positive means prefetching helped."""
        return (self.spi_off - self.spi_on) / self.spi_off * 100.0


@dataclass(frozen=True)
class PrefetchResult:
    cases: Tuple[PrefetchCase, ...]
    prefetcher: str

    @property
    def average_improvement_pct(self) -> float:
        return float(np.mean([c.improvement_pct for c in self.cases]))

    @property
    def best(self) -> PrefetchCase:
        return max(self.cases, key=lambda c: c.improvement_pct)

    def render(self) -> str:
        rows = [
            (c.name, c.improvement_pct, c.prefetch_accuracy * 100.0)
            for c in self.cases
        ]
        rows.append(("Avg.", self.average_improvement_pct, float("nan")))
        return render_table(
            headers=["Benchmark", "Speed-up (%)", "Prefetch accuracy (%)"],
            rows=rows,
            title=f"Prefetching ablation ({self.prefetcher})",
        )


def run_prefetch_ablation(
    context: "ExperimentContext",
    names: Optional[Sequence[str]] = None,
    prefetcher: str = "stride",
) -> PrefetchResult:
    """Solo runs with the prefetcher on vs off, per benchmark."""
    if names is None:
        names = PAPER_TEN
    cases: List[PrefetchCase] = []
    for index, name in enumerate(names):
        benchmark = BENCHMARKS[name]
        base = MachineSimulation(
            context.topology,
            {0: [benchmark]},
            scale=context.run_scale,
            seed=context.seed + 13 * (index + 1),
        ).run_accesses()
        sim_on = MachineSimulation(
            context.topology,
            {0: [benchmark]},
            scale=context.run_scale,
            seed=context.seed + 13 * (index + 1),
            prefetch=prefetcher,
        )
        with_pf = sim_on.run_accesses()
        accuracy = sim_on.prefetchers[0].stats.accuracy if sim_on.prefetchers else 0.0
        cases.append(
            PrefetchCase(
                name=name,
                spi_off=base.processes[0].spi,
                spi_on=with_pf.processes[0].spi,
                prefetch_accuracy=accuracy,
            )
        )
    return PrefetchResult(cases=tuple(cases), prefetcher=prefetcher)
