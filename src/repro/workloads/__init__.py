"""Synthetic workload substrate.

- :mod:`~repro.workloads.spec` — ten SPEC-CPU2000-like benchmark
  models (:data:`~repro.workloads.spec.BENCHMARKS`).
- :mod:`~repro.workloads.generator` — trace synthesis from
  reuse-distance profiles.
- :mod:`~repro.workloads.stressmark` — the configurable-contention
  profiling benchmark of Section 3.4.
- :mod:`~repro.workloads.microbenchmark` — the 6-phase power-training
  schedule of Section 4.1.
- :mod:`~repro.workloads.phases` — program-phase detection.
"""

from repro.workloads.generator import (
    AccessGenerator,
    StackDistanceTraceGenerator,
    StressmarkGenerator,
    build_generator,
)
from repro.workloads.microbenchmark import Microbenchmark, MicrobenchmarkWindow
from repro.workloads.mix import InstructionMix
from repro.workloads.phases import Phase, detect_phases, longest_phase
from repro.workloads.profiles import bump, combine, geometric, streaming, validate_profile
from repro.workloads.spec import (
    BENCHMARKS,
    PAPER_EIGHT,
    PAPER_TEN,
    SyntheticBenchmark,
    get_benchmark,
)
from repro.workloads.stressmark import StressmarkSpec, make_stressmark

__all__ = [
    "InstructionMix",
    "SyntheticBenchmark",
    "BENCHMARKS",
    "PAPER_EIGHT",
    "PAPER_TEN",
    "get_benchmark",
    "AccessGenerator",
    "StackDistanceTraceGenerator",
    "StressmarkGenerator",
    "build_generator",
    "StressmarkSpec",
    "make_stressmark",
    "Microbenchmark",
    "MicrobenchmarkWindow",
    "Phase",
    "detect_phases",
    "longest_phase",
    "bump",
    "combine",
    "geometric",
    "streaming",
    "validate_profile",
]
