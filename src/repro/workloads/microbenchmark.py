"""The 6-phase power-model-training micro-benchmark (paper Section 4.1).

The paper trains its power model partly with a purpose-built
micro-benchmark: phase 0 records idle power, then each of five phases
exercises one architectural block (L1, L2, L2-miss path, branch unit,
FP unit) at eight descending access frequencies.  We reproduce it as a
*rate schedule*: a sequence of HPC-rate vectors (one per sampling
window) that the training pipeline feeds through the hidden reference
model and the meter, spanning each component's operating range the way
the original micro-benchmark spans it on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.errors import ConfigurationError
from repro.events import Event, RATE_EVENTS


#: Peak achievable event rates as a fraction of the core clock,
#: matching what the synthetic SPEC suite can actually reach.
_PEAK_FRACTION = {
    Event.L1_REFS: 0.60,
    Event.L2_REFS: 0.15,
    Event.L2_MISSES: 0.05,
    Event.BRANCHES: 0.30,
    Event.FP_OPS: 0.40,
}

#: Background activity (fraction of the phase's stressed component
#: level) on the non-stressed components: a real micro-benchmark still
#: executes instructions while stressing one block.
_BACKGROUND_FRACTION = 0.05


@dataclass(frozen=True)
class MicrobenchmarkWindow:
    """One sampling window of the micro-benchmark schedule."""

    phase: int
    level: int
    rates: Dict[Event, float]


class Microbenchmark:
    """Rate schedule of the 6-phase training micro-benchmark.

    Args:
        frequency_hz: Clock of the machine being trained for; event
            rates scale with it.
        levels: Access-frequency steps per component phase (paper: 8,
            descending).
        windows_per_level: HPC windows spent at each level (the paper
            holds each level for 10 s, i.e. many windows; a handful is
            enough for regression).
    """

    def __init__(
        self,
        frequency_hz: float,
        levels: int = 8,
        windows_per_level: int = 4,
    ):
        if frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        if levels < 2:
            raise ConfigurationError("need at least two levels per phase")
        if windows_per_level < 1:
            raise ConfigurationError("windows_per_level must be positive")
        self.frequency_hz = frequency_hz
        self.levels = levels
        self.windows_per_level = windows_per_level

    def windows(self) -> Iterator[MicrobenchmarkWindow]:
        """Yield the schedule: idle phase, then one phase per component."""
        # Phase 0: idle.
        idle = {event: 0.0 for event in RATE_EVENTS}
        for _ in range(self.windows_per_level):
            yield MicrobenchmarkWindow(phase=0, level=0, rates=dict(idle))
        for phase, stressed in enumerate(RATE_EVENTS, start=1):
            peak = _PEAK_FRACTION[stressed] * self.frequency_hz
            for level in range(self.levels):
                # Highest frequency first, reduced every level (paper).
                fraction = (self.levels - level) / self.levels
                stressed_rate = peak * fraction
                rates = {
                    event: _BACKGROUND_FRACTION * _PEAK_FRACTION[event]
                    * self.frequency_hz * fraction
                    for event in RATE_EVENTS
                }
                rates[stressed] = stressed_rate
                if stressed is not Event.L1_REFS:
                    # Any activity implies L1 traffic; keep the vector
                    # physically consistent (L2 refs filter through L1).
                    rates[Event.L1_REFS] = max(rates[Event.L1_REFS], stressed_rate)
                if stressed is Event.L2_MISSES:
                    rates[Event.L2_REFS] = max(rates[Event.L2_REFS], stressed_rate)
                for _ in range(self.windows_per_level):
                    yield MicrobenchmarkWindow(phase=phase, level=level, rates=dict(rates))

    def all_windows(self) -> List[MicrobenchmarkWindow]:
        """The whole schedule as a list."""
        return list(self.windows())
