"""The stressmark: a benchmark with configurable cache contention.

Section 3.4 of the paper profiles an unknown process by co-running it
with a *stressmark* whose effective cache size is tunable.  Our
stressmark sweeps ``ways`` lines per set cyclically (reuse distance
exactly ``ways - 1``) at a very high L2 access rate, so under LRU it
reliably holds ``ways`` ways of every set and squeezes the profiled
process into the remaining ``A - ways``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.histogram import ReuseDistanceHistogram
from repro.errors import ConfigurationError
from repro.workloads.mix import InstructionMix
from repro.workloads.spec import SyntheticBenchmark


@dataclass(frozen=True)
class StressmarkSpec(SyntheticBenchmark):
    """A stressmark occupying a configurable number of ways."""

    ways: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ways < 1:
            raise ConfigurationError("stressmark ways must be >= 1")


def make_stressmark(
    ways: int,
    api: float = 0.12,
    base_cpi: float = 0.8,
    penalty_cycles: float = 8.0,
) -> StressmarkSpec:
    """Build a stressmark that occupies ``ways`` ways per set.

    The default access-per-instruction rate is much higher than any of
    the synthetic SPEC models so the stressmark wins LRU recency races
    and its occupancy stays pinned at ``ways``, which is the assumption
    the paper's profiling procedure relies on.

    The default miss penalty is deliberately tiny: a real stressmark is
    written with independent, non-blocking loads whose misses overlap,
    so missing barely slows its issue rate.  (A stressmark that stalled
    on every miss could never win back its ways against an aggressive
    co-runner once evicted.)

    Args:
        ways: Target effective cache size in ways per set.
        api: L2 accesses per instruction of the stressmark.
        base_cpi: Hit-path cycles per instruction.
        penalty_cycles: Stall cycles per L2 miss.
    """
    if ways < 1:
        raise ConfigurationError("ways must be >= 1")
    profile = tuple(
        (d, p)
        for d, p in enumerate(
            ReuseDistanceHistogram.point_mass(ways - 1).probs
        )
        if p > 0
    )
    mix = InstructionMix(l1rpi=max(0.2, api), l2rpi=api, brpi=0.05, fppi=0.0)
    return StressmarkSpec(
        name=f"stressmark-{ways}w",
        mix=mix,
        rd_profile=profile,
        base_cpi=base_cpi,
        penalty_cycles=penalty_cycles,
        ways=ways,
    )
