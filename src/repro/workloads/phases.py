"""Program-phase detection on HPC time series.

The paper records phase information per benchmark and notes all but
two programs have a single significant phase; for *art* and *mcf* the
longest phase was used (following Tam et al.).  These helpers perform
that selection on a sampled metric series: segment where the rolling
mean shifts, then pick the longest stable segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Phase:
    """A stable segment of a sampled metric series."""

    start: int
    end: int  # exclusive
    mean: float

    @property
    def length(self) -> int:
        return self.end - self.start


def detect_phases(
    values: Sequence[float],
    window: int = 8,
    threshold: float = 0.25,
) -> List[Phase]:
    """Segment a series into phases by mean shifts.

    A new phase starts whenever the rolling mean of the last ``window``
    samples departs from the current phase's running mean by more than
    ``threshold`` (relative to the series' overall dynamic range).

    Args:
        values: The sampled metric (e.g. MPA or L2RPS per window).
        window: Rolling-mean width in samples.
        threshold: Relative mean-shift that opens a new phase.

    Returns:
        Phases covering the whole series in order.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("values must be a non-empty 1-D sequence")
    if window < 1:
        raise ConfigurationError("window must be positive")
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    scale = float(arr.max() - arr.min())
    if scale <= 0:
        return [Phase(start=0, end=arr.size, mean=float(arr.mean()))]

    phases: List[Phase] = []
    start = 0
    phase_sum = arr[0]
    phase_count = 1
    for i in range(1, arr.size):
        rolling = arr[max(0, i - window + 1): i + 1].mean()
        phase_mean = phase_sum / phase_count
        if abs(rolling - phase_mean) > threshold * scale and i - start >= window:
            phases.append(Phase(start=start, end=i, mean=phase_mean))
            start = i
            phase_sum = arr[i]
            phase_count = 1
        else:
            phase_sum += arr[i]
            phase_count += 1
    phases.append(Phase(start=start, end=arr.size, mean=phase_sum / phase_count))
    return phases


def longest_phase(values: Sequence[float], window: int = 8, threshold: float = 0.25) -> Phase:
    """The longest stable phase of a series (paper: used for art/mcf)."""
    phases = detect_phases(values, window=window, threshold=threshold)
    return max(phases, key=lambda p: p.length)
