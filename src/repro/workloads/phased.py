"""Multi-phase workloads (relaxing the paper's single-phase assumption).

Section 3.1 assumes processes are single-phased and says that
"non-repeating phases should be modeled separately"; in the
experiments the longest phases of *art* and *mcf* were used (after Tam
et al.).  This module provides workloads whose memory behaviour
switches between phases so that assumption can be stress-tested:

- :class:`PhasedBenchmark` cycles through per-phase reuse-distance
  profiles (instruction mix and SPI constants stay fixed — phases
  differ in *memory access pattern*, which is what the model cares
  about).
- :func:`phase_benchmark` extracts a single phase as an ordinary
  :class:`~repro.workloads.spec.SyntheticBenchmark`, which is what
  "profile the longest phase separately" means operationally.

The phases-extension experiment compares naive whole-run profiling
against longest-phase profiling on these workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.seeding import STREAM_PHASE, stream_seed
from repro.workloads.generator import AccessGenerator, StackDistanceTraceGenerator
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import Profile, validate_profile
from repro.workloads.spec import SyntheticBenchmark


@dataclass(frozen=True)
class PhaseSegment:
    """One phase: a reuse-distance profile held for a number of accesses."""

    profile: Profile
    accesses: int

    def __post_init__(self) -> None:
        validate_profile(self.profile)
        if self.accesses < 1:
            raise ConfigurationError("phase length must be >= 1 access")


def _mixture_profile(segments: Sequence[PhaseSegment]) -> Profile:
    """Access-weighted mixture of the phase profiles.

    This is what a whole-run (phase-oblivious) measurement converges
    to, and serves as the benchmark's nominal ``rd_profile``.
    """
    total = sum(s.accesses for s in segments)
    merged: Dict[float, float] = {}
    for segment in segments:
        weight = segment.accesses / total
        for distance, probability in segment.profile:
            merged[distance] = merged.get(distance, 0.0) + weight * probability
    items = sorted(merged.items(), key=lambda kv: kv[0])
    return tuple(items)


@dataclass(frozen=True)
class PhasedBenchmark(SyntheticBenchmark):
    """A benchmark whose reuse-distance behaviour cycles through phases.

    The inherited ``rd_profile`` is the access-weighted phase mixture
    (the distribution a phase-oblivious profiler sees); the actual
    generated trace switches distributions at phase boundaries.
    """

    phases: Tuple[PhaseSegment, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.phases) < 2:
            raise ConfigurationError("a phased benchmark needs at least two phases")

    @property
    def longest_phase_index(self) -> int:
        """Index of the phase with the most accesses per cycle."""
        lengths = [segment.accesses for segment in self.phases]
        return lengths.index(max(lengths))

    @property
    def cycle_accesses(self) -> int:
        return sum(segment.accesses for segment in self.phases)


def make_phased_benchmark(
    name: str,
    mix: InstructionMix,
    phases: Sequence[PhaseSegment],
    base_cpi: float,
    penalty_cycles: float,
) -> PhasedBenchmark:
    """Build a phased benchmark with the mixture as nominal profile."""
    phases = tuple(phases)
    if len(phases) < 2:
        raise ConfigurationError("need at least two phases")
    return PhasedBenchmark(
        name=name,
        mix=mix,
        rd_profile=_mixture_profile(phases),
        base_cpi=base_cpi,
        penalty_cycles=penalty_cycles,
        phases=phases,
    )


def phase_benchmark(benchmark: PhasedBenchmark, index: int) -> SyntheticBenchmark:
    """Extract phase ``index`` as a stand-alone single-phase benchmark.

    Profiling this object is the operational meaning of the paper's
    "model non-repeating phases separately" / "the longest phase was
    used".
    """
    if not 0 <= index < len(benchmark.phases):
        raise ConfigurationError(
            f"phase index {index} out of range 0..{len(benchmark.phases) - 1}"
        )
    return SyntheticBenchmark(
        name=f"{benchmark.name}#phase{index}",
        mix=benchmark.mix,
        rd_profile=benchmark.phases[index].profile,
        base_cpi=benchmark.base_cpi,
        penalty_cycles=benchmark.penalty_cycles,
        streaming_sequential=benchmark.streaming_sequential,
    )


class PhasedTraceGenerator(AccessGenerator):
    """Cycles through per-phase stack-distance generators.

    The per-set reuse history (the address space) is shared across
    phases: a phase change alters the *pattern*, not the data, so
    early accesses of a new phase may still hit lines the previous
    phase touched — matching how real phase transitions behave.
    """

    def __init__(self, benchmark: PhasedBenchmark, sets: int, seed: int, tag_offset: int = 0):
        self._segments = benchmark.phases
        self._generators: List[StackDistanceTraceGenerator] = []
        shared_stacks: List[List[int]] = [[] for _ in range(sets)]
        shared_fresh = [0] * sets
        for offset, segment in enumerate(self._segments):
            generator = StackDistanceTraceGenerator(
                segment.profile,
                sets,
                seed=stream_seed(seed, STREAM_PHASE, offset),
                tag_offset=tag_offset,
                streaming_sequential=benchmark.streaming_sequential,
            )
            # Share address-space state across phases.
            generator.adopt_state(shared_stacks, shared_fresh)
            self._generators.append(generator)
        self._phase = 0
        self._left = self._segments[0].accesses
        #: Number of completed phase transitions (for tests/metrics).
        self.transitions = 0

    @property
    def current_phase(self) -> int:
        return self._phase

    def next_line(self) -> int:
        if self._left <= 0:
            self._phase = (self._phase + 1) % len(self._segments)
            self._left = self._segments[self._phase].accesses
            self.transitions += 1
        self._left -= 1
        return self._generators[self._phase].next_line()
