"""Helpers for constructing reuse-distance profiles.

Synthetic benchmarks are defined by a per-set reuse-distance
distribution.  Real programs exhibit a few canonical shapes — tight
loops (mass at small distances), blocked algorithms (a bump at the
block size), pointer chasing (a heavy tail), and streaming (mass at
infinity).  These builders compose those shapes into normalised
``(distance, weight)`` profiles consumed by
:class:`repro.core.histogram.ReuseDistanceHistogram` and the trace
generator.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError

Profile = Tuple[Tuple[float, float], ...]  # ((distance, weight), ...)


def geometric(mean: float, max_distance: int, weight: float = 1.0) -> Dict[float, float]:
    """Geometric decay with the given mean distance (tight-loop reuse)."""
    if mean < 0:
        raise ConfigurationError("mean must be non-negative")
    if max_distance < 0:
        raise ConfigurationError("max_distance must be non-negative")
    p = 1.0 / (1.0 + mean)
    raw = {d: p * (1.0 - p) ** d for d in range(max_distance + 1)}
    total = sum(raw.values())
    return {d: weight * w / total for d, w in raw.items()}


def bump(center: float, width: float, max_distance: int, weight: float = 1.0) -> Dict[float, float]:
    """Gaussian bump around ``center`` (blocked/working-set reuse)."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    raw = {
        d: math.exp(-0.5 * ((d - center) / width) ** 2)
        for d in range(max_distance + 1)
    }
    total = sum(raw.values())
    if total <= 0:
        raise ConfigurationError("bump has no mass within range")
    return {d: weight * w / total for d, w in raw.items()}


def streaming(weight: float = 1.0) -> Dict[float, float]:
    """Pure streaming mass: accesses that never hit (infinite distance)."""
    if weight < 0:
        raise ConfigurationError("weight must be non-negative")
    return {math.inf: weight}


def combine(*components: Dict[float, float]) -> Profile:
    """Merge weighted components into one normalised profile.

    The relative weights of the inputs are preserved; the result sums
    to 1 and is sorted by distance (infinity last).
    """
    merged: Dict[float, float] = {}
    for component in components:
        for distance, weight in component.items():
            if weight < 0:
                raise ConfigurationError("weights must be non-negative")
            merged[distance] = merged.get(distance, 0.0) + weight
    total = sum(merged.values())
    if total <= 0:
        raise ConfigurationError("profile has no mass")
    items = sorted(merged.items(), key=lambda kv: kv[0])
    return tuple((d, w / total) for d, w in items if w > 0)


def validate_profile(profile: Sequence[Tuple[float, float]]) -> None:
    """Check a profile is normalised with legal distances.

    Raises:
        ConfigurationError: On negative weights, negative or
            non-integral finite distances, or mass not summing to 1.
    """
    total = 0.0
    for distance, weight in profile:
        if weight < 0:
            raise ConfigurationError("profile weights must be non-negative")
        if distance != math.inf:
            if distance < 0 or distance != int(distance):
                raise ConfigurationError(
                    f"finite distances must be non-negative integers, got {distance!r}"
                )
        total += weight
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
        raise ConfigurationError(f"profile mass must sum to 1, got {total!r}")


def profile_mean(profile: Sequence[Tuple[float, float]]) -> float:
    """Mean finite distance (conditioned on finite), inf if none."""
    finite = [(d, w) for d, w in profile if d != math.inf]
    mass = sum(w for _, w in finite)
    if mass <= 0:
        return math.inf
    return sum(d * w for d, w in finite) / mass
