"""Address-trace generation from reuse-distance profiles.

:class:`StackDistanceTraceGenerator` produces an L2 line-address stream
whose *per-set* reuse-distance distribution converges to a target
profile.  The classic construction is used: one LRU stack of the
process's own lines per set; each access samples a distance ``d`` from
the profile and touches the line at stack depth ``d`` (distance
``math.inf`` touches a brand-new line).  Feeding the stream through
:class:`repro.cache.reuse.SetReuseProfiler` recovers the profile, which
the tests verify.

Each process receives a disjoint tag range via ``tag_offset`` so that
several generators can share one cache without aliasing.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.spec import SyntheticBenchmark

#: Tag-space stride between processes; generous enough that per-set
#: fresh-tag counters never collide across owners.
TAG_SPACE = 1 << 28

#: Offset separating sequential-streaming tags from per-set fresh tags
#: within one process's tag space.
_STREAM_TAG_BASE = 1 << 24


class AccessGenerator(ABC):
    """Produces an endless stream of L2 line addresses."""

    @abstractmethod
    def next_line(self) -> int:
        """Return the next line address of the stream."""

    def take(self, n: int) -> List[int]:
        """Materialise the next ``n`` addresses (testing convenience)."""
        return [self.next_line() for _ in range(n)]


class StackDistanceTraceGenerator(AccessGenerator):
    """Synthesise a trace matching a per-set reuse-distance profile.

    Args:
        profile: ``(distance, probability)`` pairs; ``math.inf`` marks
            streaming mass.
        sets: Number of cache sets of the target cache.
        seed: RNG seed (the stream is fully deterministic given it).
        tag_offset: Start of this process's private tag range.
        streaming_sequential: Walk sequential addresses for streaming
            accesses (stride pattern) instead of fresh per-set tags.
        max_stack: Per-set history depth; older lines are forgotten.
            Defaults to the profile's maximum finite distance plus
            slack.
        batch: Number of (set, distance) samples drawn per RNG batch.
    """

    def __init__(
        self,
        profile: Sequence[Tuple[float, float]],
        sets: int,
        seed: int,
        tag_offset: int = 0,
        streaming_sequential: bool = False,
        max_stack: Optional[int] = None,
        batch: int = 8192,
    ):
        if sets < 1 or sets & (sets - 1):
            raise ConfigurationError("sets must be a positive power of two")
        if batch < 1:
            raise ConfigurationError("batch must be positive")
        if not profile:
            raise ConfigurationError("profile must not be empty")
        self._sets = sets
        self._set_shift = sets.bit_length() - 1
        self._tag_offset = tag_offset
        self._streaming_sequential = streaming_sequential
        distances = []
        weights = []
        for distance, weight in profile:
            if weight < 0:
                raise ConfigurationError("profile weights must be non-negative")
            # Encode infinity as -1 for integer sampling.
            distances.append(-1 if distance == math.inf else int(distance))
            weights.append(weight)
        total = float(sum(weights))
        if total <= 0:
            raise ConfigurationError("profile has no mass")
        self._distances = np.asarray(distances, dtype=np.int64)
        self._cdf = np.cumsum(np.asarray(weights, dtype=float) / total)
        finite = [d for d in distances if d >= 0]
        depth = (max(finite) if finite else 0) + 16
        self._max_stack = max_stack if max_stack is not None else depth
        if self._max_stack < 1:
            raise ConfigurationError("max_stack must be positive")
        self._rng = np.random.default_rng(seed)
        self._batch = batch
        self._batch_sets: np.ndarray = np.empty(0, dtype=np.int64)
        self._batch_dists: np.ndarray = np.empty(0, dtype=np.int64)
        self._cursor = 0
        self._stacks: List[List[int]] = [[] for _ in range(sets)]
        self._fresh_counter = [0] * sets
        self._stream_counter = 0

    def _refill(self) -> None:
        self._batch_sets = self._rng.integers(0, self._sets, self._batch)
        picks = np.searchsorted(self._cdf, self._rng.random(self._batch), side="right")
        picks = np.minimum(picks, len(self._distances) - 1)
        self._batch_dists = self._distances[picks]
        self._cursor = 0

    def _fresh_line(self, set_idx: int) -> int:
        """A never-before-seen line mapping to ``set_idx``."""
        tag = self._tag_offset + self._fresh_counter[set_idx]
        self._fresh_counter[set_idx] += 1
        return (tag << self._set_shift) | set_idx

    def _stream_line(self) -> Tuple[int, int]:
        """Next sequential streaming line; returns (line, set_idx)."""
        raw = ((self._tag_offset + _STREAM_TAG_BASE) << self._set_shift) + self._stream_counter
        self._stream_counter += 1
        return raw, raw & (self._sets - 1)

    def adopt_state(self, stacks: List[List[int]], fresh_counter: List[int]) -> None:
        """Share per-set reuse state with another generator.

        Used by phased workloads: successive phases access the same
        address space with different patterns, so their generators
        must see one common per-set history.
        """
        if len(stacks) != self._sets or len(fresh_counter) != self._sets:
            raise ConfigurationError("state shape does not match set count")
        self._stacks = stacks
        self._fresh_counter = fresh_counter

    def next_line(self) -> int:
        if self._cursor >= self._batch_sets.size:
            self._refill()
        set_idx = int(self._batch_sets[self._cursor])
        distance = int(self._batch_dists[self._cursor])
        self._cursor += 1

        if distance < 0:
            # Streaming access: a line that can never have been seen.
            if self._streaming_sequential:
                line, set_idx = self._stream_line()
            else:
                line = self._fresh_line(set_idx)
            stack = self._stacks[set_idx]
            stack.insert(0, line >> self._set_shift)
            if len(stack) > self._max_stack:
                stack.pop()
            return line

        stack = self._stacks[set_idx]
        if distance < len(stack):
            tag = stack.pop(distance)
            stack.insert(0, tag)
            return (tag << self._set_shift) | set_idx
        # Not enough history yet (cold start): touch a new line.
        line = self._fresh_line(set_idx)
        stack.insert(0, line >> self._set_shift)
        if len(stack) > self._max_stack:
            stack.pop()
        return line


class StressmarkGenerator(AccessGenerator):
    """Cyclic sweep over ``ways`` lines in every set.

    The access order is tag-major across sets
    (``t0`` in every set, then ``t1`` in every set, ...), so within any
    single set consecutive accesses to a tag are separated by exactly
    ``ways - 1`` distinct lines: the reuse-distance histogram is a
    point mass and the stressmark steadily occupies ``ways`` ways, as
    Section 3.4 of the paper requires.
    """

    def __init__(self, ways: int, sets: int, tag_offset: int = 0):
        if ways < 1:
            raise ConfigurationError("ways must be positive")
        if sets < 1 or sets & (sets - 1):
            raise ConfigurationError("sets must be a positive power of two")
        self.ways = ways
        self._sets = sets
        self._set_shift = sets.bit_length() - 1
        self._tag_offset = tag_offset
        self._step = 0

    def next_line(self) -> int:
        set_idx = self._step % self._sets
        tag = self._tag_offset + (self._step // self._sets) % self.ways
        self._step += 1
        return (tag << self._set_shift) | set_idx


def build_generator(
    workload: SyntheticBenchmark,
    sets: int,
    seed: int,
    owner_index: int = 0,
) -> AccessGenerator:
    """Build the right access generator for a workload.

    Stressmark specs (see :mod:`repro.workloads.stressmark`) get the
    deterministic cyclic generator; everything else gets the
    stack-distance trace synthesiser.  ``owner_index`` selects a
    disjoint tag range so co-running generators never alias.
    """
    from repro.workloads.phased import PhasedBenchmark, PhasedTraceGenerator
    from repro.workloads.stressmark import StressmarkSpec

    tag_offset = owner_index * TAG_SPACE
    if isinstance(workload, StressmarkSpec):
        return StressmarkGenerator(workload.ways, sets, tag_offset)
    if isinstance(workload, PhasedBenchmark):
        return PhasedTraceGenerator(workload, sets, seed=seed, tag_offset=tag_offset)
    return StackDistanceTraceGenerator(
        workload.rd_profile,
        sets,
        seed=seed,
        tag_offset=tag_offset,
        streaming_sequential=workload.streaming_sequential,
    )
