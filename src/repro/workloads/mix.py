"""Instruction-mix description of a workload.

The power model (paper Section 4/5) consumes five event rates; four of
them are *instruction-related* process properties (fixed per process
regardless of co-runners): L1 references, L2 references, branches and
floating-point operations per instruction.  This dataclass holds those
per-instruction rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InstructionMix:
    """Per-instruction event rates of a workload.

    Attributes:
        l1rpi: L1 data-cache references per instruction.
        l2rpi: L2 cache references per instruction (the paper's API,
            accesses per instruction).
        brpi: Branch instructions retired per instruction.
        fppi: Floating-point instructions retired per instruction.
    """

    l1rpi: float
    l2rpi: float
    brpi: float
    fppi: float

    def __post_init__(self) -> None:
        for name in ("l1rpi", "l2rpi", "brpi", "fppi"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1] events/instruction, got {value!r}"
                )
        if self.l2rpi > self.l1rpi:
            raise ConfigurationError(
                "l2rpi cannot exceed l1rpi: every L2 reference is an L1 miss"
            )
        if self.l2rpi <= 0.0:
            raise ConfigurationError(
                "l2rpi must be positive: the performance model is defined "
                "in terms of L2 accesses"
            )

    @property
    def api(self) -> float:
        """Paper notation: (last-level cache) accesses per instruction."""
        return self.l2rpi

    def rates_per_second(self, spi: float, l2mpr: float) -> dict:
        """Translate per-instruction rates into per-second event rates.

        Args:
            spi: Seconds per instruction.
            l2mpr: L2 misses per L2 reference (equals the model's MPA).

        Returns:
            Mapping with keys ``l1rps``, ``l2rps``, ``l2mps``, ``brps``,
            ``fpps`` — exactly the regressors of Eq. 9.
        """
        if spi <= 0:
            raise ConfigurationError("spi must be positive")
        if not 0.0 <= l2mpr <= 1.0:
            raise ConfigurationError("l2mpr must be within [0, 1]")
        ips = 1.0 / spi
        return {
            "l1rps": self.l1rpi * ips,
            "l2rps": self.l2rpi * ips,
            "l2mps": self.l2rpi * l2mpr * ips,
            "brps": self.brpi * ips,
            "fpps": self.fppi * ips,
        }
