"""Synthetic stand-ins for the SPEC CPU2000 benchmarks the paper uses.

The paper profiles and validates with eight SPEC CPU2000 programs
(gzip, vpr, mcf, bzip2, twolf, art, equake, ammp) plus two more (we add
gcc and parser) for the 10-benchmark P6800 experiment.  SPEC binaries
and a real machine are unavailable here, so each program is replaced by
a :class:`SyntheticBenchmark` with:

- an intrinsic per-set reuse-distance profile (what the trace
  generator reproduces),
- an instruction mix (L1/L2/branch/FP events per instruction), and
- SPI parameters in cycles: ``SPI = (api * penalty_cycles) * MPA +
  base_cpi`` cycles per instruction (the linear Eq. 3 relation the
  paper verified empirically, which our execution model realises
  mechanistically: every L2 miss stalls the core for
  ``penalty_cycles``).

The profiles are chosen to span the paper's spectrum: CPU-bound with
tiny working sets (gzip, bzip2), medium mixed working sets (vpr, gcc,
parser, twolf), memory-bound with large footprints (mcf, art, ammp)
and streaming (equake).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    Profile,
    bump,
    combine,
    geometric,
    streaming,
    validate_profile,
)


@dataclass(frozen=True)
class SyntheticBenchmark:
    """A synthetic program model.

    Attributes:
        name: Benchmark name (SPEC CPU2000 namesake).
        mix: Per-instruction event rates.
        rd_profile: Per-set reuse-distance distribution,
            ``((distance, probability), ...)`` with ``math.inf``
            allowed for streaming mass.
        base_cpi: Cycles per instruction when every L2 access hits
            (the β of Eq. 3, in cycles).
        penalty_cycles: Stall cycles per L2 miss.
        streaming_sequential: If True, streaming (infinite-distance)
            accesses walk sequential line addresses — a stride pattern
            a prefetcher can exploit (used for equake, the one
            benchmark the paper says benefits from prefetching).
    """

    name: str
    mix: InstructionMix
    rd_profile: Profile
    base_cpi: float
    penalty_cycles: float
    streaming_sequential: bool = False

    def __post_init__(self) -> None:
        validate_profile(self.rd_profile)
        if self.base_cpi <= 0:
            raise ConfigurationError("base_cpi must be positive")
        if self.penalty_cycles <= 0:
            raise ConfigurationError("penalty_cycles must be positive")

    # ------------------------------------------------------------------
    # Eq. 3 parameters
    # ------------------------------------------------------------------
    @property
    def api(self) -> float:
        """L2 accesses per instruction."""
        return self.mix.api

    def alpha_beta(self, frequency_hz: float) -> Tuple[float, float]:
        """Ground-truth (α, β) of Eq. 3 in seconds, at a clock rate.

        α·MPA is the per-instruction miss stall: ``api * MPA`` misses
        per instruction, ``penalty_cycles`` each.
        """
        if frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        alpha = self.api * self.penalty_cycles / frequency_hz
        beta = self.base_cpi / frequency_hz
        return alpha, beta

    def spi(self, mpa: float, frequency_hz: float) -> float:
        """Seconds per instruction at a given miss-per-access ratio."""
        if not 0.0 <= mpa <= 1.0:
            raise ConfigurationError("mpa must be within [0, 1]")
        alpha, beta = self.alpha_beta(frequency_hz)
        return alpha * mpa + beta

    def solo_mpa(self, ways: int) -> float:
        """MPA if the process owned ``ways`` ways of every set alone."""
        from repro.core.histogram import ReuseDistanceHistogram

        return self.intrinsic_histogram().mpa(ways)

    def intrinsic_histogram(self):
        """The defining profile as a ReuseDistanceHistogram."""
        from repro.core.histogram import ReuseDistanceHistogram

        return ReuseDistanceHistogram.from_pairs(self.rd_profile)

    @property
    def footprint_ways(self) -> int:
        """Largest finite distance + 1: ways needed to capture all reuse."""
        finite = [d for d, _ in self.rd_profile if d != math.inf]
        return int(max(finite)) + 1 if finite else 0


def _int_mix(l1rpi: float, l2rpi: float, brpi: float) -> InstructionMix:
    return InstructionMix(l1rpi=l1rpi, l2rpi=l2rpi, brpi=brpi, fppi=0.0)


def _fp_mix(l1rpi: float, l2rpi: float, brpi: float, fppi: float) -> InstructionMix:
    return InstructionMix(l1rpi=l1rpi, l2rpi=l2rpi, brpi=brpi, fppi=fppi)


def _build_benchmarks() -> Dict[str, SyntheticBenchmark]:
    return {
        "gzip": SyntheticBenchmark(
            name="gzip",
            mix=_int_mix(l1rpi=0.33, l2rpi=0.006, brpi=0.18),
            rd_profile=combine(
                geometric(mean=1.2, max_distance=6, weight=0.97),
                streaming(weight=0.03),
            ),
            base_cpi=0.55,
            penalty_cycles=160.0,
        ),
        "vpr": SyntheticBenchmark(
            name="vpr",
            mix=_int_mix(l1rpi=0.36, l2rpi=0.013, brpi=0.15),
            rd_profile=combine(
                geometric(mean=2.5, max_distance=10, weight=0.68),
                bump(center=9.0, width=2.5, max_distance=18, weight=0.26),
                streaming(weight=0.06),
            ),
            base_cpi=0.70,
            penalty_cycles=160.0,
        ),
        "gcc": SyntheticBenchmark(
            name="gcc",
            mix=_int_mix(l1rpi=0.38, l2rpi=0.009, brpi=0.20),
            rd_profile=combine(
                geometric(mean=1.8, max_distance=8, weight=0.80),
                bump(center=6.0, width=2.0, max_distance=12, weight=0.14),
                streaming(weight=0.06),
            ),
            base_cpi=0.65,
            penalty_cycles=160.0,
        ),
        "mcf": SyntheticBenchmark(
            name="mcf",
            mix=_int_mix(l1rpi=0.42, l2rpi=0.055, brpi=0.19),
            rd_profile=combine(
                geometric(mean=4.0, max_distance=12, weight=0.35),
                bump(center=18.0, width=5.0, max_distance=30, weight=0.37),
                streaming(weight=0.28),
            ),
            base_cpi=0.45,
            penalty_cycles=170.0,
        ),
        "parser": SyntheticBenchmark(
            name="parser",
            mix=_int_mix(l1rpi=0.35, l2rpi=0.011, brpi=0.21),
            rd_profile=combine(
                geometric(mean=2.2, max_distance=9, weight=0.86),
                bump(center=7.0, width=2.0, max_distance=12, weight=0.09),
                streaming(weight=0.05),
            ),
            base_cpi=0.68,
            penalty_cycles=160.0,
        ),
        "bzip2": SyntheticBenchmark(
            name="bzip2",
            mix=_int_mix(l1rpi=0.34, l2rpi=0.008, brpi=0.16),
            rd_profile=combine(
                geometric(mean=1.6, max_distance=8, weight=0.90),
                bump(center=10.0, width=3.0, max_distance=16, weight=0.07),
                streaming(weight=0.03),
            ),
            base_cpi=0.60,
            penalty_cycles=160.0,
        ),
        "twolf": SyntheticBenchmark(
            name="twolf",
            mix=_int_mix(l1rpi=0.37, l2rpi=0.016, brpi=0.14),
            rd_profile=combine(
                geometric(mean=3.0, max_distance=12, weight=0.58),
                bump(center=12.0, width=3.0, max_distance=20, weight=0.32),
                streaming(weight=0.10),
            ),
            base_cpi=0.72,
            penalty_cycles=160.0,
        ),
        "art": SyntheticBenchmark(
            name="art",
            mix=_fp_mix(l1rpi=0.40, l2rpi=0.070, brpi=0.10, fppi=0.30),
            rd_profile=combine(
                geometric(mean=3.0, max_distance=10, weight=0.27),
                bump(center=14.0, width=6.0, max_distance=28, weight=0.53),
                streaming(weight=0.20),
            ),
            base_cpi=0.50,
            penalty_cycles=165.0,
        ),
        "equake": SyntheticBenchmark(
            name="equake",
            mix=_fp_mix(l1rpi=0.39, l2rpi=0.040, brpi=0.08, fppi=0.28),
            rd_profile=combine(
                geometric(mean=2.0, max_distance=8, weight=0.45),
                bump(center=8.0, width=3.0, max_distance=14, weight=0.10),
                streaming(weight=0.45),
            ),
            base_cpi=0.58,
            penalty_cycles=160.0,
            streaming_sequential=True,
        ),
        "ammp": SyntheticBenchmark(
            name="ammp",
            mix=_fp_mix(l1rpi=0.41, l2rpi=0.028, brpi=0.09, fppi=0.33),
            rd_profile=combine(
                geometric(mean=3.5, max_distance=12, weight=0.50),
                bump(center=16.0, width=4.0, max_distance=26, weight=0.30),
                streaming(weight=0.20),
            ),
            base_cpi=0.62,
            penalty_cycles=160.0,
        ),
    }


#: All ten synthetic benchmarks, keyed by name.
BENCHMARKS: Dict[str, SyntheticBenchmark] = _build_benchmarks()

#: The eight benchmarks the paper's Table 1 / power experiments use.
PAPER_EIGHT = ("gzip", "vpr", "mcf", "bzip2", "twolf", "art", "equake", "ammp")

#: The ten-benchmark suite for the P6800 experiment.
PAPER_TEN = PAPER_EIGHT + ("gcc", "parser")


def get_benchmark(name: str) -> SyntheticBenchmark:
    """Look up a benchmark by name.

    Raises:
        KeyError: If the name is unknown (message lists valid names).
    """
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        ) from None
