"""One-stop facade over the paper's full methodology.

The library's workflows span several subsystems (profiling, the
performance model, power training, assignment search).  This module
exposes each as a single function returning a frozen result bundle, so
scripts, notebooks and the CLI all drive the same four entry points:

- :func:`profile_suite` — stressmark-profile benchmarks on a machine,
- :func:`predict_mix` — price a co-run combination from profiles,
- :func:`train_power` — fit the Eq. 9 power model for a machine,
- :func:`solve_assignment` — solve a declarative
  :class:`AssignmentRequest` (single machine or a whole
  :class:`~repro.fleet.FleetSpec` fleet) into a
  :class:`FleetAssignment`,
- :func:`pick_assignment` — the original positional assignment entry
  point, kept as a deprecated shim over the same machinery,
- :func:`serve` — run all of the above as an asyncio HTTP service
  with a model registry and dynamic micro-batching
  (:mod:`repro.serve`).

Every result type round-trips through plain JSON via ``to_dict()`` /
``from_dict()`` (converters live in :mod:`repro.io`), and all functions
honour the process-wide observer installed with
:func:`repro.obs.use_observer`.
"""

from __future__ import annotations

import pathlib
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.config import (
    BENCH_SCALE,
    PROFILE_SCALE,
    SimulationScale,
    TEST_SCALE,
)
from repro.core.assignment import (
    AssignmentDecision,
    exhaustive_assignment,
    greedy_assignment,
)
from repro.core.combined import CombinedModel
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.performance_model import CoRunPrediction, PerformanceModel
from repro.core.power_model import CorePowerModel
from repro.errors import ConfigurationError
from repro.fleet.spec import FleetSpec, MachineGroup
from repro.fleet.types import (
    AssignmentRequest,
    FleetAssignment,
    MachineAssignment,
)
from repro.machine.topology import STANDARD_MACHINES
from repro.workloads.spec import BENCHMARKS

Pathish = Union[str, pathlib.Path]

__all__ = [
    "ProfileSuiteResult",
    "MixPrediction",
    "PowerTrainingResult",
    "AssignmentPick",
    "AssignmentRequest",
    "FleetAssignment",
    "FleetSpec",
    "MachineAssignment",
    "MachineGroup",
    "profile_suite",
    "predict_mix",
    "predict_mixes",
    "train_power",
    "pick_assignment",
    "solve_assignment",
    "load_suite",
    "load_prediction",
    "load_pick",
    "load_fleet_assignment",
    "serve",
    "ServerHandle",
]


def __getattr__(name: str):
    # Lazy re-export: pulling the serving stack (asyncio server,
    # batcher, registry) into every `import repro` would be waste.
    if name == "ServerHandle":
        from repro.serve import ServerHandle

        return ServerHandle
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# Result bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileSuiteResult:
    """Everything :func:`profile_suite` learned about a benchmark set."""

    machine: str
    features: Dict[str, FeatureVector]
    profiles: Dict[str, ProfileVector]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.features))

    def to_dict(self) -> dict:
        from repro.io import profile_suite_result_to_dict

        return profile_suite_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileSuiteResult":
        from repro.io import profile_suite_result_from_dict

        return profile_suite_result_from_dict(data)

    def save(self, path: Pathish) -> None:
        """Write the suite to JSON (loadable by :func:`load_suite`)."""
        from repro.io import save_json

        save_json(self.to_dict(), path)


@dataclass(frozen=True)
class MixPrediction:
    """Predicted co-run steady state from :func:`predict_mix`."""

    ways: int
    names: Tuple[str, ...]
    prediction: CoRunPrediction

    def to_dict(self) -> dict:
        from repro.io import mix_prediction_to_dict

        return mix_prediction_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MixPrediction":
        from repro.io import mix_prediction_from_dict

        return mix_prediction_from_dict(data)

    def save(self, path: Pathish) -> None:
        """Write the prediction to JSON (loadable by :func:`load_prediction`)."""
        from repro.io import save_json

        save_json(self.to_dict(), path)


@dataclass(frozen=True)
class PowerTrainingResult:
    """Fitted Eq. 9 model plus its training provenance."""

    machine: str
    model: CorePowerModel
    training_windows: int
    r_squared: float

    def to_dict(self) -> dict:
        from repro.io import power_training_result_to_dict

        return power_training_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PowerTrainingResult":
        from repro.io import power_training_result_from_dict

        return power_training_result_from_dict(data)

    def save(self, path: Pathish) -> None:
        """Write just the fitted model to JSON (io conventions)."""
        from repro.io import save_power_model

        save_power_model(self.model, path)


@dataclass(frozen=True)
class AssignmentPick:
    """Outcome of :func:`pick_assignment`."""

    machine: str
    strategy: str
    decision: AssignmentDecision

    @property
    def assignment(self) -> Dict[int, Tuple[str, ...]]:
        return self.decision.assignment

    def to_dict(self) -> dict:
        from repro.io import assignment_pick_to_dict

        return assignment_pick_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AssignmentPick":
        from repro.io import assignment_pick_from_dict

        return assignment_pick_from_dict(data)

    def save(self, path: Pathish) -> None:
        """Write the pick to JSON (loadable by :func:`load_pick`)."""
        from repro.io import save_json

        save_json(self.to_dict(), path)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _topology(machine: str, sets: int):
    try:
        factory = STANDARD_MACHINES[machine]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {machine!r}; choose from {sorted(STANDARD_MACHINES)}"
        ) from None
    return factory(sets=sets)


def _resolve_benchmarks(names: Optional[Sequence[str]]):
    if names is None:
        names = sorted(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ConfigurationError(
            f"unknown benchmarks {unknown}; available: {sorted(BENCHMARKS)}"
        )
    return [BENCHMARKS[n] for n in names]


def _resolve_suite(
    suite: Union["ProfileSuiteResult", Pathish]
) -> "ProfileSuiteResult":
    """Accept a result bundle or a path to a saved suite."""
    if isinstance(suite, ProfileSuiteResult):
        return suite
    return load_suite(suite)


def load_suite(path: Pathish) -> ProfileSuiteResult:
    """Load a suite saved by the facade or by ``save_profile_suite``.

    Both writers emit ``kind: profile_suite`` documents; the facade
    additionally records the machine name (absent → empty string).
    """
    from repro.io import load_json, profile_suite_result_from_dict

    return profile_suite_result_from_dict(load_json(path))


def load_prediction(path: Pathish) -> MixPrediction:
    """Load a prediction saved by :meth:`MixPrediction.save`."""
    from repro.io import load_json, mix_prediction_from_dict

    return mix_prediction_from_dict(load_json(path))


def load_pick(path: Pathish) -> AssignmentPick:
    """Load a decision saved by :meth:`AssignmentPick.save`."""
    from repro.io import assignment_pick_from_dict, load_json

    return assignment_pick_from_dict(load_json(path))


# ----------------------------------------------------------------------
# Facade entry points
# ----------------------------------------------------------------------
def profile_suite(
    names: Optional[Sequence[str]] = None,
    machine: str = "4-core-server",
    *,
    sets: int = 128,
    seed: int = 42,
    power: bool = False,
    quick: bool = False,
    scale: Optional[SimulationScale] = None,
) -> ProfileSuiteResult:
    """Stressmark-profile benchmarks on a machine (paper Section 3.4).

    Args:
        names: Benchmark names (default: the full synthetic suite).
        machine: A :data:`STANDARD_MACHINES` name.
        sets: Cache set scaling.
        seed: Master RNG seed.
        power: Also measure P_alone (required by the combined model).
        quick: Use tiny simulation budgets (fast, less accurate).
        scale: Explicit simulation scale (overrides ``quick``).
    """
    from repro.machine.simulator import PowerEnvironment
    from repro.profiling.profiler import profile_suite as run_profiling

    topology = _topology(machine, sets)
    benchmarks = _resolve_benchmarks(names)
    if scale is None:
        scale = TEST_SCALE if quick else PROFILE_SCALE
    power_env = (
        PowerEnvironment.for_topology(topology, seed=seed) if power else None
    )
    results = run_profiling(
        benchmarks, topology, scale=scale, seed=seed, power_env=power_env
    )
    return ProfileSuiteResult(
        machine=machine,
        features={p.feature.name: p.feature for p in results},
        profiles={p.profile.name: p.profile for p in results},
    )


def predict_mix(
    names: Sequence[str],
    suite: Union[ProfileSuiteResult, Pathish],
    *,
    ways: int,
    strategy: str = "auto",
    frequency_ratios: Optional[Sequence[float]] = None,
) -> MixPrediction:
    """Price a co-run combination from saved profiles (Section 3.3).

    Args:
        names: Processes sharing the cache (duplicates allowed).
        suite: A :class:`ProfileSuiteResult` or path to a saved suite.
        ways: Associativity of the shared cache being modelled.
        strategy: Equilibrium solver strategy.
        frequency_ratios: Optional per-process core-clock ratios
            relative to the profiled clock (heterogeneous machines /
            DVFS P-states); ``None`` or all-1.0 is the homogeneous
            path, bit for bit.
    """
    resolved = _resolve_suite(suite)
    model = PerformanceModel(ways=ways, strategy=strategy)
    model.register_all(list(resolved.features.values()))
    prediction = model.predict(
        list(names),
        frequency_ratios=(
            list(frequency_ratios) if frequency_ratios is not None else None
        ),
    )
    return MixPrediction(ways=ways, names=tuple(names), prediction=prediction)


def predict_mixes(
    mixes: Sequence[Sequence[str]],
    suite: Union[ProfileSuiteResult, Pathish],
    *,
    ways: int,
    strategy: str = "auto",
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    engine: str = "auto",
    frequency_ratios: Optional[Sequence[Optional[Sequence[float]]]] = None,
) -> Tuple[MixPrediction, ...]:
    """Price a batch of co-run combinations, optionally in parallel.

    Results are ordered like ``mixes`` and are bit-identical for any
    ``workers``/``engine`` value: the batch engines solve every mix
    from the cold start (see :mod:`repro.parallel`), which is also
    what each independent :func:`predict_mix` call does.

    Args:
        mixes: Co-run combinations, each a sequence of process names.
        suite: A :class:`ProfileSuiteResult` or path to a saved suite.
        ways: Associativity of the shared cache being modelled.
        strategy: Equilibrium solver strategy.
        workers: Worker processes; ``None``/``0``/``1`` run serially.
        chunk_size: Mixes shipped per worker round trip.
        engine: ``"auto"`` / ``"serial"`` / ``"vectorized"`` /
            ``"pool"`` — pure throughput knob (see
            :class:`~repro.parallel.ParallelPredictor`).
        frequency_ratios: Optional per-mix core-clock ratios — one
            entry per mix, each ``None`` or a per-process ratio
            sequence; identical across engines, bit for bit.
    """
    from repro.parallel import predict_mixes as batch_predict

    resolved = _resolve_suite(suite)
    predictions = batch_predict(
        resolved.features,
        mixes,
        ways=ways,
        strategy=strategy,
        workers=workers,
        chunk_size=chunk_size,
        engine=engine,
        frequency_ratios=frequency_ratios,
    )
    return tuple(
        MixPrediction(ways=ways, names=tuple(mix), prediction=prediction)
        for mix, prediction in zip(mixes, predictions)
    )


def train_power(
    machine: str = "4-core-server",
    *,
    sets: int = 128,
    seed: int = 42,
    quick: bool = False,
) -> PowerTrainingResult:
    """Train the Eq. 9 per-core power model for a machine (Section 4).

    Uses the shared :class:`~repro.experiments.context.ExperimentContext`
    cache, so repeated calls with the same configuration are free.
    """
    from repro.experiments.context import get_context

    if machine not in STANDARD_MACHINES:
        raise ConfigurationError(
            f"unknown machine {machine!r}; choose from {sorted(STANDARD_MACHINES)}"
        )
    profile_scale = TEST_SCALE if quick else PROFILE_SCALE
    run_scale = TEST_SCALE if quick else BENCH_SCALE
    context = get_context(
        machine=machine,
        sets=sets,
        seed=seed,
        profile_scale=profile_scale,
        run_scale=run_scale,
    )
    model = context.power_model()
    return PowerTrainingResult(
        machine=machine,
        model=model,
        training_windows=len(context.training_set()),
        r_squared=model.r_squared,
    )


def pick_assignment(
    names: Sequence[str],
    suite: Union[ProfileSuiteResult, Pathish],
    power_model: Union[CorePowerModel, Pathish],
    machine: str = "4-core-server",
    *,
    sets: int = 128,
    objective: str = "power",
    greedy: bool = False,
    workers: Optional[int] = None,
) -> AssignmentPick:
    """Deprecated positional entry point; use :func:`solve_assignment`.

    Behaves exactly as it always has (the serving layer's ``/v1``
    responses are pinned byte-for-byte to it), but new callers should
    build an :class:`AssignmentRequest` and call
    :func:`solve_assignment`, which adds fleets, power budgets and the
    scalable greedy/anneal solvers.
    """
    warnings.warn(
        "pick_assignment is deprecated; build an AssignmentRequest and "
        "call solve_assignment instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _pick_assignment_impl(
        names,
        suite,
        power_model,
        machine,
        sets=sets,
        objective=objective,
        greedy=greedy,
        workers=workers,
    )


def _pick_assignment_impl(
    names: Sequence[str],
    suite: Union[ProfileSuiteResult, Pathish],
    power_model: Union[CorePowerModel, Pathish],
    machine: str = "4-core-server",
    *,
    sets: int = 128,
    objective: str = "power",
    greedy: bool = False,
    workers: Optional[int] = None,
) -> AssignmentPick:
    """Pick the best process-to-core mapping from profiles (Section 6).

    Args:
        names: Processes to place (duplicates allowed).
        suite: A :class:`ProfileSuiteResult` or path to a saved suite.
        power_model: A fitted :class:`CorePowerModel` or path to one.
        machine: Target machine name.
        sets: Cache set scaling.
        objective: ``power`` / ``throughput`` / ``energy_per_instruction``.
        greedy: Use the O(k·N) greedy searcher instead of exhaustive.
        workers: Score exhaustive candidates across this many worker
            processes (same decision as serial; see
            :mod:`repro.parallel`).  Incompatible with ``greedy``,
            which is inherently sequential.
    """
    from repro.io import load_power_model

    if workers is not None and workers > 1 and greedy:
        raise ConfigurationError(
            "greedy assignment places processes sequentially and cannot "
            "fan out; drop workers or use the exhaustive searcher"
        )
    topology = _topology(machine, sets)
    resolved = _resolve_suite(suite)
    if not isinstance(power_model, CorePowerModel):
        power_model = load_power_model(power_model)
    if workers is not None and workers > 1:
        from repro.parallel import parallel_exhaustive_assignment

        decision = parallel_exhaustive_assignment(
            resolved.features,
            resolved.profiles,
            power_model,
            machine=machine,
            sets=sets,
            process_names=list(names),
            objective=objective,
            workers=workers,
        )
        return AssignmentPick(
            machine=machine, strategy="exhaustive", decision=decision
        )
    ways = topology.domains[0].geometry.ways
    perf = PerformanceModel(ways=ways)
    perf.register_all(list(resolved.features.values()))
    combined = CombinedModel(
        topology=topology,
        performance_models=[perf],
        power_model=power_model,
        profiles=resolved.profiles,
    )
    searcher = greedy_assignment if greedy else exhaustive_assignment
    decision = searcher(combined, list(names), objective=objective)
    return AssignmentPick(
        machine=machine,
        strategy="greedy" if greedy else "exhaustive",
        decision=decision,
    )


def solve_assignment(
    request: AssignmentRequest,
    suite: Union[ProfileSuiteResult, Pathish],
    power_model: Union[CorePowerModel, Pathish],
    *,
    strategy: str = "auto",
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    engine: str = "auto",
) -> FleetAssignment:
    """Solve a declarative assignment request (single machine or fleet).

    The successor to :func:`pick_assignment`: the problem lives in a
    frozen, JSON-round-trippable :class:`AssignmentRequest` (objective,
    fleet inventory, power caps/budget, solver and search budget), and
    everything passed here is an execution knob that cannot change the
    returned bits.  Small instances can use the exhaustive oracle;
    ``greedy``/``anneal`` scale to fleets of thousands of machines with
    anytime best-so-far reporting (see :mod:`repro.fleet`).

    Args:
        request: What to solve.
        suite: A :class:`ProfileSuiteResult` or path to a saved suite.
        power_model: A fitted :class:`CorePowerModel` or path to one.
        strategy: Equilibrium solver strategy.
        workers / chunk_size / engine: Fan-out knobs for the co-run
            closure priming (see
            :class:`~repro.parallel.ParallelPredictor`); results are
            bit-identical for every setting.
    """
    from repro.fleet import solve
    from repro.io import load_power_model

    resolved = _resolve_suite(suite)
    if not isinstance(power_model, CorePowerModel):
        power_model = load_power_model(power_model)
    return solve(
        request,
        resolved.features,
        resolved.profiles,
        power_model,
        strategy=strategy,
        workers=workers,
        chunk_size=chunk_size,
        engine=engine,
    )


def load_fleet_assignment(path: Pathish) -> FleetAssignment:
    """Load a bundle saved by :meth:`FleetAssignment.save`."""
    from repro.io import load_fleet_assignment as _load

    return _load(path)


def serve(
    models: Optional[Mapping[str, Any]] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: Optional[int] = None,
    strategy: str = "auto",
    max_batch_size: int = 32,
    max_linger_ms: float = 2.0,
    max_queue: int = 256,
    engine: str = "auto",
    result_cache_size: int = 4096,
    target_p95_ms: Optional[float] = None,
    max_body_bytes: int = 8 * 1024 * 1024,
):
    """Boot the asyncio prediction service on a background thread.

    Returns a :class:`repro.serve.ServerHandle`; use it as a context
    manager (or call ``stop()``) to drain and shut down.  Served
    ``/v1/predict`` responses are bit-identical to :func:`predict_mix`
    for the same suite/mix — see :mod:`repro.serve`.

    Args:
        models: ``name -> artifact`` published before serving: result
            bundles (:class:`ProfileSuiteResult`,
            :class:`PowerTrainingResult`), fitted
            :class:`CorePowerModel` instances, saved-JSON paths, or
            raw documents.
        host / port: Bind address (``port=0`` = ephemeral).
        workers: Worker processes per prediction engine
            (``None``/``0``/``1`` solve in-process).
        strategy: Equilibrium solver strategy.
        max_batch_size: Dispatch a batch at this many queued requests.
        max_linger_ms: Dispatch a partial batch after the oldest
            request has waited this long.
        max_queue: Admission bound; beyond it requests are shed with
            an explicit 429-style response.
        engine: Batch execution engine per served predictor
            (``"auto"`` / ``"serial"`` / ``"vectorized"`` /
            ``"pool"`` — see :class:`~repro.parallel.ParallelPredictor`).
        result_cache_size: Canonical-mix result-cache capacity
            (``0`` disables caching; hits skip the solver but stay
            bit-identical — see :mod:`repro.serve.cache`).
        target_p95_ms: End-to-end p95 latency SLO; when set, batch
            size and linger adapt to hold it (AIMD control).
        max_body_bytes: Reject request bodies declared larger than
            this with 413 before reading them.
    """
    from repro.serve import start_server

    return start_server(
        models,
        host=host,
        port=port,
        workers=workers,
        strategy=strategy,
        max_batch_size=max_batch_size,
        max_linger_ms=max_linger_ms,
        max_queue=max_queue,
        engine=engine,
        result_cache_size=result_cache_size,
        target_p95_ms=target_p95_ms,
        max_body_bytes=max_body_bytes,
    )
