"""Unit tests for the assignment-quality experiment."""

import pytest

from repro.experiments.assignment_quality import (
    AssignmentQualityResult,
    RankedAssignment,
    _spearman,
    distinct_one_per_core_assignments,
)


class TestEnumeration:
    def test_distinct_permutations(self):
        assignments = distinct_one_per_core_assignments(
            ["a", "b", "c"], cores=[0, 1, 2]
        )
        assert len(assignments) == 6  # 3!
        for assignment in assignments:
            placed = sorted(n for names in assignment.values() for n in names)
            assert placed == ["a", "b", "c"]

    def test_duplicate_names_deduplicated(self):
        assignments = distinct_one_per_core_assignments(["a", "a"], cores=[0, 1])
        assert len(assignments) == 1


class TestSpearman:
    def test_perfect_agreement(self):
        assert _spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert _spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_constant_series(self):
        assert _spearman([1, 1, 1], [1, 2, 3]) == pytest.approx(1.0)


class TestResultProperties:
    def test_regret_and_choice(self):
        ranked = (
            RankedAssignment({0: ("a",)}, predicted_watts=10.0, measured_watts=12.0),
            RankedAssignment({0: ("b",)}, predicted_watts=11.0, measured_watts=10.0),
            RankedAssignment({0: ("c",)}, predicted_watts=12.0, measured_watts=15.0),
        )
        result = AssignmentQualityResult(ranked=ranked, rank_correlation=0.5)
        assert result.chosen.predicted_watts == 10.0
        assert result.true_best.measured_watts == 10.0
        assert result.regret_watts == pytest.approx(2.0)
        assert result.regret_pct == pytest.approx(20.0)
        assert result.measured_spread_watts == pytest.approx(5.0)
