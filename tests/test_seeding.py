"""Unit tests for the SeedSequence-based stream derivation.

The old scheme derived child seeds arithmetically (``seed * 1_000_003
+ pid``, ``seed * 7_919 + core``), which collides for small seeds:
process pid 7_919 of seed 0 shared a stream with core 0 of seed 1, and
every domain of seed 0 started at 0.  :mod:`repro.seeding` replaces it
with ``numpy.random.SeedSequence`` spawn keys, whose children are
cryptographically mixed and provably independent.  These tests pin the
new derivation (so the simulator's RNG streams never silently change)
and check the independence properties the old scheme lacked.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.seeding import (
    STREAM_METER,
    STREAM_PHASE,
    STREAM_POLICY,
    STREAM_PROCESS,
    STREAM_SCHEDULER,
    STREAM_TASK,
    spawn_sequence,
    stream_seed,
    task_seeds,
)

ALL_DOMAINS = (
    STREAM_PROCESS,
    STREAM_SCHEDULER,
    STREAM_POLICY,
    STREAM_METER,
    STREAM_PHASE,
    STREAM_TASK,
)


class TestStreamSeed:
    def test_pinned_derivations(self):
        """Regression pin: the exact seeds the simulator streams use.

        These integers replaced the old arithmetic derivations
        (``42 * 1_000_003 + 0`` = 42_000_126 for the first process,
        ``42 * 7_919 + 0`` = 332_598 for the first scheduler); any
        change to them silently re-seeds every simulation in the
        project, so they are pinned as literals.
        """
        assert (
            stream_seed(42, STREAM_PROCESS, 0)
            == 183792640516504101100404641272471896826
        )
        assert (
            stream_seed(42, STREAM_SCHEDULER, 0)
            == 145851895635178477468249498220567971000
        )
        assert (
            stream_seed(42, STREAM_METER)
            == 315732897500224043183049612165647419589
        )
        # And they are nothing like the collision-prone old values.
        assert stream_seed(42, STREAM_PROCESS, 0) != 42 * 1_000_003
        assert stream_seed(42, STREAM_SCHEDULER, 0) != 42 * 7_919

    def test_deterministic(self):
        assert stream_seed(7, STREAM_PROCESS, 3) == stream_seed(7, STREAM_PROCESS, 3)

    def test_domains_distinct_even_for_seed_zero(self):
        """The old scheme collapsed every domain of seed 0 onto 0."""
        seeds = {stream_seed(0, domain, 0) for domain in ALL_DOMAINS}
        assert len(seeds) == len(ALL_DOMAINS)

    def test_no_small_seed_cross_collisions(self):
        """Old scheme: seed 0 pid 7_919 == seed 1 core 0 == 7_919."""
        seen = set()
        for seed in range(4):
            for index in range(8):
                for domain in (STREAM_PROCESS, STREAM_SCHEDULER):
                    seen.add(stream_seed(seed, domain, index))
        assert len(seen) == 4 * 8 * 2

    def test_indices_distinct(self):
        seeds = [stream_seed(5, STREAM_PROCESS, i) for i in range(32)]
        assert len(set(seeds)) == 32

    def test_negative_master_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            stream_seed(-1, STREAM_PROCESS, 0)

    def test_seeds_fit_numpy_entropy(self):
        """Derived seeds are valid SeedSequence entropy (128-bit ints)."""
        seed = stream_seed(3, STREAM_PROCESS, 1)
        assert 0 <= seed < 2**128
        np.random.default_rng(seed)  # must not raise


class TestSpawnSequence:
    def test_matches_manual_seedsequence(self):
        """spawn_sequence is SeedSequence with an explicit spawn key."""
        ours = spawn_sequence(11, STREAM_PROCESS, 4)
        manual = np.random.SeedSequence(entropy=11, spawn_key=(STREAM_PROCESS, 4))
        assert list(ours.generate_state(4)) == list(manual.generate_state(4))

    def test_streams_statistically_unrelated(self):
        """Adjacent streams share no draws (the old scheme's failure)."""
        a = np.random.default_rng(stream_seed(0, STREAM_PROCESS, 0)).random(64)
        b = np.random.default_rng(stream_seed(0, STREAM_PROCESS, 1)).random(64)
        assert not np.allclose(a, b)
        assert abs(float(np.corrcoef(a, b)[0, 1])) < 0.5


class TestTaskSeeds:
    def test_pinned_values(self):
        assert task_seeds(7, 2) == (
            201016096644731914203725224309140886507,
            211578089983004107134440573639966753685,
        )

    def test_deterministic_prefix(self):
        """Growing the batch never re-seeds earlier tasks."""
        assert task_seeds(7, 8)[:2] == task_seeds(7, 2)

    def test_all_distinct(self):
        seeds = task_seeds(0, 256)
        assert len(set(seeds)) == 256

    def test_task_seeds_are_addressed_task_streams(self):
        """spawn() children coincide with direct STREAM_TASK addressing,
        so a single task's stream can be recreated without materialising
        its siblings."""
        assert task_seeds(0, 8) == tuple(
            stream_seed(0, STREAM_TASK, i) for i in range(8)
        )

    def test_disjoint_from_other_domains(self):
        others = (
            STREAM_PROCESS,
            STREAM_SCHEDULER,
            STREAM_POLICY,
            STREAM_METER,
            STREAM_PHASE,
        )
        overlap = set(task_seeds(0, 64)) & {
            stream_seed(0, domain, i) for domain in others for i in range(64)
        }
        assert not overlap

    def test_count_validation(self):
        assert task_seeds(1, 0) == ()
        with pytest.raises(ConfigurationError):
            task_seeds(1, -1)
