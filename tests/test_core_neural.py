"""Unit tests for the neural-network power model."""

import numpy as np
import pytest

from repro.core.neural import NeuralPowerModel
from repro.core.power_model import PowerTrainingSet
from repro.errors import ConfigurationError, ModelNotFittedError
from repro.machine.events import Event, RATE_EVENTS


def make_training(fn, n=120, seed=0):
    rng = np.random.default_rng(seed)
    training = PowerTrainingSet()
    for _ in range(n):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        training.add(rates, fn(rates))
    return training


def linear_fn(rates):
    return 10.0 + 1e-7 * rates[Event.L1_REFS] + 5e-8 * rates[Event.FP_OPS]


def saturating_fn(rates):
    x = rates[Event.L1_REFS] / 5e7
    return 10.0 + 20.0 * x / (1 + x) + 3e-8 * rates[Event.BRANCHES]


class TestTraining:
    def test_learns_linear_function(self):
        training = make_training(linear_fn)
        model = NeuralPowerModel(hidden=6, epochs=2500, seed=1).fit(training)
        assert model.accuracy(training) > 0.97

    def test_learns_nonlinear_function(self):
        training = make_training(saturating_fn)
        model = NeuralPowerModel(hidden=8, epochs=3000, seed=1).fit(training)
        assert model.accuracy(training) > 0.97

    def test_deterministic_given_seed(self):
        training = make_training(linear_fn, n=40)
        a = NeuralPowerModel(epochs=300, seed=5).fit(training)
        b = NeuralPowerModel(epochs=300, seed=5).fit(training)
        rates = {event: 5e7 for event in RATE_EVENTS}
        assert a.core_power(rates) == pytest.approx(b.core_power(rates))

    def test_needs_enough_rows(self):
        training = make_training(linear_fn, n=4)
        with pytest.raises(ConfigurationError):
            NeuralPowerModel().fit(training)

    def test_final_loss_recorded(self):
        training = make_training(linear_fn, n=40)
        model = NeuralPowerModel(epochs=500, seed=2).fit(training)
        assert model.final_loss is not None
        assert model.final_loss < 0.1


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            NeuralPowerModel().core_power({})

    def test_core_power_close_to_truth(self):
        training = make_training(saturating_fn)
        model = NeuralPowerModel(hidden=8, epochs=3000, seed=1).fit(training)
        rng = np.random.default_rng(9)
        rates = {event: rng.uniform(1e7, 9e7) for event in RATE_EVENTS}
        assert model.core_power(rates) == pytest.approx(
            saturating_fn(rates), rel=0.1
        )

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            NeuralPowerModel(hidden=0)
        with pytest.raises(ConfigurationError):
            NeuralPowerModel(epochs=0)
        with pytest.raises(ConfigurationError):
            NeuralPowerModel(learning_rate=0)
