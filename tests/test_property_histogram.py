"""Property-based tests for histograms and miss-ratio curves."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import ReuseDistanceHistogram
from repro.core.mpa import MissRatioCurve


@st.composite
def histograms(draw, max_support=24):
    """Arbitrary normalisable reuse-distance distributions."""
    size = draw(st.integers(min_value=1, max_value=max_support))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    inf_mass = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    total = sum(weights) + inf_mass
    if total <= 0:
        weights = [1.0] + weights[1:]
    return ReuseDistanceHistogram(weights, inf_mass)


class TestHistogramProperties:
    @given(histograms())
    @settings(max_examples=60, deadline=None)
    def test_normalised(self, hist):
        assert float(hist.probs.sum()) + hist.inf_mass == pytest.approx(1.0)

    @given(histograms())
    @settings(max_examples=60, deadline=None)
    def test_mpa_monotone_and_bounded(self, hist):
        sizes = np.linspace(0.0, hist.max_distance + 3.0, 25)
        values = [hist.mpa(float(s)) for s in sizes]
        assert all(0.0 <= v <= 1.0 + 1e-12 for v in values)
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @given(histograms())
    @settings(max_examples=60, deadline=None)
    def test_mpa_endpoints(self, hist):
        assert hist.mpa(0) == pytest.approx(1.0)
        assert hist.mpa(hist.max_distance + 1) == pytest.approx(hist.inf_mass)

    @given(histograms(), st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_truncation_preserves_mpa_below_cut(self, hist, cut):
        truncated = hist.truncated(cut)
        for size in range(cut + 1):
            assert truncated.mpa(size) == pytest.approx(hist.mpa(size), abs=1e-9)

    @given(histograms(), histograms(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_mixture_mpa_between_parents(self, a, b, weight):
        mixed = a.mixed_with(b, weight)
        for size in (0, 1, 3, 8):
            low = min(a.mpa(size), b.mpa(size))
            high = max(a.mpa(size), b.mpa(size))
            assert low - 1e-9 <= mixed.mpa(size) <= high + 1e-9


class TestCurveRoundtripProperties:
    @given(histograms(max_support=15))
    @settings(max_examples=50, deadline=None)
    def test_curve_roundtrip_preserves_mpa(self, hist):
        curve = MissRatioCurve.from_histogram(hist, max_size=16)
        recovered = curve.to_histogram()
        for size in range(1, 17):
            assert recovered.mpa(size) == pytest.approx(hist.mpa(size), abs=1e-9)

    @given(histograms(max_support=15))
    @settings(max_examples=50, deadline=None)
    def test_recovered_mass_normalised(self, hist):
        curve = MissRatioCurve.from_histogram(hist, max_size=16)
        recovered = curve.to_histogram()
        assert float(recovered.probs.sum()) + recovered.inf_mass == pytest.approx(1.0)
