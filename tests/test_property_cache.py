"""Property-based tests for the cache simulator.

Key invariant: on a *fully associative* LRU cache of capacity C, an
access hits iff its global stack distance is < C — the exact link
between the simulator substrate and Eq. 2 of the paper.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.reuse import GlobalStackProfiler, SetReuseProfiler
from repro.cache.set_associative import SetAssociativeCache
from repro.config import CacheGeometry

address_streams = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=300
)


class TestLruStackProperty:
    @given(address_streams, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_fully_associative_hit_iff_distance_below_capacity(
        self, stream, capacity
    ):
        cache = SetAssociativeCache(CacheGeometry(sets=1, ways=capacity))
        profiler = GlobalStackProfiler()
        for line in stream:
            distance = profiler.record(line)
            hit = cache.access(line)
            if distance is None:
                assert hit is False
            else:
                assert hit is (distance < capacity)

    @given(address_streams, st.integers(min_value=0, max_value=2))
    @settings(max_examples=60, deadline=None)
    def test_set_associative_hit_iff_set_distance_below_ways(
        self, stream, log_sets
    ):
        sets = 1 << log_sets
        ways = 4
        cache = SetAssociativeCache(CacheGeometry(sets=sets, ways=ways))
        profiler = SetReuseProfiler(sets=sets)
        for line in stream:
            distance = profiler.record(line)
            hit = cache.access(line)
            if distance is None:
                assert hit is False
            else:
                assert hit is (distance < ways)


class TestConservationProperties:
    @given(address_streams)
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, stream):
        cache = SetAssociativeCache(CacheGeometry(sets=2, ways=2))
        for line in stream:
            cache.access(line, owner=line % 3)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(stream)

    @given(address_streams)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, stream):
        geometry = CacheGeometry(sets=2, ways=2)
        cache = SetAssociativeCache(geometry)
        for line in stream:
            cache.access(line, owner=line % 2)
            assert cache.resident_lines() <= geometry.lines

    @given(address_streams)
    @settings(max_examples=60, deadline=None)
    def test_owner_line_counts_consistent(self, stream):
        cache = SetAssociativeCache(CacheGeometry(sets=2, ways=4))
        for line in stream:
            cache.access(line, owner=line % 3)
        by_owner = cache.lines_by_owner()
        total = sum(by_owner.values())
        assert total == cache.resident_lines()
        # Cross-check against a direct scan of the tag arrays.
        scanned = {}
        for set_idx in range(2):
            for _, owner in cache.set_contents(set_idx):
                scanned[owner] = scanned.get(owner, 0) + 1
        assert scanned == by_owner

    @given(address_streams)
    @settings(max_examples=40, deadline=None)
    def test_resident_line_always_hits_next(self, stream):
        cache = SetAssociativeCache(CacheGeometry(sets=2, ways=2))
        for line in stream:
            cache.access(line)
            assert cache.contains(line)
            assert cache.access(line) is True
