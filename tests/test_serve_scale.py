"""Tests for the serve scale-out layer (cache, workers, SLO batching).

Four layers, pinned separately:

- **Result cache**: LRU bounds, canonical-mix keys (any ordering of
  the same multiset shares one entry), bit-identical restores, and
  the content-digest invalidation contract — including the stale-hit
  regression pin: a hot swap via ``POST /v1/models`` must make the
  next ``/v1/predict`` a cache *miss* re-solved against the new
  version.
- **Adaptive batching**: the AIMD control law against a p95 target,
  unit-level (synthetic histogram deltas) and end-to-end (a served
  latency SLO visibly drops the batching level).
- **Worker pool**: N shared-nothing ``SO_REUSEPORT`` processes serve
  bit-identical predictions on one address (proven via the
  ``X-Repro-Worker`` header), plus lifecycle and validation.
- **HTTP edge cases + client retry**: oversized / negative
  Content-Length, truncated bodies counted without traceback spam,
  and the keep-alive stale-connection retry that fires exactly once
  and never for requests that reached the server.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.api import ProfileSuiteResult, predict_mix
from repro.core.feature import FeatureVector, ProfileVector
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, quantile_from_buckets
from repro.serve import (
    LoadReport,
    MicroBatcher,
    ModelRegistry,
    PredictionResultCache,
    PublishLoad,
    ServeClient,
    canonical_mix,
    run_load,
    start_server,
    start_worker_pool,
)
from repro.workloads.spec import BENCHMARKS

NAMES = ["mcf", "gzip", "art", "vpr"]
WAYS = 16

HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")
reuseport_only = pytest.mark.skipif(
    not HAS_REUSEPORT, reason="SO_REUSEPORT not available on this platform"
)


def _oracle_suite(names=NAMES, machine="4-core-server", salt=0.0):
    return ProfileSuiteResult(
        machine=machine,
        features={n: FeatureVector.oracle(BENCHMARKS[n], 2e8) for n in names},
        profiles={
            n: ProfileVector(
                name=n,
                p_alone=20.0 + 2.0 * i + salt,
                l1rpi=0.4,
                l2rpi=0.05,
                brpi=0.2,
                fppi=0.01 * i,
            )
            for i, n in enumerate(names)
        },
    )


@pytest.fixture(scope="module")
def suite():
    return _oracle_suite()


def _counter(client, name):
    return client.metrics()["counters"].get(name, 0)


# ----------------------------------------------------------------------
# Histogram quantiles (the controller's sensor)
# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    def test_quantile_from_buckets_contract(self):
        assert quantile_from_buckets({}, 0.95) == 0.0
        with pytest.raises(ConfigurationError):
            quantile_from_buckets({0: 1}, 1.5)
        # One bucket: every quantile is its (conservative) upper edge.
        assert quantile_from_buckets({10: 5}, 0.5) == 1e-6 * 2.0**10

    def test_histogram_buckets_feed_windowed_deltas(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for _ in range(10):
            histogram.observe(0.001)
        before = histogram.bucket_counts()
        for _ in range(10):
            histogram.observe(0.1)
        delta = {
            index: count - before.get(index, 0)
            for index, count in histogram.bucket_counts().items()
            if count - before.get(index, 0) > 0
        }
        # The window sees only the slow tail, not the old fast samples.
        assert sum(delta.values()) == 10
        assert quantile_from_buckets(delta, 0.95) >= 0.1
        assert histogram.quantile(0.5) < 0.01
        # The export schema is pinned elsewhere; buckets must not leak.
        assert set(histogram.to_dict()) == {"count", "sum", "min", "max", "mean"}


# ----------------------------------------------------------------------
# Result cache (unit)
# ----------------------------------------------------------------------
class TestPredictionResultCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PredictionResultCache(0)

    def test_canonical_mix_is_order_insensitive(self):
        assert canonical_mix(["b", "a", "b"]) == ("a", "b", "b")
        assert PredictionResultCache.key("d", 16, ["b", "a"]) == (
            PredictionResultCache.key("d", 16, ["a", "b"])
        )

    def test_roundtrip_is_bit_identical(self, suite):
        cache = PredictionResultCache(8)
        mix = ["vpr", "mcf", "gzip"]
        local = predict_mix(mix, suite, ways=WAYS)
        cache.put("digest", WAYS, mix, local.prediction)
        restored = cache.get("digest", WAYS, mix)
        assert restored.to_dict() == local.prediction.to_dict()

    def test_permuted_hit_matches_cold_solve_of_that_order(self, suite):
        # One cached solve serves every ordering of the multiset, and
        # the restored prediction equals what a cold solve of the
        # permuted request would have produced — float for float.
        cache = PredictionResultCache(8)
        mix = ["vpr", "mcf", "gzip", "mcf"]
        cache.put("digest", WAYS, mix, predict_mix(mix, suite, ways=WAYS).prediction)
        for permuted in (
            ["mcf", "mcf", "gzip", "vpr"],
            ["gzip", "vpr", "mcf", "mcf"],
        ):
            hit = cache.get("digest", WAYS, permuted)
            cold = predict_mix(permuted, suite, ways=WAYS).prediction
            assert hit.to_dict() == cold.to_dict()
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 0

    def test_distinct_digest_and_ways_are_distinct_entries(self, suite):
        cache = PredictionResultCache(8)
        mix = ["mcf", "gzip"]
        prediction = predict_mix(mix, suite, ways=WAYS).prediction
        cache.put("digest-a", WAYS, mix, prediction)
        assert cache.get("digest-b", WAYS, mix) is None
        assert cache.get("digest-a", WAYS + 1, mix) is None
        assert cache.get("digest-a", WAYS, mix) is not None

    def test_lru_eviction_is_bounded_and_counted(self, suite):
        cache = PredictionResultCache(2)
        prediction = predict_mix(["mcf"], suite, ways=WAYS).prediction
        cache.put("d", WAYS, ["mcf"], prediction)
        cache.put("d", WAYS, ["gzip"], prediction)
        assert cache.get("d", WAYS, ["mcf"]) is not None  # refresh recency
        cache.put("d", WAYS, ["art"], prediction)  # evicts gzip, not mcf
        assert len(cache) == 2
        assert cache.get("d", WAYS, ["gzip"]) is None
        assert cache.get("d", WAYS, ["mcf"]) is not None
        assert cache.stats()["evictions"] == 1

    def test_frequency_ratios_never_collide(self, suite):
        # The same mix at two DVFS ratios solves to two different
        # equilibria; the cache must keep them as distinct entries.
        cache = PredictionResultCache(8)
        mix = ["mcf", "gzip"]
        slow = predict_mix(
            mix, suite, ways=WAYS, frequency_ratios=[0.6, 1.0]
        ).prediction
        fast = predict_mix(
            mix, suite, ways=WAYS, frequency_ratios=[1.0, 0.8]
        ).prediction
        assert PredictionResultCache.key(
            "d", WAYS, mix, [0.6, 1.0]
        ) != PredictionResultCache.key("d", WAYS, mix, [1.0, 0.8])
        cache.put("d", WAYS, mix, slow, [0.6, 1.0])
        assert cache.get("d", WAYS, mix) is None
        assert cache.get("d", WAYS, mix, [1.0, 0.8]) is None
        cache.put("d", WAYS, mix, fast, [1.0, 0.8])
        assert len(cache) == 2
        assert cache.get(
            "d", WAYS, mix, [0.6, 1.0]
        ).to_dict() == slow.to_dict()
        assert cache.get(
            "d", WAYS, mix, [1.0, 0.8]
        ).to_dict() == fast.to_dict()

    def test_unit_ratios_share_the_plain_entry(self, suite):
        # All-unit ratios are the model's None normalization: one key.
        mix = ["mcf", "gzip"]
        assert PredictionResultCache.key(
            "d", WAYS, mix, [1.0, 1.0]
        ) == PredictionResultCache.key("d", WAYS, mix)
        cache = PredictionResultCache(8)
        prediction = predict_mix(mix, suite, ways=WAYS).prediction
        cache.put("d", WAYS, mix, prediction)
        hit = cache.get("d", WAYS, mix, [1.0, 1.0])
        assert hit is not None and hit.to_dict() == prediction.to_dict()

    def test_ratio_hit_restores_duplicate_name_order(self, suite):
        # The nasty permutation: one name at two ratios.  The restore
        # permutation must track (name, ratio) pairs, not names alone.
        cache = PredictionResultCache(8)
        mix = ["mcf", "mcf"]
        ratios = [1.0, 0.7]
        solved = predict_mix(
            mix, suite, ways=WAYS, frequency_ratios=ratios
        ).prediction
        cache.put("d", WAYS, mix, solved, ratios)
        hit = cache.get("d", WAYS, mix, [0.7, 1.0])  # swapped order
        cold = predict_mix(
            mix, suite, ways=WAYS, frequency_ratios=[0.7, 1.0]
        ).prediction
        assert hit.to_dict() == cold.to_dict()


# ----------------------------------------------------------------------
# Result cache (served end-to-end)
# ----------------------------------------------------------------------
class TestServedResultCache:
    def test_cache_hit_response_is_bit_identical(self, suite):
        with start_server({"default": suite}) as handle:
            with ServeClient(handle.host, handle.port) as client:
                mix = ["art", "mcf", "gzip"]
                cold = client.predict(mix, ways=WAYS)
                hits_before = _counter(client, "serve.cache.hits")
                hot = client.predict(mix, ways=WAYS)
                assert _counter(client, "serve.cache.hits") == hits_before + 1
                assert hot == cold
                assert hot["prediction"] == predict_mix(
                    mix, suite, ways=WAYS
                ).to_dict()

    def test_permuted_request_hits_and_stays_bit_identical(self, suite):
        with start_server({"default": suite}) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.predict(["vpr", "mcf", "gzip"], ways=WAYS)
                hits_before = _counter(client, "serve.cache.hits")
                permuted = ["gzip", "vpr", "mcf"]
                hot = client.predict(permuted, ways=WAYS)
                assert _counter(client, "serve.cache.hits") == hits_before + 1
                assert hot["prediction"] == predict_mix(
                    permuted, suite, ways=WAYS
                ).to_dict()

    def test_served_frequency_ratios_never_collide(self, suite):
        # Two DVFS ratios of the same mix must serve two different
        # predictions — the second request may not hit the first's
        # cache entry — and each must equal the local solve.
        with start_server({"default": suite}) as handle:
            with ServeClient(handle.host, handle.port) as client:
                mix = ["mcf", "gzip"]
                slow = client.predict(
                    mix, ways=WAYS, frequency_ratios=[0.6, 1.0]
                )
                hits_before = _counter(client, "serve.cache.hits")
                fast = client.predict(
                    mix, ways=WAYS, frequency_ratios=[1.0, 0.8]
                )
                assert _counter(client, "serve.cache.hits") == hits_before
                assert slow["prediction"] != fast["prediction"]
                assert slow["prediction"] == predict_mix(
                    mix, suite, ways=WAYS, frequency_ratios=[0.6, 1.0]
                ).to_dict()
                assert fast["prediction"] == predict_mix(
                    mix, suite, ways=WAYS, frequency_ratios=[1.0, 0.8]
                ).to_dict()
                # Repeats of either ratio hit their own entries.
                again = client.predict(
                    mix, ways=WAYS, frequency_ratios=[0.6, 1.0]
                )
                assert _counter(client, "serve.cache.hits") == hits_before + 1
                assert again == slow

    def test_served_frequency_ratio_validation(self, suite):
        with start_server({"default": suite}) as handle:
            with ServeClient(handle.host, handle.port) as client:
                from repro.serve.client import ServeClientError

                with pytest.raises(ServeClientError, match="frequency_ratios"):
                    client.predict(
                        ["mcf", "gzip"], ways=WAYS, frequency_ratios=[0.5]
                    )
                with pytest.raises(ServeClientError, match="positive"):
                    client.predict(
                        ["mcf", "gzip"],
                        ways=WAYS,
                        frequency_ratios=[-1.0, 1.0],
                    )

    def test_disabled_cache_never_hits(self, suite):
        with start_server({"default": suite}, result_cache_size=0) as handle:
            with ServeClient(handle.host, handle.port) as client:
                first = client.predict(["mcf", "gzip"], ways=WAYS)
                second = client.predict(["mcf", "gzip"], ways=WAYS)
                assert first == second
                counters = client.metrics()["counters"]
                assert "serve.cache.hits" not in counters
                assert "serve.cache.misses" not in counters

    def test_hot_swap_is_a_cache_miss_against_new_version(self, suite):
        # Regression pin for the stale-hit bug class: publishing
        # suite@2 must make the next /v1/predict a MISS re-solved
        # against the new content — a hit on the old entry would serve
        # stale physics for the new model.
        with start_server({"swap": suite}) as handle:
            with ServeClient(handle.host, handle.port) as client:
                mix = ["mcf", "gzip"]
                old = client.predict(mix, ways=WAYS, model="swap")
                assert old["model"] == "swap@1"
                client.predict(mix, ways=WAYS, model="swap")  # warm the cache
                hits_before = _counter(client, "serve.cache.hits")
                misses_before = _counter(client, "serve.cache.misses")
                swaps_before = _counter(client, "serve.models.hot_swaps")

                published = client.publish(
                    "swap", _oracle_suite(salt=5.0).to_dict()
                )
                assert published["version"] == 2
                fresh = client.predict(mix, ways=WAYS, model="swap")
                assert fresh["model"] == "swap@2"
                assert fresh["digest"] == published["digest"]
                assert fresh["prediction"] != old["prediction"]
                assert _counter(client, "serve.cache.hits") == hits_before
                assert _counter(client, "serve.cache.misses") == misses_before + 1
                assert _counter(client, "serve.models.hot_swaps") == swaps_before + 1
                # The swapped-in version is now warm under its own digest.
                again = client.predict(mix, ways=WAYS, model="swap")
                assert again == fresh
                assert _counter(client, "serve.cache.hits") == hits_before + 1
                # Pinned requests against @1 still serve the old content.
                pinned = client.predict(mix, ways=WAYS, model="swap@1")
                assert pinned["prediction"] == old["prediction"]

    def test_registry_listener_fires_only_on_new_versions(self, suite):
        registry = ModelRegistry()
        events = []
        registry.add_listener(
            lambda artifact, previous: events.append(
                (artifact.version, previous.version if previous else None)
            )
        )
        registry.publish("m", suite)
        registry.publish("m", suite)  # idempotent: no event
        registry.publish("m", _oracle_suite(salt=1.0))
        assert events == [(1, None), (2, 1)]


# ----------------------------------------------------------------------
# SLO-adaptive batching
# ----------------------------------------------------------------------
class _IdleEngine:
    def predict_mixes(self, mixes):
        return list(mixes)

    def close(self):
        pass


def _controlled_batcher(target_p95_s=0.01):
    batcher = MicroBatcher(
        _IdleEngine(),
        max_batch_size=32,
        max_linger_s=0.002,
        target_p95_s=target_p95_s,
        control_interval_s=0.0,
        control_min_samples=4,
    )
    return batcher, batcher.controller


class TestAdaptiveBatchController:
    def test_requires_positive_target(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(_IdleEngine(), target_p95_s=0.0)

    def test_multiplicative_decrease_on_slo_breach(self):
        batcher, controller = _controlled_batcher()
        histogram = batcher.metrics.histogram("serve.predict.latency_s")
        for _ in range(8):
            histogram.observe(0.1)  # way above the 10 ms target
        controller.maybe_adapt(now=0.0)
        assert controller.level == pytest.approx(0.5)
        assert batcher.max_batch_size == 16
        assert batcher.max_linger_s == pytest.approx(0.001)
        counters = batcher.metrics.to_dict()["counters"]
        assert counters["serve.batch.adaptive.decrease"] == 1
        gauges = batcher.metrics.to_dict()["gauges"]
        assert gauges["serve.batch.adaptive.level"] == pytest.approx(0.5)
        assert gauges["serve.slo.p95_s"] > 0.01

    def test_additive_increase_when_comfortably_under_target(self):
        batcher, controller = _controlled_batcher()
        histogram = batcher.metrics.histogram("serve.predict.latency_s")
        for _ in range(8):
            histogram.observe(0.1)
        controller.maybe_adapt(now=0.0)  # decrease to 0.5 first
        for _ in range(20):
            histogram.observe(0.0001)  # far below the low watermark
        controller.maybe_adapt(now=1.0)
        assert controller.level == pytest.approx(0.58)
        counters = batcher.metrics.to_dict()["counters"]
        assert counters["serve.batch.adaptive.increase"] == 1
        assert batcher.max_batch_size == round(0.58 * 32)

    def test_at_full_level_low_latency_changes_nothing(self):
        batcher, controller = _controlled_batcher()
        histogram = batcher.metrics.histogram("serve.predict.latency_s")
        for _ in range(8):
            histogram.observe(0.0001)
        controller.maybe_adapt(now=0.0)
        assert controller.level == 1.0
        assert batcher.max_batch_size == 32
        counters = batcher.metrics.to_dict()["counters"]
        assert "serve.batch.adaptive.increase" not in counters

    def test_window_is_a_delta_not_cumulative(self):
        # Old slow samples must not keep triggering decreases forever.
        batcher, controller = _controlled_batcher()
        histogram = batcher.metrics.histogram("serve.predict.latency_s")
        for _ in range(8):
            histogram.observe(0.1)
        controller.maybe_adapt(now=0.0)
        level_after_first = controller.level
        controller.maybe_adapt(now=1.0)  # no new samples: below min_samples
        assert controller.level == level_after_first

    def test_level_never_falls_below_floor(self):
        batcher, controller = _controlled_batcher()
        histogram = batcher.metrics.histogram("serve.predict.latency_s")
        for tick in range(12):
            for _ in range(8):
                histogram.observe(0.5)
            controller.maybe_adapt(now=float(tick))
        assert controller.level == pytest.approx(controller.level_floor)
        assert batcher.max_batch_size >= 1
        assert batcher.max_linger_s >= 0.0

    def test_served_slo_pressure_drops_the_level(self, suite):
        # End to end: an impossible 1 µs p95 target must force the
        # controller visibly below full aggressiveness on real traffic.
        handle = start_server(
            {"default": suite}, target_p95_ms=0.001, result_cache_size=0
        )
        try:
            with ServeClient(handle.host, handle.port) as client:
                mixes = [[a, b] for a in NAMES for b in NAMES]
                for _ in range(3):
                    for mix in mixes:
                        client.predict(mix, ways=WAYS)
                gauges = client.metrics()["gauges"]
                assert gauges["serve.batch.adaptive.level"] < 1.0
                assert _counter(client, "serve.batch.adaptive.decrease") >= 1
                # Throttled batching must not change results.
                response = client.predict(["mcf", "gzip"], ways=WAYS)
                assert response["prediction"] == predict_mix(
                    ["mcf", "gzip"], suite, ways=WAYS
                ).to_dict()
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
@reuseport_only
class TestWorkerPool:
    def test_two_workers_serve_bit_identical_predictions(self, suite, tmp_path):
        suite_path = tmp_path / "suite.json"
        suite.save(suite_path)
        local = predict_mix(["mcf", "gzip"], str(suite_path), ways=WAYS).to_dict()
        with start_worker_pool(
            {"default": str(suite_path)}, http_workers=2, boot_timeout_s=120.0
        ) as pool:
            assert pool.workers == 2
            assert all(pool.alive())
            seen_workers = {}
            # Fresh connection per request: the kernel hashes each new
            # source port independently, so both workers get traffic.
            for _ in range(40):
                with ServeClient(pool.host, pool.port) as client:
                    response = client.predict(["mcf", "gzip"], ways=WAYS)
                    worker = client.last_headers["x-repro-worker"]
                seen_workers[worker] = response["prediction"]
                if len(seen_workers) == 2:
                    break
            assert len(seen_workers) == 2, "kernel never balanced to worker 2"
            for prediction in seen_workers.values():
                assert prediction == local
        assert not any(pool.alive())
        pool.stop()  # idempotent

    def test_pool_validation(self, suite):
        with pytest.raises(ConfigurationError, match="http_workers"):
            start_worker_pool({"default": suite}, http_workers=0)
        with pytest.raises(ConfigurationError, match="at least one model"):
            start_worker_pool({}, http_workers=2)


# ----------------------------------------------------------------------
# HTTP edge cases (the bugfix sweep)
# ----------------------------------------------------------------------
def _raw_request(host, port, payload: bytes, declared_length):
    """Send one hand-rolled POST and return the raw response bytes."""
    with socket.create_connection((host, port), timeout=10) as sock:
        head = (
            "POST /v1/predict HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {declared_length}\r\n"
            "Connection: close\r\n\r\n"
        )
        sock.sendall(head.encode("latin-1") + payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


class TestHttpEdgeCases:
    @pytest.fixture(scope="class")
    def small_body_server(self, suite):
        handle = start_server({"default": suite}, max_body_bytes=256)
        yield handle
        handle.stop()

    def test_oversized_declared_body_is_rejected_unread(
        self, small_body_server
    ):
        # Declare far more than max_body_bytes but send NOTHING: the
        # 413 must arrive anyway, proving the ceiling is enforced on
        # the declared size before readexactly ever runs.
        handle = small_body_server
        with ServeClient(handle.host, handle.port) as client:
            oversized_before = _counter(client, "serve.http.oversized_request")
        raw = _raw_request(handle.host, handle.port, b"", 100_000)
        assert raw.startswith(b"HTTP/1.1 413 ")
        assert b"exceeds 256 bytes" in raw
        with ServeClient(handle.host, handle.port) as client:
            assert (
                _counter(client, "serve.http.oversized_request")
                == oversized_before + 1
            )
            # The server survives: a small request still works.
            assert client.predict(["mcf"], ways=WAYS)["model"] == "default@1"

    @pytest.mark.parametrize("bad_length", ["-5", "nonsense"])
    def test_bad_content_length_is_a_400_not_a_crash(
        self, small_body_server, bad_length
    ):
        handle = small_body_server
        raw = _raw_request(handle.host, handle.port, b"", bad_length)
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"bad Content-Length" in raw
        # The listener is still healthy afterwards.
        with ServeClient(handle.host, handle.port) as client:
            assert client.healthz() == {"status": "ok"}

    def test_truncated_body_is_counted_not_logged(self, small_body_server):
        handle = small_body_server
        with ServeClient(handle.host, handle.port) as client:
            truncated_before = _counter(client, "serve.http.truncated_request")
            # Declare 100 bytes, send 10, hang up mid-body.
            with socket.create_connection(
                (handle.host, handle.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/predict HTTP/1.1\r\n"
                    b"Content-Length: 100\r\n\r\n"
                    b'{"model": "'
                )
            deadline = time.time() + 5
            while time.time() < deadline:
                if (
                    _counter(client, "serve.http.truncated_request")
                    == truncated_before + 1
                ):
                    break
                time.sleep(0.02)
            assert (
                _counter(client, "serve.http.truncated_request")
                == truncated_before + 1
            )
            assert client.healthz() == {"status": "ok"}


# ----------------------------------------------------------------------
# Client keep-alive retry semantics
# ----------------------------------------------------------------------
_OK_BODY = json.dumps({"status": "ok"}).encode()
_OK_RESPONSE = (
    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
    b"Content-Length: %d\r\nConnection: keep-alive\r\n\r\n%s"
    % (len(_OK_BODY), _OK_BODY)
)


def _read_request(connection) -> bytes:
    """Read one request's head + declared body off a blocking socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = connection.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
            while len(body) < length:
                body += connection.recv(65536)
    return data


class _ScriptedServer(threading.Thread):
    """Accepts connections and runs ``script(index, connection)`` each."""

    def __init__(self, script):
        super().__init__(daemon=True)
        self.script = script
        self.accepted = 0
        self.requests_seen = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._halt = threading.Event()
        self.start()

    def run(self):
        while not self._halt.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            index = self.accepted
            self.accepted += 1
            try:
                self.script(self, index, connection)
            finally:
                connection.close()
        self._listener.close()

    def stop(self):
        self._halt.set()
        self.join(timeout=10)


class TestClientStaleConnectionRetry:
    def test_stale_keepalive_is_retried_exactly_once(self):
        # Connection 0 serves one response then closes (idle-timeout
        # shape); the client's second request must transparently land
        # on connection 1.
        def script(server, index, connection):
            if _read_request(connection):
                server.requests_seen += 1
                connection.sendall(_OK_RESPONSE)
            # close() after one request: the reused connection goes stale

        server = _ScriptedServer(script)
        try:
            client = ServeClient("127.0.0.1", server.port, timeout=10)
            assert client.healthz() == {"status": "ok"}
            assert client.healthz() == {"status": "ok"}  # retried internally
            client.close()
            assert server.requests_seen == 2
            assert server.accepted == 2
        finally:
            server.stop()

    def test_fresh_connection_failure_is_not_retried(self):
        # A server that hangs up before responding, even to the first
        # request: no reuse happened, so retrying is forbidden.
        def script(server, index, connection):
            _read_request(connection)
            server.requests_seen += 1
            # close without responding

        server = _ScriptedServer(script)
        try:
            client = ServeClient("127.0.0.1", server.port, timeout=10)
            with pytest.raises(Exception):
                client.healthz()
            client.close()
            time.sleep(0.1)
            assert server.requests_seen == 1  # exactly one attempt
        finally:
            server.stop()

    def test_response_timeout_is_never_retried(self):
        # The request reached the server; only the response is late.
        # Retrying would double-execute it — the client must raise.
        hold = threading.Event()

        def script(server, index, connection):
            _read_request(connection)
            server.requests_seen += 1
            hold.wait(timeout=5)

        server = _ScriptedServer(script)
        try:
            client = ServeClient("127.0.0.1", server.port, timeout=0.3)
            with pytest.raises(socket.timeout):
                client.healthz()
            client.close()
            hold.set()
            time.sleep(0.1)
            assert server.requests_seen == 1
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Sustained mixed read/publish load harness
# ----------------------------------------------------------------------
class TestLoadHarness:
    def test_sustained_mixed_read_publish_meets_slo(self, suite):
        with start_server({"default": suite, "swap": suite}) as handle:
            report = run_load(
                handle.host,
                handle.port,
                [[a, b] for a in NAMES for b in NAMES],
                ways=WAYS,
                concurrency=4,
                duration_s=0.8,
                publish=PublishLoad(
                    name="swap",
                    documents=[
                        _oracle_suite(salt=1.0).to_dict(),
                        _oracle_suite(salt=2.0).to_dict(),
                    ],
                    interval_s=0.05,
                ),
            )
            # Sustained mode: far more attempts than the 16 seed mixes.
            assert report.requests > len(NAMES) ** 2
            assert report.completed == report.requests
            assert report.published >= 2
            report.check_slo(
                max_p95_s=5.0,
                max_shed_rate=0.0,
                max_error_rate=0.0,
                min_throughput_rps=1.0,
            )
            # The publisher actually hot-swapped (documents alternate).
            with ServeClient(handle.host, handle.port) as client:
                assert _counter(client, "serve.models.hot_swaps") >= 2

    def test_check_slo_raises_listing_every_violation(self):
        report = LoadReport(
            requests=100,
            completed=80,
            shed=10,
            errors=10,
            duration_s=10.0,
            latencies_s=[0.5] * 80,
            publish_errors=3,
        )
        with pytest.raises(AssertionError) as err:
            report.check_slo(
                max_p95_s=0.1,
                max_shed_rate=0.01,
                max_error_rate=0.0,
                min_throughput_rps=1000.0,
            )
        message = str(err.value)
        for fragment in ("p95", "shed rate", "error rate", "publish", "req/s"):
            assert fragment in message

    def test_one_shot_mode_counts_each_mix_once(self, suite):
        with start_server({"default": suite}) as handle:
            mixes = [["mcf"], ["gzip"], ["art"]]
            report = run_load(
                handle.host, handle.port, mixes, ways=WAYS, concurrency=8
            )
            assert report.requests == len(mixes)
            assert report.completed == len(mixes)


# ----------------------------------------------------------------------
# CLI multi-worker path
# ----------------------------------------------------------------------
@reuseport_only
class TestCliServeWorkers:
    def test_http_workers_flag_serves_and_drains_on_sigterm(
        self, suite, tmp_path
    ):
        suite_path = tmp_path / "suite.json"
        suite.save(suite_path)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--suite", str(suite_path), "--port", "0",
                "--http-workers", "2", "--target-p95-ms", "250",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line, line
            host, port = line.rsplit("http://", 1)[1].strip().rsplit(":", 1)
            with ServeClient(host, int(port)) as client:
                response = client.predict(["mcf", "gzip"], ways=WAYS)
                assert "x-repro-worker" in client.last_headers
            assert response["prediction"] == predict_mix(
                ["mcf", "gzip"], str(suite_path), ways=WAYS
            ).to_dict()
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
            stderr = process.stderr.read()
            assert process.returncode == 0
            assert "2 workers" in stderr
            assert "drained and stopped" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
