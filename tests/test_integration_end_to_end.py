"""End-to-end integration tests: the paper's full pipelines at small scale.

These tie everything together: profiling through stressmark co-runs,
equilibrium prediction vs emergent simulator behaviour, power-model
training vs meter readings, and the combined profiles-only estimate vs
a measured run.
"""

import pytest

from repro.config import SimulationScale
from repro.core.feature import FeatureVector
from repro.core.performance_model import PerformanceModel
from repro.machine.simulator import MachineSimulation, PowerEnvironment
from repro.machine.topology import four_core_server
from repro.workloads.spec import BENCHMARKS

SCALE = SimulationScale(
    warmup_accesses=3_000,
    measure_accesses=10_000,
    warmup_s=0.004,
    measure_s=0.012,
    hpc_period_s=0.001,
    timeslice_s=0.0008,
)


@pytest.fixture(scope="module")
def topology():
    return four_core_server(sets=64)


@pytest.fixture(scope="module")
def oracle_model(topology):
    model = PerformanceModel(ways=16)
    for name in ("mcf", "art", "gzip", "twolf"):
        model.register(FeatureVector.oracle(BENCHMARKS[name], topology.frequency_hz))
    return model


class TestPerformancePredictionVsSimulator:
    """The equilibrium model must predict the emergent steady state."""

    @pytest.mark.parametrize(
        "pair", [("mcf", "art"), ("mcf", "mcf"), ("gzip", "twolf"), ("art", "twolf")]
    )
    def test_occupancy_within_one_way(self, topology, oracle_model, pair):
        sim = MachineSimulation(
            topology,
            {0: [BENCHMARKS[pair[0]]], 1: [BENCHMARKS[pair[1]]]},
            scale=SCALE,
            seed=5,
        )
        result = sim.run_accesses()
        prediction = oracle_model.predict(list(pair))
        for slot in range(2):
            measured = result.processes[slot].occupancy_ways
            predicted = prediction[slot].effective_size
            assert predicted == pytest.approx(measured, abs=1.0)

    @pytest.mark.parametrize("pair", [("mcf", "art"), ("gzip", "mcf")])
    def test_spi_within_ten_percent(self, topology, oracle_model, pair):
        sim = MachineSimulation(
            topology,
            {0: [BENCHMARKS[pair[0]]], 1: [BENCHMARKS[pair[1]]]},
            scale=SCALE,
            seed=6,
        )
        result = sim.run_accesses()
        prediction = oracle_model.predict(list(pair))
        for slot in range(2):
            measured = result.processes[slot].spi
            predicted = prediction[slot].spi
            assert abs(predicted - measured) / measured < 0.10


class TestProfiledPipeline:
    """Stressmark profiling then prediction, all from measurements."""

    def test_profiled_prediction_close_to_truth(self, topology):
        from repro.profiling.profiler import profile_process

        model = PerformanceModel(ways=16)
        for index, name in enumerate(("mcf", "twolf")):
            profile = profile_process(
                BENCHMARKS[name],
                topology,
                scale=SCALE,
                seed=31 + index,
                sweep_ways=[14, 12, 10, 8, 6, 4, 2],
            )
            model.register(profile.feature)
        sim = MachineSimulation(
            topology,
            {0: [BENCHMARKS["mcf"]], 1: [BENCHMARKS["twolf"]]},
            scale=SCALE,
            seed=77,
        )
        result = sim.run_accesses()
        prediction = model.predict(["mcf", "twolf"])
        for slot in range(2):
            measured = result.processes[slot]
            predicted = prediction[slot]
            assert abs(predicted.mpa - measured.mpa) < 0.08
            assert abs(predicted.spi - measured.spi) / measured.spi < 0.15


class TestPowerPipeline:
    """Train Eq. 9 on uniform runs, validate on a mixed assignment."""

    def test_power_estimate_tracks_meter(self, topology):
        env = PowerEnvironment.for_topology(topology, seed=11)
        from repro.core.power_model import CorePowerModel, PowerTrainingSet

        training = PowerTrainingSet()
        cores = list(range(topology.num_cores))
        for index, name in enumerate(("gzip", "mcf", "art", "twolf")):
            sim = MachineSimulation(
                topology,
                {core: [BENCHMARKS[name]] for core in cores},
                scale=SCALE,
                seed=100 + index,
                power_env=env,
            )
            result = sim.run_duration()
            windows = min(
                len(result.power), *(len(result.hpc_by_core[c]) for c in cores)
            )
            for w in range(windows):
                per_core = [result.hpc_by_core[c][w].rates for c in cores]
                training.add_uniform_run(per_core, result.power.measured_watts[w])
        idle = MachineSimulation(
            topology, {}, scale=SCALE, seed=200, power_env=env
        ).run_duration()
        model = CorePowerModel().fit(
            training, idle_core_watts=idle.power.mean_measured / 4
        )

        mixed = MachineSimulation(
            topology,
            {0: [BENCHMARKS["mcf"]], 1: [BENCHMARKS["gzip"]], 2: [BENCHMARKS["art"]]},
            scale=SCALE,
            seed=300,
            power_env=env,
        ).run_duration()
        windows = min(
            len(mixed.power), *(len(mixed.hpc_by_core[c]) for c in cores)
        )
        estimates = [
            model.processor_power(
                [mixed.hpc_by_core[c][w].rates for c in cores]
            )
            for w in range(windows)
        ]
        measured_mean = sum(mixed.power.measured_watts[:windows]) / windows
        estimated_mean = sum(estimates) / windows
        assert abs(estimated_mean - measured_mean) / measured_mean < 0.10
