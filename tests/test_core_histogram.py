"""Unit tests for ReuseDistanceHistogram (Eq. 2)."""

import math

import numpy as np
import pytest

from repro.core.histogram import ReuseDistanceHistogram
from repro.errors import ConfigurationError


class TestConstruction:
    def test_normalisation(self):
        hist = ReuseDistanceHistogram([2.0, 2.0], inf_mass=1.0)
        assert hist.probs[0] == pytest.approx(0.4)
        assert hist.inf_mass == pytest.approx(0.2)

    def test_from_counts_with_inf(self):
        hist = ReuseDistanceHistogram.from_counts({0: 3, 2: 1, math.inf: 1})
        assert hist.probability(0) == pytest.approx(0.6)
        assert hist.probability(1) == 0.0
        assert hist.inf_mass == pytest.approx(0.2)

    def test_from_pairs(self):
        hist = ReuseDistanceHistogram.from_pairs([(0, 0.5), (3, 0.5)])
        assert hist.max_distance == 3

    def test_point_mass(self):
        hist = ReuseDistanceHistogram.point_mass(4)
        assert hist.probability(4) == 1.0
        assert hist.mpa(4) == pytest.approx(1.0)
        assert hist.mpa(5) == pytest.approx(0.0)

    def test_rejects_negative_mass(self):
        with pytest.raises(ConfigurationError):
            ReuseDistanceHistogram([-0.1, 1.0])

    def test_rejects_empty_mass(self):
        with pytest.raises(ConfigurationError):
            ReuseDistanceHistogram([0.0, 0.0], inf_mass=0.0)

    def test_rejects_negative_distances(self):
        with pytest.raises(ConfigurationError):
            ReuseDistanceHistogram.from_counts({-1: 1.0})


class TestMpa:
    """The Eq. 2 tail: MPA(S) = P(distance >= S)."""

    def test_mpa_at_zero_is_one(self):
        hist = ReuseDistanceHistogram([0.5, 0.5])
        assert hist.mpa(0) == pytest.approx(1.0)

    def test_mpa_is_tail_probability(self):
        hist = ReuseDistanceHistogram([0.5, 0.3, 0.2])
        assert hist.mpa(1) == pytest.approx(0.5)
        assert hist.mpa(2) == pytest.approx(0.2)
        assert hist.mpa(3) == pytest.approx(0.0)

    def test_mpa_flattens_at_inf_mass(self):
        hist = ReuseDistanceHistogram([0.7], inf_mass=0.3)
        assert hist.mpa(1) == pytest.approx(0.3)
        assert hist.mpa(100) == pytest.approx(0.3)

    def test_mpa_interpolates_between_integers(self):
        hist = ReuseDistanceHistogram([0.5, 0.5])
        assert hist.mpa(0.5) == pytest.approx(0.75)

    def test_mpa_monotone_non_increasing(self):
        hist = ReuseDistanceHistogram([0.2, 0.1, 0.4, 0.05], inf_mass=0.25)
        sizes = np.linspace(0, 6, 40)
        values = [hist.mpa(s) for s in sizes]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_mpa_curve_vector(self):
        hist = ReuseDistanceHistogram([0.5, 0.5])
        curve = hist.mpa_curve(3)
        assert curve.shape == (4,)
        assert curve[0] == pytest.approx(1.0)

    def test_rejects_negative_size(self):
        hist = ReuseDistanceHistogram([1.0])
        with pytest.raises(ConfigurationError):
            hist.mpa(-1)


class TestStatistics:
    def test_mean_distance(self):
        hist = ReuseDistanceHistogram([0.5, 0.0, 0.5])
        assert hist.mean_distance() == pytest.approx(1.0)

    def test_mean_distance_all_inf(self):
        hist = ReuseDistanceHistogram([0.0], inf_mass=1.0)
        assert hist.mean_distance() == math.inf

    def test_percentile(self):
        hist = ReuseDistanceHistogram([0.5, 0.3, 0.2])
        assert hist.percentile(0.5) == pytest.approx(1.0)
        assert hist.percentile(1.0) == pytest.approx(3.0)

    def test_percentile_unreachable(self):
        hist = ReuseDistanceHistogram([0.5], inf_mass=0.5)
        assert hist.percentile(0.9) == math.inf

    def test_footprint(self):
        hist = ReuseDistanceHistogram([0.5, 0.3, 0.2])
        assert hist.footprint(coverage=0.999) == 3


class TestTransformations:
    def test_truncation_folds_tail_to_inf(self):
        hist = ReuseDistanceHistogram([0.25, 0.25, 0.25, 0.25])
        truncated = hist.truncated(1)
        assert truncated.inf_mass == pytest.approx(0.5)
        # MPA within the kept range is unchanged.
        assert truncated.mpa(1) == pytest.approx(hist.mpa(1))

    def test_mixture(self):
        a = ReuseDistanceHistogram([1.0])
        b = ReuseDistanceHistogram([0.0, 1.0])
        mixed = a.mixed_with(b, weight=0.25)
        assert mixed.probability(0) == pytest.approx(0.25)
        assert mixed.probability(1) == pytest.approx(0.75)

    def test_close_to(self):
        a = ReuseDistanceHistogram([0.5, 0.5])
        b = ReuseDistanceHistogram([0.5, 0.5, 0.0])
        assert a.close_to(b)

    def test_probs_read_only(self):
        hist = ReuseDistanceHistogram([1.0])
        with pytest.raises(ValueError):
            hist.probs[0] = 0.5
