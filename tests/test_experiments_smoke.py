"""Smoke tests for every experiment driver at miniature scale.

These make sure each paper-table driver runs end to end and produces
structurally sane output; the real numbers come from the benchmark
harness at full scale.
"""

import pytest

from repro.config import SimulationScale
from repro.experiments.context import ExperimentContext

TINY_PROFILE = SimulationScale(
    warmup_accesses=1_500,
    measure_accesses=5_000,
    warmup_s=0.003,
    measure_s=0.008,
    hpc_period_s=0.001,
    timeslice_s=0.0008,
)
TINY_RUN = SimulationScale(
    warmup_accesses=2_500,
    measure_accesses=8_000,
    warmup_s=0.004,
    measure_s=0.012,
    hpc_period_s=0.001,
    timeslice_s=0.0008,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(
        machine="4-core-server",
        sets=64,
        seed=7,
        benchmark_names=("gzip", "mcf", "art", "twolf"),
        profile_scale=TINY_PROFILE,
        run_scale=TINY_RUN,
    )


class TestContextCaching:
    def test_profiles_cached(self, context):
        first = context.profiles()
        second = context.profiles()
        assert first is second
        assert set(first) == {"gzip", "mcf", "art", "twolf"}

    def test_models_build(self, context):
        assert context.performance_model().known_processes
        assert context.power_model().fitted
        assert context.combined_model() is context.combined_model()

    def test_get_context_memoised(self):
        from repro.experiments.context import get_context

        a = get_context(sets=32, seed=1, profile_scale=TINY_PROFILE, run_scale=TINY_RUN)
        b = get_context(sets=32, seed=1, profile_scale=TINY_PROFILE, run_scale=TINY_RUN)
        assert a is b


class TestTable1Driver:
    def test_runs_and_renders(self, context):
        from repro.experiments.table1 import run_pairwise_validation

        result = run_pairwise_validation(
            context, pairs=[("mcf", "art"), ("gzip", "gzip")]
        )
        assert {c.name for c in result.cases} <= {"mcf", "art", "gzip"}
        text = result.render()
        assert "SPI E(%)" in text
        # Self-pair collapses to one case.
        gzip_cases = [c for c in result.cases if c.name == "gzip"]
        assert len(gzip_cases) == 1


class TestPowerDrivers:
    def test_model_choice(self, context):
        from repro.experiments.power_training import run_model_choice

        result = run_model_choice(context)
        assert 80.0 < result.mvlr_accuracy_pct < 100.0
        assert result.nn_accuracy_pct >= result.mvlr_accuracy_pct - 2.0
        assert result.coefficients["L2MPS"] < 0  # the paper's negative c3

    def test_power_validation_scenario(self, context):
        from repro.experiments.power_validation import validate_scenario

        result = validate_scenario(
            context, "smoke", [{0: ("mcf",), 1: ("gzip",)}]
        )
        assert result.assignments == 1
        assert result.sample_error.mean < 25.0
        assert result.avg_error.mean < 15.0

    def test_figure2(self, context):
        from repro.experiments.figure2 import run_figure2

        result = run_figure2(context, pool=3)
        assert result.maximum.mean_measured_watts >= result.minimum.mean_measured_watts
        assert len(result.maximum.measured_watts) > 3
        assert "measured" in result.maximum.render()

    def test_table4_scenario(self, context):
        from repro.experiments.table4 import run_table4, render_table4

        scenarios = run_table4(context, limits=[2, 1, 1, 1, 1])
        assert len(scenarios) == 5
        text = render_table4(scenarios)
        assert "1 proc./core" in text


class TestAblationDrivers:
    def test_prefetch(self, context):
        from repro.experiments.prefetch_ablation import run_prefetch_ablation

        result = run_prefetch_ablation(context, names=("gzip", "equake"))
        assert result.best.name == "equake"
        assert result.best.improvement_pct > 2.0

    def test_context_switch(self, context):
        from repro.experiments.context_switch import run_context_switch

        result = run_context_switch(
            context, pair=("gzip", "bzip2"), timeslice_s=0.004, min_slices=6
        )
        assert result.slices_measured >= 4
        assert 0.0 <= result.mean_refill_fraction < 1.0

    def test_solver_ablation(self, context):
        from repro.experiments.ablations import run_solver_ablation

        result = run_solver_ablation(context, pairs=[("mcf", "art"), ("gzip", "mcf")])
        assert result.convergence_rate > 0.4
        assert result.mean_disagreement < 0.5

    def test_replacement_policy_ablation(self, context):
        from repro.experiments.ablations import run_replacement_policy

        cases = run_replacement_policy(
            context, pairs=[("mcf", "art")], policies=("lru", "random")
        )
        lru = next(c for c in cases if c.policy == "lru")
        rnd = next(c for c in cases if c.policy == "random")
        assert lru.mean_spi_error_pct <= rnd.mean_spi_error_pct + 1.0
