"""Unit tests for the equilibrium solvers (Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.equilibrium as equilibrium_module
from repro.core.equilibrium import (
    BisectionSolver,
    EquilibriumProcess,
    NewtonSolver,
    solve_equilibrium,
)
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.occupancy import OccupancyModel
from repro.errors import ConfigurationError, ConvergenceError


def make_process(probs, inf_mass, ways, api=0.05, alpha=5e-8, beta=2e-9):
    hist = ReuseDistanceHistogram(probs, inf_mass)
    return EquilibriumProcess(
        occupancy=OccupancyModel(hist, max_ways=ways),
        mpa=hist.mpa,
        api=api,
        alpha=alpha,
        beta=beta,
    )


WAYS = 16


@pytest.fixture
def heavy():
    """Memory-hungry process: wide reuse + streaming."""
    return make_process([0.05] * 12, 0.4, WAYS, api=0.06)


@pytest.fixture
def light():
    """Small-footprint process: mostly short distances."""
    return make_process([0.5, 0.3, 0.15], 0.05, WAYS, api=0.01, alpha=8e-9)


class TestCapacityConstraint:
    @pytest.mark.parametrize("strategy", ["newton", "bisection"])
    def test_contended_sizes_sum_to_ways(self, heavy, strategy, light):
        result = solve_equilibrium([heavy, heavy, light], WAYS, strategy=strategy)
        assert result.contended
        assert abs(result.total_size - WAYS) <= 1e-9 * WAYS

    @pytest.mark.parametrize("strategy", ["auto", "bisection"])
    def test_capped_process_does_not_break_capacity(self, heavy, strategy):
        """Regression: a saturating process used to leak capacity.

        The old bisection finish rescaled all sizes proportionally and
        clipped at each cap, silently dropping the clipped excess so
        the sizes no longer summed to the associativity.  With a
        finite-footprint process capped well below its proportional
        share, the residual must be redistributed to the others.
        (Newton cannot express this boundary equilibrium — G⁻¹ is
        infinite at saturation — so ``auto`` lands on bisection here.)
        """
        tiny = make_process([0.7, 0.3], 0.0, WAYS, api=0.05)
        cap = tiny.occupancy.saturation_size
        assert cap < WAYS / 3  # genuinely capped
        result = solve_equilibrium([heavy, heavy, tiny], WAYS, strategy=strategy)
        assert result.contended
        assert result.solver == "bisection"
        assert abs(result.total_size - WAYS) <= 1e-9 * WAYS
        assert result.sizes[2] <= cap + 1e-9
        if strategy == "auto":
            # A genuine (unmocked) Newton failure must be surfaced.
            assert result.telemetry.fallback_reason is not None
            assert "newton failed" in result.telemetry.fallback_reason

    def test_uncontended_keeps_footprints(self):
        # Finite footprints (no streaming mass) that fit together: the
        # cache never fills and each process keeps its working set.
        finite = make_process([0.5, 0.3, 0.2], 0.0, WAYS, api=0.01)
        result = solve_equilibrium([finite, finite], WAYS)
        assert not result.contended
        assert result.total_size < WAYS
        for size in result.sizes:
            assert size == pytest.approx(
                finite.occupancy.saturation_size, abs=1e-6
            )

    def test_single_process_gets_saturation(self, heavy):
        result = solve_equilibrium([heavy], WAYS)
        assert result.sizes[0] == pytest.approx(WAYS, abs=1e-6)


class TestSymmetryAndOrdering:
    @pytest.mark.parametrize("strategy", ["newton", "bisection"])
    def test_identical_processes_split_evenly(self, heavy, strategy):
        result = solve_equilibrium([heavy, heavy], WAYS, strategy=strategy)
        assert result.sizes[0] == pytest.approx(result.sizes[1], abs=0.05)
        assert result.sizes[0] == pytest.approx(WAYS / 2, abs=0.1)

    def test_permutation_consistency(self, heavy, light):
        both = solve_equilibrium([heavy, light], WAYS)
        swapped = solve_equilibrium([light, heavy], WAYS)
        assert both.sizes[0] == pytest.approx(swapped.sizes[1], abs=0.05)
        assert both.sizes[1] == pytest.approx(swapped.sizes[0], abs=0.05)

    def test_hungrier_process_gets_more(self, heavy, light):
        # Make contention real by tripling the heavy process.
        result = solve_equilibrium([heavy, heavy, light], WAYS)
        heavy_size, light_size = result.sizes[0], result.sizes[2]
        assert heavy_size > light_size


class TestSolverAgreement:
    def test_newton_and_bisection_agree(self, heavy, light):
        newton = NewtonSolver().solve([heavy, heavy, light], WAYS)
        bisection = BisectionSolver().solve([heavy, heavy, light], WAYS)
        for a, b in zip(newton.sizes, bisection.sizes):
            assert a == pytest.approx(b, abs=0.1)

    def test_auto_strategy_produces_result(self, heavy, light):
        result = solve_equilibrium([heavy, light], WAYS, strategy="auto")
        assert result.solver in ("newton", "bisection")


class TestOutputs:
    def test_mpa_and_spi_consistent_with_sizes(self, heavy, light):
        result = solve_equilibrium([heavy, light], WAYS)
        for process, size, mpa, spi in zip(
            (heavy, light), result.sizes, result.mpas, result.spis
        ):
            assert mpa == pytest.approx(process.mpa(size))
            assert spi == pytest.approx(process.alpha * mpa + process.beta)

    def test_faster_equilibrium_for_lower_alpha(self, heavy):
        """A miss-insensitive competitor keeps accessing fast and wins ways."""
        tolerant = make_process([0.05] * 12, 0.4, WAYS, api=0.06, alpha=5e-9)
        result = solve_equilibrium([heavy, tolerant], WAYS)
        assert result.sizes[1] > result.sizes[0]


class TestTelemetry:
    def test_newton_telemetry_fields(self, heavy, light):
        result = NewtonSolver().solve([heavy, heavy, light], WAYS)
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.strategy == "newton"
        assert telemetry.solver == "newton"
        assert telemetry.jacobian == "analytic"
        assert telemetry.iterations > 0
        assert telemetry.residual_norm < 1e-6
        assert not telemetry.warm_started
        assert telemetry.fallback_reason is None

    def test_fd_jacobian_mode_recorded(self, heavy, light):
        result = NewtonSolver(jacobian="fd").solve([heavy, light], WAYS)
        assert result.telemetry.jacobian == "fd"

    def test_bisection_telemetry(self, heavy, light):
        result = BisectionSolver().solve([heavy, heavy, light], WAYS)
        telemetry = result.telemetry
        assert telemetry.solver == "bisection"
        assert telemetry.jacobian is None
        assert telemetry.iterations > 0

    def test_uncontended_telemetry_is_trivial(self):
        finite = make_process([0.5, 0.3, 0.2], 0.0, WAYS, api=0.01)
        result = solve_equilibrium([finite, finite], WAYS)
        assert result.telemetry.iterations == 0
        assert result.telemetry.residual_norm == 0.0

    def test_auto_strategy_stamped(self, heavy, light):
        result = solve_equilibrium([heavy, light], WAYS, strategy="auto")
        assert result.telemetry.strategy == "auto"
        assert result.telemetry.solver == "newton"

    def test_warm_start_recorded(self, heavy, light):
        result = NewtonSolver().solve(
            [heavy, light], WAYS, initial=[WAYS / 2, WAYS / 2]
        )
        assert result.telemetry.warm_started
        assert abs(result.total_size - WAYS) <= 1e-9 * WAYS

    def test_invalid_jacobian_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            NewtonSolver(jacobian="symbolic")

    def test_analytic_jacobian_matches_fd_at_solution(self, heavy, light):
        solver = NewtonSolver()
        result = solver.solve([heavy, heavy, light], WAYS)
        sizes = np.asarray(result.sizes)
        analytic = solver.jacobian_analytic([heavy, heavy, light], sizes, WAYS)
        fd = solver.jacobian_fd([heavy, heavy, light], sizes, WAYS)
        assert np.allclose(analytic[0], 1.0)
        assert np.allclose(analytic, fd, rtol=5e-3, atol=1e-6)


class TestAutoFallback:
    def test_fallback_reason_recorded(self, heavy, light, monkeypatch):
        """When Newton fails, auto surfaces why in the telemetry."""

        def failing_solve(self, processes, total_ways, initial=None):
            raise ConvergenceError(
                "forced failure", iterations=7, residual=1.23
            )

        monkeypatch.setattr(
            equilibrium_module.NewtonSolver, "solve", failing_solve
        )
        result = solve_equilibrium([heavy, light], WAYS, strategy="auto")
        assert result.solver == "bisection"
        telemetry = result.telemetry
        assert telemetry.strategy == "auto"
        assert telemetry.fallback_reason is not None
        assert "forced failure" in telemetry.fallback_reason
        assert "7 iterations" in telemetry.fallback_reason

    def test_double_failure_chains_newton_error(self, heavy, light, monkeypatch):
        """Regression: the Newton error used to be silently discarded."""

        def newton_fails(self, processes, total_ways, initial=None):
            raise ConvergenceError("newton exploded", iterations=3, residual=9.9)

        def bisection_fails(self, processes, total_ways):
            raise ConvergenceError("bracket lost", iterations=11)

        monkeypatch.setattr(
            equilibrium_module.NewtonSolver, "solve", newton_fails
        )
        monkeypatch.setattr(
            equilibrium_module.BisectionSolver, "solve", bisection_fails
        )
        with pytest.raises(ConvergenceError) as excinfo:
            solve_equilibrium([heavy, light], WAYS, strategy="auto")
        # Both diagnostics in the message, Newton error on the chain.
        assert "newton exploded" in str(excinfo.value)
        assert "bracket lost" in str(excinfo.value)
        cause = excinfo.value.__cause__
        assert isinstance(cause, ConvergenceError)
        assert cause.iterations == 3

    def test_newton_strategy_propagates_error(self, heavy, light, monkeypatch):
        def newton_fails(self, processes, total_ways, initial=None):
            raise ConvergenceError("newton exploded", iterations=3)

        monkeypatch.setattr(
            equilibrium_module.NewtonSolver, "solve", newton_fails
        )
        with pytest.raises(ConvergenceError, match="newton exploded"):
            solve_equilibrium([heavy, light], WAYS, strategy="newton")


class TestValidation:
    def test_empty_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_equilibrium([], WAYS)

    def test_more_processes_than_ways_rejected(self, light):
        with pytest.raises(ConfigurationError):
            solve_equilibrium([light] * (WAYS + 1), WAYS)

    def test_unknown_strategy_rejected(self, light):
        with pytest.raises(ConfigurationError):
            solve_equilibrium([light], WAYS, strategy="gradient")

    def test_equilibrium_process_validation(self):
        hist = ReuseDistanceHistogram([1.0])
        occupancy = OccupancyModel(hist, max_ways=4)
        with pytest.raises(ConfigurationError):
            EquilibriumProcess(
                occupancy=occupancy, mpa=hist.mpa, api=0.0, alpha=1e-8, beta=1e-9
            )
        with pytest.raises(ConfigurationError):
            EquilibriumProcess(
                occupancy=occupancy, mpa=hist.mpa, api=0.01, alpha=1e-8, beta=0.0
            )


class TestRedistributeToCapacity:
    """Σ = A closure invariant under adversarial cap vectors.

    ``_redistribute_to_capacity`` is the solvers' last step before the
    Eq. 1 assertion, so it must close the capacity sum for *any* cap
    vector — zero caps, all-capped inputs, zero free mass — not just
    the well-conditioned ones Newton produces.
    """

    @staticmethod
    def _check(sizes, caps, total):
        from repro.core.equilibrium import _redistribute_to_capacity

        out = _redistribute_to_capacity(sizes, caps, total)
        assert len(out) == len(sizes)
        for value, cap in zip(out, caps):
            assert value >= 0.0
            assert value <= cap + 1e-9 * max(1.0, cap)
        if sum(caps) <= total:
            # Infeasible: everyone is left at cap (documented edge).
            assert out == [float(c) for c in caps]
        else:
            assert abs(sum(out) - total) <= 1e-9 * max(1.0, total)
        return out

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=32.0),  # size
                st.floats(min_value=0.0, max_value=32.0),  # cap
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0.0, max_value=32.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariant_under_adversarial_caps(self, pairs, total):
        sizes = [s for s, _ in pairs]
        caps = [c for _, c in pairs]
        self._check(sizes, caps, total)

    def test_zero_free_mass_spreads_without_breaching_small_cap(self):
        # All free sizes are zero; the even spread must not overshoot
        # the tiny cap and the closure must still hit the total.
        self._check([0.0, 0.0, 5.0], [0.01, 8.0, 5.0], 6.0)

    def test_all_capped_overshoot_is_pulled_back(self):
        # Capped mass alone exceeds the total: free entries zero out
        # and the closure lowers the capped ones to close Σ = A.
        self._check([4.0, 4.0, 0.5], [4.0, 4.0, 8.0], 6.0)

    def test_zero_caps_are_respected(self):
        out = self._check([3.0, 3.0, 3.0], [0.0, 0.0, 9.0], 6.0)
        assert out[0] == 0.0 and out[1] == 0.0

    def test_infeasible_caps_return_caps(self):
        assert self._check([5.0, 5.0], [1.0, 2.0], 6.0) == [1.0, 2.0]
