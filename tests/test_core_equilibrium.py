"""Unit tests for the equilibrium solvers (Section 3.3)."""

import pytest

from repro.core.equilibrium import (
    BisectionSolver,
    EquilibriumProcess,
    NewtonSolver,
    solve_equilibrium,
)
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.occupancy import OccupancyModel
from repro.errors import ConfigurationError


def make_process(probs, inf_mass, ways, api=0.05, alpha=5e-8, beta=2e-9):
    hist = ReuseDistanceHistogram(probs, inf_mass)
    return EquilibriumProcess(
        occupancy=OccupancyModel(hist, max_ways=ways),
        mpa=hist.mpa,
        api=api,
        alpha=alpha,
        beta=beta,
    )


WAYS = 16


@pytest.fixture
def heavy():
    """Memory-hungry process: wide reuse + streaming."""
    return make_process([0.05] * 12, 0.4, WAYS, api=0.06)


@pytest.fixture
def light():
    """Small-footprint process: mostly short distances."""
    return make_process([0.5, 0.3, 0.15], 0.05, WAYS, api=0.01, alpha=8e-9)


class TestCapacityConstraint:
    @pytest.mark.parametrize("strategy", ["newton", "bisection"])
    def test_contended_sizes_sum_to_ways(self, heavy, strategy, light):
        result = solve_equilibrium([heavy, heavy, light], WAYS, strategy=strategy)
        assert result.contended
        assert result.total_size == pytest.approx(WAYS, abs=1e-2)

    def test_uncontended_keeps_footprints(self):
        # Finite footprints (no streaming mass) that fit together: the
        # cache never fills and each process keeps its working set.
        finite = make_process([0.5, 0.3, 0.2], 0.0, WAYS, api=0.01)
        result = solve_equilibrium([finite, finite], WAYS)
        assert not result.contended
        assert result.total_size < WAYS
        for size in result.sizes:
            assert size == pytest.approx(
                finite.occupancy.saturation_size, abs=1e-6
            )

    def test_single_process_gets_saturation(self, heavy):
        result = solve_equilibrium([heavy], WAYS)
        assert result.sizes[0] == pytest.approx(WAYS, abs=1e-6)


class TestSymmetryAndOrdering:
    @pytest.mark.parametrize("strategy", ["newton", "bisection"])
    def test_identical_processes_split_evenly(self, heavy, strategy):
        result = solve_equilibrium([heavy, heavy], WAYS, strategy=strategy)
        assert result.sizes[0] == pytest.approx(result.sizes[1], abs=0.05)
        assert result.sizes[0] == pytest.approx(WAYS / 2, abs=0.1)

    def test_permutation_consistency(self, heavy, light):
        both = solve_equilibrium([heavy, light], WAYS)
        swapped = solve_equilibrium([light, heavy], WAYS)
        assert both.sizes[0] == pytest.approx(swapped.sizes[1], abs=0.05)
        assert both.sizes[1] == pytest.approx(swapped.sizes[0], abs=0.05)

    def test_hungrier_process_gets_more(self, heavy, light):
        # Make contention real by tripling the heavy process.
        result = solve_equilibrium([heavy, heavy, light], WAYS)
        heavy_size, light_size = result.sizes[0], result.sizes[2]
        assert heavy_size > light_size


class TestSolverAgreement:
    def test_newton_and_bisection_agree(self, heavy, light):
        newton = NewtonSolver().solve([heavy, heavy, light], WAYS)
        bisection = BisectionSolver().solve([heavy, heavy, light], WAYS)
        for a, b in zip(newton.sizes, bisection.sizes):
            assert a == pytest.approx(b, abs=0.1)

    def test_auto_strategy_produces_result(self, heavy, light):
        result = solve_equilibrium([heavy, light], WAYS, strategy="auto")
        assert result.solver in ("newton", "bisection")


class TestOutputs:
    def test_mpa_and_spi_consistent_with_sizes(self, heavy, light):
        result = solve_equilibrium([heavy, light], WAYS)
        for process, size, mpa, spi in zip(
            (heavy, light), result.sizes, result.mpas, result.spis
        ):
            assert mpa == pytest.approx(process.mpa(size))
            assert spi == pytest.approx(process.alpha * mpa + process.beta)

    def test_faster_equilibrium_for_lower_alpha(self, heavy):
        """A miss-insensitive competitor keeps accessing fast and wins ways."""
        tolerant = make_process([0.05] * 12, 0.4, WAYS, api=0.06, alpha=5e-9)
        result = solve_equilibrium([heavy, tolerant], WAYS)
        assert result.sizes[1] > result.sizes[0]


class TestValidation:
    def test_empty_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_equilibrium([], WAYS)

    def test_more_processes_than_ways_rejected(self, light):
        with pytest.raises(ConfigurationError):
            solve_equilibrium([light] * (WAYS + 1), WAYS)

    def test_unknown_strategy_rejected(self, light):
        with pytest.raises(ConfigurationError):
            solve_equilibrium([light], WAYS, strategy="gradient")

    def test_equilibrium_process_validation(self):
        hist = ReuseDistanceHistogram([1.0])
        occupancy = OccupancyModel(hist, max_ways=4)
        with pytest.raises(ConfigurationError):
            EquilibriumProcess(
                occupancy=occupancy, mpa=hist.mpa, api=0.0, alpha=1e-8, beta=1e-9
            )
        with pytest.raises(ConfigurationError):
            EquilibriumProcess(
                occupancy=occupancy, mpa=hist.mpa, api=0.01, alpha=1e-8, beta=0.0
            )
