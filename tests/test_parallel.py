"""Unit tests for the repro.parallel batch execution engine.

The engine's contract is strong: for any worker count, chunking or
scheduling order, results are *bit-identical* to serial execution,
per-task RNG streams are independent, and worker cache/observer
telemetry merges losslessly into the parent.  These tests check each
guarantee with 2-worker pools (small enough for CI machines).
"""

import numpy as np
import pytest

from repro import obs
from repro.api import _pick_assignment_impl as pick_assignment
from repro.api import predict_mix, predict_mixes
from repro.config import SimulationScale
from repro.core.assignment import enumerate_candidates, exhaustive_assignment
from repro.core.combined import CombinedModel
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.performance_model import PerformanceModel
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.core.solver_cache import EquilibriumCache
from repro.errors import ConfigurationError
from repro.events import Event, RATE_EVENTS
from repro.machine.topology import STANDARD_MACHINES
from repro.parallel import (
    ParallelPredictor,
    SimulationTask,
    parallel_exhaustive_assignment,
    predict_mixes as batch_predict,
    simulate_assignments,
)
from repro.workloads.spec import BENCHMARKS

NAMES = ["mcf", "gzip", "art", "vpr"]
MIXES = [
    ["mcf", "gzip"],
    ["art", "vpr"],
    ["mcf", "art", "vpr"],
    ["gzip", "gzip"],  # duplicates within a mix
    ["mcf", "gzip"],  # duplicate mix in the batch
]

TINY_SCALE = SimulationScale(
    warmup_accesses=1_000,
    measure_accesses=3_000,
    warmup_s=0.002,
    measure_s=0.006,
    hpc_period_s=0.0008,
    timeslice_s=0.0005,
)


@pytest.fixture(scope="module")
def features():
    return [FeatureVector.oracle(BENCHMARKS[name], 2e8) for name in NAMES]


@pytest.fixture(scope="module")
def profiles():
    return {
        name: ProfileVector(
            name=name,
            p_alone=20.0 + 2.0 * index,
            l1rpi=0.4,
            l2rpi=0.05,
            brpi=0.2,
            fppi=0.01 * index,
        )
        for index, name in enumerate(NAMES)
    }


@pytest.fixture(scope="module")
def power_model():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(40):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


class TestPredictMixes:
    def test_parallel_bit_equals_serial(self, features):
        serial = batch_predict(features, MIXES, ways=8, workers=1)
        parallel = batch_predict(features, MIXES, ways=8, workers=2, chunk_size=2)
        assert serial == parallel  # frozen dataclasses: exact float equality

    def test_matches_independent_predictions(self, features):
        """Each batch entry equals a standalone cold-start prediction."""
        batch = batch_predict(features, MIXES, ways=8, workers=2)
        for mix, got in zip(MIXES, batch):
            model = PerformanceModel(ways=8)
            model.register_all(features)
            assert model.predict(mix) == got

    def test_chunking_does_not_change_results(self, features):
        one = batch_predict(features, MIXES, ways=8, workers=2, chunk_size=1)
        big = batch_predict(features, MIXES, ways=8, workers=2, chunk_size=64)
        assert one == big

    def test_order_preserved(self, features):
        results = batch_predict(features, MIXES, ways=8, workers=2)
        for mix, result in zip(MIXES, results):
            assert [p.name for p in result.processes] == list(mix)

    def test_empty_batch(self, features):
        assert batch_predict(features, [], ways=8, workers=2) == ()

    def test_accepts_feature_mapping(self, features):
        mapping = {f.name: f for f in features}
        assert batch_predict(mapping, MIXES[:2], ways=8, workers=1) == batch_predict(
            features, MIXES[:2], ways=8, workers=1
        )

    def test_worker_cache_merges_into_parent(self, features):
        with ParallelPredictor(features, ways=8, workers=2) as engine:
            engine.predict_mixes(MIXES)
            stats = engine.cache_stats
        # 4 distinct mixes were solved somewhere in the fleet and all
        # solutions landed in the parent cache; the duplicate mix is a
        # hit only if both copies hit the same worker, so just bound it.
        assert stats.entries == 4
        # The duplicate mix is a worker-cache hit only if both copies
        # land in the same chunk, so bound the split instead of pinning.
        assert 4 <= stats.misses <= 5
        assert stats.hits + stats.misses == len(MIXES)
        key = (8, "auto", (("gzip", 1.0), ("mcf", 1.0)))
        assert key in engine.cache

    def test_pool_reuse_across_batches(self, features):
        with ParallelPredictor(features, ways=8, workers=2) as engine:
            engine.warm_up()
            first = engine.predict_mixes(MIXES[:2])
            second = engine.predict_mixes(MIXES[2:])
        assert first + second == batch_predict(features, MIXES, ways=8, workers=1)

    def test_observer_absorbs_worker_spans(self, features):
        observer = obs.Observer()
        with obs.use_observer(observer):
            batch_predict(features, MIXES, ways=8, workers=2)
        spans = observer.trace_dict()["spans"]
        batch_spans = [s for s in spans if s["name"] == "parallel.predict_mixes"]
        assert len(batch_spans) == 1
        predict_spans = [s for s in spans if s["name"] == "predict"]
        assert len(predict_spans) == len(MIXES)
        # Worker spans were re-parented under the parent batch span.
        assert {s["parent_id"] for s in predict_spans} == {batch_spans[0]["id"]}
        counters = observer.metrics_dict()["counters"]
        assert counters["predict.calls"] == len(MIXES)
        assert counters["parallel.mixes"] == len(MIXES)

    def test_worker_errors_propagate(self, features):
        with pytest.raises(KeyError, match="no feature vector"):
            batch_predict(features, [["mcf", "nosuch"]], ways=8, workers=2)

    def test_warm_start_cache_rejected(self, features):
        with pytest.raises(ConfigurationError, match="warm_start"):
            ParallelPredictor(features, ways=8, cache=EquilibriumCache())

    def test_negative_workers_rejected(self, features):
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelPredictor(features, ways=8, workers=-2)

    def test_bad_chunk_size_rejected(self, features):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            batch_predict(features, MIXES, ways=8, workers=2, chunk_size=0)


class TestPredictorLifecycle:
    def test_predict_after_close_raises(self, features):
        predictor = ParallelPredictor(features, ways=8, workers=1)
        assert predictor.predict_mixes([["mcf", "gzip"]])
        assert not predictor.closed
        predictor.close()
        assert predictor.closed
        with pytest.raises(RuntimeError, match="closed"):
            predictor.predict_mixes([["mcf", "gzip"]])
        with pytest.raises(RuntimeError, match="closed"):
            predictor.warm_up()

    def test_context_manager_exit_closes(self, features):
        with ParallelPredictor(features, ways=8, workers=1) as predictor:
            predictor.predict_mixes([["mcf"]])
        assert predictor.closed
        with pytest.raises(RuntimeError, match="create a new predictor"):
            predictor.predict_mixes([["mcf"]])

    def test_close_is_idempotent(self, features):
        predictor = ParallelPredictor(features, ways=8, workers=1)
        predictor.close()
        predictor.close()
        assert predictor.closed


class TestFacade:
    def test_api_predict_mixes_matches_predict_mix(self, features):
        from repro.api import ProfileSuiteResult

        suite = ProfileSuiteResult(
            machine="4-core-server",
            features={f.name: f for f in features},
            profiles={},
        )
        batch = predict_mixes(MIXES, suite, ways=8, workers=2)
        assert len(batch) == len(MIXES)
        for mix, result in zip(MIXES, batch):
            assert result.names == tuple(mix)
            assert result.ways == 8
            assert result.prediction == predict_mix(mix, suite, ways=8).prediction

    def test_greedy_with_workers_rejected(self, features, profiles, power_model):
        from repro.api import ProfileSuiteResult

        suite = ProfileSuiteResult(
            machine="4-core-server",
            features={f.name: f for f in features},
            profiles=profiles,
        )
        with pytest.raises(ConfigurationError, match="greedy"):
            pick_assignment(
                ["mcf", "gzip"], suite, power_model, greedy=True, workers=2
            )


class TestParallelAssignment:
    def test_matches_serial_searcher_exactly(self, features, profiles, power_model):
        names = ["mcf", "gzip", "art"]
        parallel = parallel_exhaustive_assignment(
            features, profiles, power_model,
            machine="4-core-server", sets=64,
            process_names=names, workers=2, chunk_size=3,
        )
        # Serial reference over the same cold-start caches.
        topology = STANDARD_MACHINES["4-core-server"](sets=64)
        perf = PerformanceModel(
            ways=topology.domains[0].geometry.ways,
            cache=EquilibriumCache(warm_start=False),
        )
        perf.register_all(features)
        combined = CombinedModel(
            topology=topology,
            performance_models=[perf],
            power_model=power_model,
            profiles=profiles,
            corun_cache=EquilibriumCache(warm_start=False),
        )
        serial = exhaustive_assignment(combined, names)
        assert parallel.assignment == serial.assignment
        assert parallel.score == serial.score
        assert parallel.predicted_watts == serial.predicted_watts
        assert parallel.predicted_ips == serial.predicted_ips
        assert parallel.candidates_evaluated == serial.candidates_evaluated

    def test_workers_one_matches_workers_two(self, features, profiles, power_model):
        kwargs = dict(
            machine="4-core-server", sets=64,
            process_names=["mcf", "gzip", "vpr"], objective="throughput",
        )
        one = parallel_exhaustive_assignment(
            features, profiles, power_model, workers=1, **kwargs
        )
        two = parallel_exhaustive_assignment(
            features, profiles, power_model, workers=2, **kwargs
        )
        assert one == two

    def test_max_per_core_honoured(self, features, profiles, power_model):
        decision = parallel_exhaustive_assignment(
            features, profiles, power_model,
            machine="4-core-server", sets=64,
            process_names=["mcf", "gzip"], max_per_core=1, workers=2,
        )
        assert all(len(names) == 1 for names in decision.assignment.values())

    def test_infeasible_constraints_rejected(self, features, profiles, power_model):
        with pytest.raises(ConfigurationError, match="no feasible"):
            parallel_exhaustive_assignment(
                features, profiles, power_model,
                machine="2-core-workstation", sets=64,
                process_names=["mcf", "gzip", "art"], max_per_core=1, workers=2,
            )

    def test_candidate_stream_is_shared(self):
        """Both searchers consume the same deduplicated enumeration."""
        candidates = list(enumerate_candidates(2, ["a", "a"]))
        # a,a split across cores collapses with its mirror image, but
        # which single core hosts both stays significant (per-core
        # power/thermal asymmetry is a future concern).
        assert candidates == [
            {0: ("a", "a")},
            {0: ("a",), 1: ("a",)},
            {1: ("a", "a")},
        ]


class TestSimulateAssignments:
    def _tasks(self):
        return [
            SimulationTask(
                machine="4-core-server",
                assignment={0: ("mcf",), 1: ("gzip",)},
                sets=64,
                scale=TINY_SCALE,
            ),
            SimulationTask(
                machine="4-core-server",
                assignment={0: ("mcf",), 1: ("gzip",)},
                sets=64,
                scale=TINY_SCALE,
            ),
            SimulationTask(
                machine="2-core-workstation",
                assignment={0: ("art",)},
                sets=64,
                scale=TINY_SCALE,
            ),
        ]

    @staticmethod
    def _key(result):
        return [
            (p.name, p.core, p.mpa, p.spi, p.occupancy_ways, p.l2_refs)
            for p in result.processes
        ]

    def test_parallel_bit_equals_serial(self):
        tasks = self._tasks()
        serial = simulate_assignments(tasks, workers=1, seed=7)
        parallel = simulate_assignments(tasks, workers=2, seed=7, chunk_size=1)
        assert [self._key(r) for r in serial] == [self._key(r) for r in parallel]

    def test_task_indices_get_independent_streams(self):
        """The same task at different batch indices draws differently."""
        results = simulate_assignments(self._tasks()[:2], workers=1, seed=7)
        assert self._key(results[0]) != self._key(results[1])

    def test_explicit_seed_pins_the_run(self):
        task = SimulationTask(
            machine="4-core-server",
            assignment={0: ("mcf",), 1: ("gzip",)},
            sets=64,
            seed=123,
            scale=TINY_SCALE,
        )
        a = simulate_assignments([task], workers=1)
        b = simulate_assignments([task, task], workers=2)
        assert self._key(a[0]) == self._key(b[0]) == self._key(b[1])

    def test_order_preserved_with_mixed_machines(self):
        results = simulate_assignments(self._tasks(), workers=2, seed=1)
        assert results[0].topology_name == results[1].topology_name
        assert results[2].topology_name != results[0].topology_name
        assert [p.name for p in results[2].processes] == ["art"]

    def test_unknown_names_rejected_before_spawning(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            simulate_assignments(
                [
                    SimulationTask(
                        machine="4-core-server", assignment={0: ("nosuch",)}
                    )
                ],
                workers=2,
            )
        with pytest.raises(ConfigurationError, match="unknown machine"):
            simulate_assignments(
                [SimulationTask(machine="nosuch", assignment={0: ("mcf",)})],
                workers=2,
            )

    def test_observer_absorbs_worker_simulations(self):
        observer = obs.Observer()
        with obs.use_observer(observer):
            simulate_assignments(self._tasks()[:2], workers=2, seed=3)
        spans = observer.trace_dict()["spans"]
        batch = [s for s in spans if s["name"] == "parallel.simulate"]
        assert len(batch) == 1
        sims = [s for s in spans if s["name"] == "simulate"]
        assert len(sims) == 2
        assert {s["parent_id"] for s in sims} == {batch[0]["id"]}
        counters = observer.metrics_dict()["counters"]
        assert counters["parallel.simulations"] == 2
        assert counters["sim.accesses"] > 0


class TestTable1Workers:
    def test_pairwise_validation_parallel_matches_serial(self):
        from repro.experiments.context import ExperimentContext
        from repro.experiments.table1 import run_pairwise_validation

        context = ExperimentContext(
            sets=64,
            benchmark_names=("mcf", "gzip"),
            profile_scale=TINY_SCALE,
            run_scale=TINY_SCALE,
        )
        pairs = [("mcf", "gzip"), ("gzip", "gzip")]
        serial = run_pairwise_validation(context, pairs=pairs)
        parallel = run_pairwise_validation(context, pairs=pairs, workers=2)
        assert serial.cases == parallel.cases
        assert [r.__dict__ for r in serial.rows] == [
            r.__dict__ for r in parallel.rows
        ]


class TestEngineSelection:
    """The engine knob is a pure throughput choice: identical bits."""

    def test_all_engines_bit_identical(self, features):
        serial = batch_predict(features, MIXES, ways=8, engine="serial")
        vectorized = batch_predict(features, MIXES, ways=8, engine="vectorized")
        auto = batch_predict(features, MIXES, ways=8)
        pool = batch_predict(features, MIXES, ways=8, workers=2, engine="pool")
        assert serial == vectorized == auto == pool

    def test_auto_prefers_vectorized_on_one_worker(self, features):
        with ParallelPredictor(features, ways=8) as predictor:
            assert predictor._select_engine(256) == "vectorized"

    def test_auto_pool_needs_cpus_and_batch_size(self, features, monkeypatch):
        import repro.parallel as parallel_module

        with ParallelPredictor(features, ways=8, workers=4) as predictor:
            monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
            assert predictor._select_engine(256) == "pool"
            # Too few mixes to amortise chunk IPC across 4 workers.
            assert predictor._select_engine(7) == "vectorized"
            # Single visible CPU: the pool cannot win.
            monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
            assert predictor._select_engine(256) == "vectorized"

    def test_explicit_engine_is_never_overridden(self, features, monkeypatch):
        import repro.parallel as parallel_module

        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
        with ParallelPredictor(
            features, ways=8, workers=4, engine="vectorized"
        ) as predictor:
            assert predictor._select_engine(256) == "vectorized"

    def test_pool_engine_requires_workers(self, features):
        with pytest.raises(ConfigurationError, match="workers > 1"):
            ParallelPredictor(features, ways=8, engine="pool")

    def test_unknown_engine_rejected(self, features):
        with pytest.raises(ConfigurationError, match="engine"):
            ParallelPredictor(features, ways=8, engine="warp")

    def test_vectorized_fills_shared_cache(self, features):
        cache = EquilibriumCache(warm_start=False)
        with ParallelPredictor(
            features, ways=8, engine="vectorized", cache=cache
        ) as predictor:
            predictor.predict_mixes(MIXES)
        stats = cache.stats
        assert stats.entries == 4  # one per distinct canonical mix
        assert stats.hits + stats.misses == len(MIXES)


class TestFrequencyRatios:
    """Per-mix DVFS frequency ratios thread through every engine."""

    RATIOS = [
        [0.8, 1.0],
        None,  # per-mix optional: None means all-unit
        [1.0, 0.6, 0.9],
        [0.7, 0.7],
        [0.8, 1.0],
    ]

    def test_all_engines_bit_identical_with_ratios(self, features):
        serial = batch_predict(
            features, MIXES, ways=8, engine="serial",
            frequency_ratios=self.RATIOS,
        )
        vectorized = batch_predict(
            features, MIXES, ways=8, engine="vectorized",
            frequency_ratios=self.RATIOS,
        )
        pool = batch_predict(
            features, MIXES, ways=8, workers=2, engine="pool",
            frequency_ratios=self.RATIOS,
        )
        assert serial == vectorized == pool

    def test_matches_independent_scalar_predictions(self, features):
        """Each ratio-carrying entry equals a cold standalone predict."""
        batch = batch_predict(
            features, MIXES, ways=8, frequency_ratios=self.RATIOS
        )
        for mix, ratios, got in zip(MIXES, self.RATIOS, batch):
            model = PerformanceModel(ways=8)
            model.register_all(features)
            assert model.predict(mix, frequency_ratios=ratios) == got

    def test_none_equals_all_unit(self, features):
        unit = [[1.0] * len(mix) for mix in MIXES]
        assert batch_predict(
            features, MIXES, ways=8, frequency_ratios=unit
        ) == batch_predict(features, MIXES, ways=8)

    def test_rejects_wrong_outer_length(self, features):
        with pytest.raises(ConfigurationError, match="one entry per mix"):
            batch_predict(
                features, MIXES, ways=8, frequency_ratios=[[1.0, 1.0]]
            )

    def test_rejects_wrong_inner_length(self, features):
        ratios = [[1.0], None, None, None, None]  # mix 0 has two processes
        with pytest.raises(ConfigurationError, match=r"frequency_ratios\[0\]"):
            batch_predict(features, MIXES, ways=8, frequency_ratios=ratios)
