"""Tests for the repro.serve subsystem.

Three layers, pinned separately:

- **Registry**: versioning, content hashes, idempotent republish,
  hot swap, ``name@version`` resolution.
- **MicroBatcher** (against a stub engine, so the concurrency edges
  are deterministic): size-trigger vs linger-timeout flush,
  queue-full shedding, deadline-expired requests never dispatched,
  graceful-drain and fail-fast shutdown.
- **HTTP end-to-end** (real server on an ephemeral port): the
  acceptance bit-equality guarantee — served ``/v1/predict``
  responses equal :func:`repro.api.predict_mix` outputs
  float-for-float — plus error-code mapping, the ``/metrics`` schema,
  ``/v1/assign`` parity, queue-full 429s, graceful ``stop()`` drain,
  and SIGTERM draining of the ``repro serve`` CLI.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.api import ProfileSuiteResult, _pick_assignment_impl, predict_mix
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import ConfigurationError
from repro.events import Event, RATE_EVENTS
from repro.serve import (
    DeadlineExpiredError,
    MicroBatcher,
    ModelRegistry,
    QueueFullError,
    ServeClient,
    ServeClientError,
    ServiceClosedError,
    UnknownModelError,
    start_server,
)
from repro.workloads.spec import BENCHMARKS

NAMES = ["mcf", "gzip", "art", "vpr"]
WAYS = 16
MACHINE = "2-core-workstation"


def _oracle_suite(names=NAMES, machine="4-core-server"):
    return ProfileSuiteResult(
        machine=machine,
        features={n: FeatureVector.oracle(BENCHMARKS[n], 2e8) for n in names},
        profiles={
            n: ProfileVector(
                name=n,
                p_alone=20.0 + 2.0 * i,
                l1rpi=0.4,
                l2rpi=0.05,
                brpi=0.2,
                fppi=0.01 * i,
            )
            for i, n in enumerate(names)
        },
    )


@pytest.fixture(scope="module")
def suite():
    return _oracle_suite()


@pytest.fixture(scope="module")
def power_model():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(40):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


@pytest.fixture(scope="module")
def server(suite, power_model):
    handle = start_server({"default": suite, "power": power_model})
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_publish_and_get(self, suite):
        registry = ModelRegistry()
        artifact = registry.publish("suite", suite)
        assert artifact.version == 1
        assert artifact.kind == "profile_suite"
        assert len(artifact.digest) == 64
        assert registry.get("suite") is artifact
        assert registry.get("suite@1") is artifact
        assert "suite" in registry

    def test_in_memory_object_is_served_verbatim(self, suite):
        # The decoded-obj shortcut is what makes served predictions
        # bit-identical to predict_mix on the handed-in suite.
        registry = ModelRegistry()
        assert registry.publish("suite", suite).obj is suite

    def test_republish_identical_content_is_idempotent(self, suite):
        registry = ModelRegistry()
        first = registry.publish("suite", suite)
        again = registry.publish("suite", suite)
        assert again.version == first.version == 1

    def test_hot_swap_creates_new_default_version(self, suite):
        registry = ModelRegistry()
        registry.publish("suite", suite)
        swapped = _oracle_suite(names=["mcf", "gzip"])
        second = registry.publish("suite", swapped)
        assert second.version == 2
        assert registry.get("suite").version == 2
        # Pinned requests keep resolving the old content.
        assert registry.get("suite@1").obj is suite

    def test_path_and_document_round_trip(self, suite, tmp_path):
        path = tmp_path / "suite.json"
        suite.save(path)
        registry = ModelRegistry()
        from_path = registry.publish("a", path)
        from_doc = registry.publish("b", suite.to_dict())
        assert from_path.digest == from_doc.digest
        assert from_path.kind == from_doc.kind == "profile_suite"

    def test_power_model_artifacts(self, power_model):
        registry = ModelRegistry()
        artifact = registry.publish("power", power_model)
        assert artifact.kind == "power_model"
        assert artifact.power_model() is power_model

    def test_unknown_name_and_version(self, suite):
        registry = ModelRegistry()
        with pytest.raises(UnknownModelError, match="no model named"):
            registry.get("nope")
        registry.publish("suite", suite)
        with pytest.raises(UnknownModelError, match="no version 9"):
            registry.get("suite@9")

    def test_bad_names_and_refs(self, suite):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError, match="must not contain '@'"):
            registry.publish("a@b", suite)
        with pytest.raises(ConfigurationError, match="version must be an integer"):
            registry.get("suite@latest")

    def test_rejects_unservable_kinds(self):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError, match="cannot serve"):
            registry.publish("x", {"kind": "trace", "version": 1})

    def test_list_reports_latest(self, suite):
        registry = ModelRegistry()
        registry.publish("suite", suite)
        registry.publish("suite", _oracle_suite(names=["mcf", "gzip"]))
        (entry,) = registry.list()
        assert entry["name"] == "suite"
        assert entry["version"] == 2
        assert entry["versions"] == 2


# ----------------------------------------------------------------------
# MicroBatcher (stub engine: deterministic concurrency edges)
# ----------------------------------------------------------------------
class StubEngine:
    """Records dispatched batches; results echo the mix."""

    def __init__(self, delay_s=0.0, error=None):
        self.batches = []
        self.delay_s = delay_s
        self.error = error
        self.closed = False

    def predict_mixes(self, mixes):
        self.batches.append([tuple(mix) for mix in mixes])
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.error is not None:
            raise self.error
        return [f"r:{'+'.join(mix)}" for mix in mixes]

    def close(self):
        self.closed = True


class TestMicroBatcher:
    def test_size_trigger_flushes_full_batch(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=3, max_linger_s=30.0)
            results = await asyncio.gather(
                batcher.submit(["a"]), batcher.submit(["b"]), batcher.submit(["c"])
            )
            await batcher.stop()
            return results, batcher.metrics.to_dict()

        results, metrics = asyncio.run(main())
        assert results == ["r:a", "r:b", "r:c"]
        # One batch of three, flushed by the size trigger before the
        # 30 s linger could possibly elapse.
        assert engine.batches == [[("a",), ("b",), ("c",)]]
        assert metrics["counters"]["serve.batch.flush_size"] == 1
        assert metrics["counters"].get("serve.batch.flush_linger", 0) == 0
        assert metrics["histograms"]["serve.batch.size"]["max"] == 3
        assert engine.closed

    def test_linger_timeout_flushes_partial_batch(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=100, max_linger_s=0.02)
            start = asyncio.get_running_loop().time()
            results = await asyncio.gather(
                batcher.submit(["a"]), batcher.submit(["b"])
            )
            waited = asyncio.get_running_loop().time() - start
            await batcher.stop()
            return results, waited, batcher.metrics.to_dict()

        results, waited, metrics = asyncio.run(main())
        assert results == ["r:a", "r:b"]
        assert engine.batches == [[("a",), ("b",)]]  # one batch, not two
        assert waited >= 0.02  # the partial batch lingered
        assert metrics["counters"]["serve.batch.flush_linger"] == 1
        assert metrics["counters"].get("serve.batch.flush_size", 0) == 0

    def test_queue_full_sheds_immediately(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(
                engine, max_batch_size=100, max_linger_s=30.0, max_queue=2
            )
            first = asyncio.ensure_future(batcher.submit(["a"]))
            second = asyncio.ensure_future(batcher.submit(["b"]))
            await asyncio.sleep(0)  # let both enqueue
            start = asyncio.get_running_loop().time()
            with pytest.raises(QueueFullError, match="queue is full"):
                await batcher.submit(["c"])
            shed_latency = asyncio.get_running_loop().time() - start
            # Graceful stop drains the two queued requests.
            await batcher.stop()
            return await first, await second, shed_latency, batcher.metrics.to_dict()

        r1, r2, shed_latency, metrics = asyncio.run(main())
        assert (r1, r2) == ("r:a", "r:b")
        assert shed_latency < 1.0  # shed responses never hang
        assert metrics["counters"]["serve.predict.shed"] == 1
        assert engine.batches == [[("a",), ("b",)]]  # shed mix never dispatched
        assert metrics["counters"]["serve.batch.flush_drain"] == 1

    def test_expired_deadline_is_never_dispatched(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=100, max_linger_s=30.0)
            doomed = asyncio.ensure_future(
                batcher.submit(["a"], timeout_s=0.01)
            )
            alive = asyncio.ensure_future(batcher.submit(["b"]))
            await asyncio.sleep(0.05)  # deadline passes while queued
            await batcher.stop()  # drain triggers the flush
            with pytest.raises(DeadlineExpiredError, match="not dispatched"):
                await doomed
            return await alive, batcher.metrics.to_dict()

        alive_result, metrics = asyncio.run(main())
        assert alive_result == "r:b"
        assert engine.batches == [[("b",)]]  # the expired mix never reached it
        assert metrics["counters"]["serve.predict.deadline_expired"] == 1

    def test_stop_without_drain_fails_queued_requests(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=100, max_linger_s=30.0)
            queued = asyncio.ensure_future(batcher.submit(["a"]))
            await asyncio.sleep(0)
            await batcher.stop(drain=False)
            with pytest.raises(ServiceClosedError):
                await queued

        asyncio.run(main())
        assert engine.batches == []
        assert engine.closed

    def test_submit_after_stop_is_rejected(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_linger_s=0.001)
            await batcher.submit(["a"])
            await batcher.stop()
            with pytest.raises(ServiceClosedError, match="draining"):
                await batcher.submit(["b"])

        asyncio.run(main())

    def test_engine_error_propagates_to_every_request(self):
        engine = StubEngine(error=ValueError("solver exploded"))

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=2, max_linger_s=30.0)
            results = await asyncio.gather(
                batcher.submit(["a"]),
                batcher.submit(["b"]),
                return_exceptions=True,
            )
            await batcher.stop()
            return results

        results = asyncio.run(main())
        assert all(isinstance(r, ValueError) for r in results)

    def test_batch_larger_than_max_splits(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=2, max_linger_s=0.05)
            results = await asyncio.gather(
                *(batcher.submit([c]) for c in "abcde")
            )
            await batcher.stop()
            return results

        results = asyncio.run(main())
        assert results == [f"r:{c}" for c in "abcde"]
        assert [len(batch) for batch in engine.batches] == [2, 2, 1]
        assert [m for batch in engine.batches for (m,) in batch] == list("abcde")


# ----------------------------------------------------------------------
# HTTP end-to-end
# ----------------------------------------------------------------------
class TestHttpEndpoints:
    def test_healthz_and_readyz(self, client):
        assert client.healthz() == {"status": "ok"}
        assert client.readyz() is True

    def test_models_listing(self, client):
        models = {entry["name"]: entry for entry in client.models()}
        assert models["default"]["kind"] == "profile_suite"
        assert models["power"]["kind"] == "power_model"
        assert len(models["default"]["digest"]) == 64

    def test_served_prediction_bit_identical_to_api(self, client, suite):
        # The acceptance guarantee: float-for-float equality with the
        # in-process facade, across mix shapes and duplicates.
        for mix in (["mcf", "gzip"], ["art", "vpr", "mcf"], ["gzip", "gzip"]):
            response = client.predict(mix, ways=WAYS)
            local = predict_mix(mix, suite, ways=WAYS)
            assert response["prediction"] == local.to_dict()
            assert response["model"] == "default@1"

    def test_concurrent_predictions_all_bit_identical(self, server, suite):
        mixes = [[a, b] for a in NAMES for b in NAMES]
        responses = [None] * len(mixes)

        def worker(index):
            with ServeClient(server.host, server.port) as c:
                responses[index] = c.predict(mixes[index], ways=WAYS)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(mixes))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for mix, response in zip(mixes, responses):
            assert response["prediction"] == predict_mix(
                mix, suite, ways=WAYS
            ).to_dict()

    def test_assign_matches_local_pick(self, client, suite, power_model):
        response = client.assign(
            ["mcf", "gzip"], machine=MACHINE, objective="power"
        )
        local = _pick_assignment_impl(
            ["mcf", "gzip"], suite, power_model, machine=MACHINE
        )
        assert response["pick"] == local.to_dict()
        assert response["suite"] == "default@1"
        assert response["power_model"] == "power@1"

    def test_metrics_schema_and_counters(self, client):
        client.predict(["mcf"], ways=WAYS)
        metrics = client.metrics()
        assert metrics["kind"] == "metrics"
        assert metrics["version"] == 1
        assert set(metrics) == {
            "kind", "version", "counters", "gauges", "histograms"
        }
        assert metrics["counters"]["serve.http.requests"] >= 2
        assert metrics["counters"]["serve.predict.completed"] >= 1
        assert metrics["counters"]["serve.batch.dispatched"] >= 1
        assert metrics["histograms"]["serve.batch.size"]["count"] >= 1

    def test_publish_and_hot_swap_over_http(self, client, suite):
        first = client.publish("swap", suite.to_dict())
        assert first["version"] == 1
        swapped = _oracle_suite(names=["mcf", "gzip"])
        second = client.publish("swap", swapped.to_dict())
        assert second["version"] == 2
        assert second["digest"] != first["digest"]
        # Latest serves the new content; @1 still serves the old.
        latest = client.predict(["mcf", "gzip"], ways=WAYS, model="swap")
        assert latest["model"] == "swap@2"
        pinned = client.predict(["mcf", "gzip"], ways=WAYS, model="swap@1")
        assert pinned["model"] == "swap@1"

    def test_error_codes(self, client, server):
        with pytest.raises(ServeClientError) as err:
            client.predict(["mcf"], ways=WAYS, model="no-such-model")
        assert err.value.status == 404
        with pytest.raises(ServeClientError) as err:
            client.predict(["not-a-benchmark"], ways=WAYS)
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            client.predict([], ways=WAYS)
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            client._call("POST", "/v1/predict", {"model": "default"})
        assert err.value.status == 400  # missing names/ways
        with pytest.raises(ServeClientError) as err:
            client._call("GET", "/v1/predict")
        assert err.value.status == 405
        with pytest.raises(ServeClientError) as err:
            client._call("GET", "/v2/everything")
        assert err.value.status == 404
        status, document = client._request("POST", "/v1/models")
        assert status == 400  # empty body
        assert "error" in document

    def test_malformed_json_is_a_clean_400(self, server):
        import http.client

        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        connection.request(
            "POST", "/v1/predict", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        document = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert "invalid JSON" in document["error"]


class TestV2Assign:
    @staticmethod
    def _request_doc(**overrides):
        document = {
            "kind": "assignment_request",
            "version": 1,
            "processes": ["mcf", "gzip"],
            "objective": "min-power",
            "solver": "auto",
            "machine": MACHINE,
            "sets": 128,
        }
        document.update(overrides)
        return document

    def test_v2_assign_matches_local_solve(self, client, suite, power_model):
        from repro.api import AssignmentRequest, solve_assignment
        from repro.io import assignment_request_from_dict, fleet_assignment_to_dict

        document = self._request_doc()
        status, response = client._request(
            "POST", "/v2/assign", {"request": document}
        )
        assert status == 200
        assert response["kind"] == "serve_fleet_assignment"
        assert response["suite"] == "default@1"
        assert response["power_model"] == "power@1"
        request = assignment_request_from_dict(document)
        assert isinstance(request, AssignmentRequest)
        local = solve_assignment(request, suite, power_model)
        assert response["assignment"] == json.loads(
            json.dumps(fleet_assignment_to_dict(local))
        )

    def test_v1_assign_response_shape_is_frozen(self, client):
        # /v2 landing must not leak into the /v1 document.
        response = client.assign(["mcf", "gzip"], machine=MACHINE)
        assert response["kind"] == "serve_assignment"
        assert set(response) == {
            "kind", "version", "suite", "power_model", "pick"
        }

    def test_v1_assign_does_not_emit_deprecation_warning(self, client):
        # The served /v1 path must go through the impl function, not
        # the deprecated shim; an error filter would turn a warning in
        # the server's assign thread into a 500.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            response = client.assign(["mcf", "gzip"], machine=MACHINE)
        assert response["kind"] == "serve_assignment"

    def test_v2_missing_field_is_400_with_path(self, client):
        with pytest.raises(ServeClientError) as err:
            client._call(
                "POST",
                "/v2/assign",
                {"request": {"kind": "assignment_request", "version": 1}},
            )
        assert err.value.status == 400
        assert "assignment_request.processes is missing" in str(err.value)

    def test_v2_request_must_be_an_object(self, client):
        with pytest.raises(ServeClientError) as err:
            client._call("POST", "/v2/assign", {"request": "mcf,gzip"})
        assert err.value.status == 400

    def test_v2_oversized_fleet_is_413(self, client, monkeypatch):
        import repro.serve.http as http_mod

        monkeypatch.setattr(http_mod, "MAX_FLEET_PROCESSES", 3)
        with pytest.raises(ServeClientError) as err:
            client._call(
                "POST",
                "/v2/assign",
                {"request": self._request_doc(processes=["mcf"] * 4)},
            )
        assert err.value.status == 413
        monkeypatch.setattr(http_mod, "MAX_FLEET_MACHINES", 2)
        fleet = {
            "kind": "fleet_spec",
            "version": 1,
            "groups": [
                {"machine": MACHINE, "count": 3, "sets": 128,
                 "power_cap_watts": None}
            ],
        }
        with pytest.raises(ServeClientError) as err:
            client._call(
                "POST",
                "/v2/assign",
                {"request": self._request_doc(fleet=fleet)},
            )
        assert err.value.status == 413

    def test_v2_unknown_process_names_rejected(self, client):
        with pytest.raises(ServeClientError) as err:
            client._call(
                "POST",
                "/v2/assign",
                {"request": self._request_doc(processes=["not-a-benchmark"])},
            )
        assert err.value.status == 400


class TestBackpressureAndShutdown:
    def test_queue_full_requests_get_explicit_429(self, suite):
        # Long linger + queue of 1: the first request parks in the
        # batcher, the second must be shed with a 429 — immediately,
        # not after a timeout.
        handle = start_server(
            {"default": suite},
            max_batch_size=64,
            max_linger_ms=30_000.0,
            max_queue=1,
        )
        try:
            outcome = {}

            def queued():
                with ServeClient(handle.host, handle.port, timeout=60) as c:
                    outcome["queued"] = c.predict(["mcf", "gzip"], ways=WAYS)

            thread = threading.Thread(target=queued)
            thread.start()
            deadline = time.time() + 5
            while time.time() < deadline:
                if handle.service.metrics.to_dict()["gauges"].get(
                    "serve.queue.depth", 0
                ) >= 1:
                    break
                time.sleep(0.01)
            start = time.perf_counter()
            with ServeClient(handle.host, handle.port) as c:
                with pytest.raises(ServeClientError) as err:
                    c.predict(["art", "vpr"], ways=WAYS)
            shed_elapsed = time.perf_counter() - start
            assert err.value.status == 429
            assert "full" in err.value.document["error"]
            assert shed_elapsed < 5.0  # shed never hangs
            # Graceful stop drains the queued request: its client
            # still receives a real 200 prediction.
            handle.stop()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert outcome["queued"]["prediction"] == predict_mix(
                ["mcf", "gzip"], suite, ways=WAYS
            ).to_dict()
        finally:
            handle.stop()

    def test_stop_drains_in_flight_batches(self, suite):
        # Park several requests behind a long linger, then stop():
        # every one of them must complete with a real prediction.
        handle = start_server(
            {"default": suite},
            max_batch_size=64,
            max_linger_ms=30_000.0,
            max_queue=64,
        )
        mixes = [[a, b] for a, b in zip(NAMES, NAMES[1:] + NAMES[:1])]
        responses = {}

        def worker(index):
            with ServeClient(handle.host, handle.port, timeout=60) as c:
                responses[index] = c.predict(mixes[index], ways=WAYS)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(mixes))
        ]
        for t in threads:
            t.start()
        deadline = time.time() + 5
        while time.time() < deadline:
            depth = handle.service.metrics.to_dict()["gauges"].get(
                "serve.queue.depth", 0
            )
            if depth >= len(mixes):
                break
            time.sleep(0.01)
        handle.stop()  # graceful: drains the parked batch
        for t in threads:
            t.join(timeout=30)
        assert all(not t.is_alive() for t in threads)
        assert sorted(responses) == list(range(len(mixes)))
        for index, mix in enumerate(mixes):
            assert responses[index]["prediction"] == predict_mix(
                mix, suite, ways=WAYS
            ).to_dict()

    def test_not_ready_after_stop(self, suite):
        handle = start_server({"default": suite})
        with ServeClient(handle.host, handle.port) as c:
            assert c.readyz() is True
        handle.stop()
        handle.stop()  # idempotent

    def test_timed_out_request_gets_504(self, suite):
        handle = start_server(
            {"default": suite},
            max_batch_size=64,
            max_linger_ms=30_000.0,
            max_queue=8,
        )
        try:
            result = {}

            def doomed():
                with ServeClient(handle.host, handle.port, timeout=60) as c:
                    try:
                        c.predict(["mcf"], ways=WAYS, timeout_ms=20)
                    except ServeClientError as error:
                        result["status"] = error.status
                        result["error"] = error.document["error"]

            thread = threading.Thread(target=doomed)
            thread.start()
            time.sleep(0.3)  # deadline passes while parked in the queue
            handle.stop()  # drain flushes; expired request must not solve
            thread.join(timeout=30)
            assert result["status"] == 504
            assert "not dispatched" in result["error"]
        finally:
            handle.stop()


class TestCliServe:
    def test_sigterm_drains_and_exits_cleanly(self, suite, tmp_path):
        suite_path = tmp_path / "suite.json"
        suite.save(suite_path)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--suite", str(suite_path), "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line, line
            host, port = line.rsplit("http://", 1)[1].strip().rsplit(":", 1)
            with ServeClient(host, int(port)) as client:
                assert client.healthz() == {"status": "ok"}
                response = client.predict(["mcf", "gzip"], ways=WAYS)
            # File-backed serving matches file-backed local prediction
            # (the JSON round trip renormalises histogram masses, so
            # the in-memory suite is the wrong baseline here).
            assert response["prediction"] == predict_mix(
                ["mcf", "gzip"], str(suite_path), ways=WAYS
            ).to_dict()
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            stderr = process.stderr.read()
            assert process.returncode == 0
            assert "draining" in stderr
            assert "drained and stopped" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestDeadlineAtEnqueue:
    """timeout_s <= 0 sheds deterministically at submit (the 504 path)."""

    @pytest.mark.parametrize("timeout_s", [0.0, -0.5])
    def test_due_deadline_is_shed_before_queuing(self, timeout_s):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=100, max_linger_s=30.0)
            with pytest.raises(DeadlineExpiredError, match="not queued"):
                await batcher.submit(["a"], timeout_s=timeout_s)
            depth = batcher.pending
            alive = asyncio.ensure_future(batcher.submit(["b"]))
            await asyncio.sleep(0)
            await batcher.stop()
            return depth, await alive, batcher.metrics.to_dict()

        depth, alive_result, metrics = asyncio.run(main())
        assert depth == 0  # shed request never consumed queue capacity
        assert alive_result == "r:b"
        assert engine.batches == [[("b",)]]  # engine never saw the shed mix
        assert metrics["counters"]["serve.predict.deadline_expired"] == 1
        assert "serve.predict.requests" not in metrics["counters"] or (
            metrics["counters"]["serve.predict.requests"] == 1
        )

    def test_positive_deadline_still_queues(self):
        engine = StubEngine()

        async def main():
            batcher = MicroBatcher(engine, max_batch_size=1, max_linger_s=30.0)
            result = await batcher.submit(["a"], timeout_s=10.0)
            await batcher.stop()
            return result

        assert asyncio.run(main()) == "r:a"
