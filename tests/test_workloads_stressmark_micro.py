"""Unit tests for the stressmark spec and the micro-benchmark schedule."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.events import Event, RATE_EVENTS
from repro.workloads.microbenchmark import Microbenchmark
from repro.workloads.stressmark import StressmarkSpec, make_stressmark


class TestStressmarkSpec:
    def test_point_mass_profile(self):
        spec = make_stressmark(6)
        distances = dict(spec.rd_profile)
        assert distances == {5: 1.0}

    def test_single_way(self):
        spec = make_stressmark(1)
        assert dict(spec.rd_profile) == {0: 1.0}

    def test_high_access_rate(self):
        """The stressmark must out-access every SPEC model."""
        from repro.workloads.spec import BENCHMARKS

        spec = make_stressmark(4)
        assert spec.api > max(b.api for b in BENCHMARKS.values())

    def test_small_miss_penalty(self):
        """Non-blocking misses: penalty far below the SPEC models'."""
        spec = make_stressmark(4)
        assert spec.penalty_cycles < 20

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            make_stressmark(0)

    def test_is_synthetic_benchmark(self):
        spec = make_stressmark(3)
        assert isinstance(spec, StressmarkSpec)
        assert spec.ways == 3
        assert spec.name == "stressmark-3w"


class TestMicrobenchmark:
    def test_schedule_shape(self):
        micro = Microbenchmark(frequency_hz=2e8, levels=8, windows_per_level=4)
        windows = micro.all_windows()
        # Phase 0 idle (4 windows) + 5 phases x 8 levels x 4 windows.
        assert len(windows) == 4 + 5 * 8 * 4

    def test_idle_phase_is_zero(self):
        micro = Microbenchmark(frequency_hz=2e8)
        first = micro.all_windows()[0]
        assert first.phase == 0
        assert all(rate == 0.0 for rate in first.rates.values())

    def test_each_component_stressed_once(self):
        micro = Microbenchmark(frequency_hz=2e8, windows_per_level=1)
        windows = micro.all_windows()
        for phase, event in enumerate(RATE_EVENTS, start=1):
            mine = [w for w in windows if w.phase == phase]
            assert mine, f"no windows for phase {phase}"
            for window in mine:
                # The stressed component has the dominant rate.
                assert window.rates[event] == max(window.rates.values())

    def test_levels_descend(self):
        micro = Microbenchmark(frequency_hz=2e8, windows_per_level=1)
        phase1 = [w for w in micro.all_windows() if w.phase == 1]
        rates = [w.rates[Event.L1_REFS] for w in phase1]
        assert rates == sorted(rates, reverse=True)

    def test_l2_misses_imply_l2_refs(self):
        """Physical consistency: misses cannot outnumber references."""
        micro = Microbenchmark(frequency_hz=2e8)
        for window in micro.all_windows():
            assert window.rates[Event.L2_REFS] >= window.rates[Event.L2_MISSES] - 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Microbenchmark(frequency_hz=0)
        with pytest.raises(ConfigurationError):
            Microbenchmark(frequency_hz=1e8, levels=1)
        with pytest.raises(ConfigurationError):
            Microbenchmark(frequency_hz=1e8, windows_per_level=0)
