"""Tests for the extension experiments (phases, partitioning, hetero)."""

import pytest

from repro.config import SimulationScale
from repro.errors import ConfigurationError
from repro.experiments.context import ExperimentContext
from repro.machine.topology import heterogeneous_server

SMALL_PROFILE = SimulationScale(
    warmup_accesses=2_000,
    measure_accesses=6_000,
    warmup_s=0.004,
    measure_s=0.010,
    hpc_period_s=0.001,
    timeslice_s=0.0008,
)
SMALL_RUN = SimulationScale(
    warmup_accesses=4_000,
    measure_accesses=12_000,
    warmup_s=0.006,
    measure_s=0.018,
    hpc_period_s=0.001,
    timeslice_s=0.0008,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(
        machine="4-core-server",
        sets=64,
        seed=5,
        benchmark_names=("twolf", "mcf", "art"),
        profile_scale=SMALL_PROFILE,
        run_scale=SMALL_RUN,
    )


class TestHeterogeneousTopology:
    def test_core_frequencies(self):
        topo = heterogeneous_server(sets=64, slow_scale=0.5)
        assert topo.heterogeneous
        assert topo.core_frequency(0) == pytest.approx(topo.frequency_hz)
        assert topo.core_frequency(1) == pytest.approx(topo.frequency_hz / 2)

    def test_homogeneous_default(self):
        from repro.machine.topology import four_core_server

        topo = four_core_server(sets=64)
        assert not topo.heterogeneous
        assert topo.core_frequency(3) == topo.frequency_hz

    def test_scale_validation(self):
        from repro.machine.topology import MachineTopology, four_core_server

        base = four_core_server(sets=64)
        with pytest.raises(ConfigurationError):
            MachineTopology(
                name="bad",
                frequency_hz=base.frequency_hz,
                domains=base.domains,
                nominal_power_watts=100,
                core_frequency_scales=(1.0, 0.5),  # wrong arity
            )

    def test_feature_rescale(self):
        from repro.core.feature import FeatureVector
        from repro.workloads.spec import BENCHMARKS

        feature = FeatureVector.oracle(BENCHMARKS["mcf"], 2e8)
        fast = feature.with_frequency_ratio(2.0)
        assert fast.alpha == pytest.approx(feature.alpha / 2)
        assert fast.beta == pytest.approx(feature.beta / 2)
        assert fast.api == feature.api
        with pytest.raises(ConfigurationError):
            feature.with_frequency_ratio(0.0)

    def test_fast_core_wins_cache(self, context):
        from repro.experiments.heterogeneity_extension import (
            run_heterogeneity_extension,
        )

        result = run_heterogeneity_extension(
            context, pairs=(("mcf", "mcf"),), slow_scale=0.5
        )
        case = result.cases[0]
        # Identical programs: the clock alone decides the partition.
        assert case.measured_occupancies[0] > case.measured_occupancies[1] + 1.0
        assert case.max_spi_error_pct < 10.0


class TestPhasesExtension:
    def test_phase_aware_beats_naive(self, context):
        from repro.experiments.phases_extension import run_phases_extension

        result = run_phases_extension(context, partner="twolf")
        assert result.phase_aware_wins
        assert result.detected_phases >= 2
        assert result.phase_aware_spi_error_pct < result.naive_spi_error_pct


class TestPartitioningExtension:
    def test_partition_predictions_validated(self, context):
        from repro.experiments.partitioning_extension import (
            run_partitioning_extension,
        )

        result = run_partitioning_extension(context, names=("mcf", "twolf"))
        assert result.optimal.max_mpa_error_pts < 6.0
        assert sum(result.optimal.plan.allocation) == 16
        assert (
            result.optimal.predicted_total_ips
            >= result.even.predicted_total_ips - 1e-9
        )

    def test_needs_two_processes(self, context):
        from repro.experiments.partitioning_extension import (
            run_partitioning_extension,
        )

        with pytest.raises(ConfigurationError):
            run_partitioning_extension(context, names=("mcf",))
